"""Theorem 4.1 demo: uniform dense protocols cannot delay their termination signal.

Three protocols are swept over growing population sizes and the parallel time
until the *first* terminated agent is measured:

* a **uniform** counter protocol started from the dense all-identical
  configuration — its termination time stays flat (O(1)) as ``n`` grows, so
  the signal fires long before any ``omega(1)``-time task (leader election,
  size estimation) could have finished: the operational content of
  Theorem 4.1;
* the paper's **leader-driven** terminating size estimation (Theorem 3.13) —
  with an initial leader the signal is genuinely delayed, growing with ``n``;
* Michail's leader-driven **exact counting** — same qualitative behaviour.

Usage::

    python examples/termination_impossibility_demo.py [sizes] [runs]
    python examples/termination_impossibility_demo.py 32,128,512 3
"""

from __future__ import annotations

import sys

from repro.core.leader_terminating import LeaderTerminatingSizeEstimation
from repro.core.parameters import ProtocolParameters
from repro.harness.reporting import format_table
from repro.protocols.exact_counting_leader import LeaderExactCounting
from repro.protocols.leader_election import NonuniformCounterLeaderElection
from repro.termination.definitions import TerminationSpec
from repro.termination.impossibility import growth_ratio, termination_time_sweep
from repro.workloads.populations import parse_size_list


def sweep(name, factory, sizes, runs, budget):
    spec = TerminationSpec(terminated_predicate=lambda state: state.terminated)
    observations = termination_time_sweep(
        protocol_factory=factory,
        spec=spec,
        population_sizes=sizes,
        runs_per_size=runs,
        max_parallel_time=budget,
        seed=42,
    )
    rows = [
        [obs.population_size, obs.mean_time, obs.max_time, obs.termination_probability]
        for obs in observations
    ]
    print(f"--- {name} ---")
    print(format_table(["n", "mean time to signal", "max", "P(signal)"], rows))
    ratio = growth_ratio(observations)
    if ratio is not None:
        print(f"largest/smallest mean time ratio: {ratio:.2f}")
    print()
    return observations


def main() -> int:
    sizes = parse_size_list(sys.argv[1]) if len(sys.argv) > 1 else [32, 128, 512]
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    print(f"Termination-signal time vs population size (sizes={sizes}, {runs} runs)\n")

    sweep(
        "uniform dense counter protocol (Theorem 4.1: flat, O(1))",
        lambda: NonuniformCounterLeaderElection(counter_threshold=8),
        sizes,
        runs,
        budget=200.0,
    )
    sweep(
        "leader-driven size estimation (Theorem 3.13: grows with n)",
        lambda: LeaderTerminatingSizeEstimation(
            params=ProtocolParameters.fast_test(),
            phase_count=8,
            termination_rounds_factor=1,
        ),
        sizes,
        runs,
        budget=100_000.0,
    )
    sweep(
        "leader-driven exact counting (Michail): grows with n",
        lambda: LeaderExactCounting(patience=2),
        sizes,
        runs,
        budget=100_000.0,
    )

    print("Expected shape: the first series stays flat as n grows; the two "
          "leader-driven series grow, because only a non-dense initial "
          "configuration (a leader) lets a uniform protocol delay its signal.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
