"""Composition demo: uniformising a nonuniform protocol with the size estimate.

The motivation of the paper (Section 1, Figure 1) is that fast leader-election
and majority protocols hard-code an estimate of ``log2 n`` into their
transitions.  This example shows the Section 1.1 composition scheme in action:

1. every agent obtains the weak size estimate ``s`` (a geometric variable
   whose maximum spreads by epidemic),
2. the downstream Figure-1 style counter protocol receives its threshold from
   ``s`` (instead of a hard-coded constant) through the ``configure_estimate``
   hook,
3. a leaderless phase clock (each agent counts ``f(s)`` of its own
   interactions) signals when the downstream stage can be trusted, and
4. the whole downstream computation restarts whenever ``s`` grows.

Usage::

    python examples/uniformizing_leader_election.py [population_size] [seed]
"""

from __future__ import annotations

import math
import sys

from repro import Simulation
from repro.core.composition import RestartComposition, stage_signal_reached
from repro.protocols.leader_election import NonuniformCounterLeaderElection


def main() -> int:
    population_size = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    # The downstream protocol wants "roughly c * log2 n" as its counter
    # threshold; we start it with a placeholder and let the composition feed
    # it the live estimate.
    downstream = NonuniformCounterLeaderElection(counter_threshold=1)

    def configure_estimate(estimate: int) -> None:
        downstream.counter_threshold = 5 * estimate

    downstream.configure_estimate = configure_estimate

    composition = RestartComposition(downstream, stage_length_factor=40)
    simulation = Simulation(composition, population_size, seed=seed)

    print(f"Composing size estimation with the Figure-1 counter protocol "
          f"on n = {population_size} agents ...")
    elapsed = simulation.run_until(stage_signal_reached, max_parallel_time=100_000)

    estimates = {state.estimate for state in simulation.states}
    candidates = simulation.count_where(
        lambda state: composition.output(state) is True
    )
    print(f"stage-complete signal reached everyone after {elapsed:.0f} time")
    print(f"weak size estimate agreed by all agents : {estimates} "
          f"(log2 n = {math.log2(population_size):.2f})")
    print(f"downstream threshold received           : {downstream.counter_threshold} "
          "(was hard-coded as 1)")
    print(f"remaining leader candidates             : {candidates}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
