"""Appendix B demo: size estimation with no random bits (synthetic coins).

The main protocol assumes agents can read uniformly random bits; Appendix B
removes that assumption by letting worker agents extract fair coin flips from
the scheduler's symmetric sender/receiver choice when they meet coin-flipper
(``F``) agents.  This example runs both variants side by side on the same
population size and compares their estimates and convergence times.

Usage::

    python examples/synthetic_coin_demo.py [population_size] [seed]
"""

from __future__ import annotations

import math
import sys

from repro import LogSizeEstimationProtocol, ProtocolParameters, Simulation
from repro.core import all_agents_done
from repro.core.log_size_estimation import estimate_error
from repro.core.synthetic_coin import (
    SyntheticCoinLogSizeEstimation,
    all_workers_done,
)


def main() -> int:
    population_size = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    params = ProtocolParameters.moderate()
    target = math.log2(population_size)
    print(f"n = {population_size}, log2(n) = {target:.3f}, constants: {params.describe()}\n")

    # Variant with explicit random bits (Protocol 1).
    simulation = Simulation(LogSizeEstimationProtocol(params), population_size, seed=seed)
    elapsed = simulation.run_until(all_agents_done, max_parallel_time=500_000)
    report = estimate_error(simulation)
    print("with random bits (Protocol 1):")
    print(f"  converged at {elapsed:.0f} time, estimate {report['mean_estimate']:.3f}, "
          f"error {report['max_additive_error']:.3f}")

    # Appendix B variant: randomness from the scheduler only.
    coin_simulation = Simulation(
        SyntheticCoinLogSizeEstimation(params), population_size, seed=seed
    )
    coin_elapsed = coin_simulation.run_until(all_workers_done, max_parallel_time=500_000)
    estimates = [s.output for s in coin_simulation.states if s.output is not None]
    mean_estimate = sum(estimates) / len(estimates)
    print("synthetic coins (Appendix B, deterministic transitions):")
    print(f"  converged at {coin_elapsed:.0f} time, estimate {mean_estimate:.3f}, "
          f"error {max(abs(e - target) for e in estimates):.3f}")

    print("\nBoth variants estimate log2(n) within a constant additive error; the "
          "synthetic-coin variant pays extra time to generate each geometric "
          "variable one scheduler flip at a time and stores its sums in every "
          "worker (O(log^6 n) states instead of O(log^4 n)).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
