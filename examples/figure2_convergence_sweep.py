"""Reproduce Figure 2: convergence time of Log-Size-Estimation vs population size.

The paper's Appendix C plots the parallel time at which all agents reach
``epoch = 5 * logSize2`` for ``n`` between 10^2 and 10^5 (10 runs per size),
noting that the estimate is always within additive error 2 in practice.  This
example runs the same sweep on the vectorised engine with the paper's
constants and prints the per-size table, an ASCII rendering of the scatter and
a CSV you can plot with any tool.

The default grid stops at 1024 agents so the script finishes in about a
minute; pass larger sizes explicitly to go further (runtime grows roughly like
``n log^2 n``)::

    python examples/figure2_convergence_sweep.py 100,1000,10000 5 figure2.csv
"""

from __future__ import annotations

import sys

from repro import ProtocolParameters
from repro.harness.figures import reproduce_figure2
from repro.workloads.populations import parse_size_list


def main() -> int:
    sizes = parse_size_list(sys.argv[1]) if len(sys.argv) > 1 else [128, 256, 512, 1024]
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    csv_path = sys.argv[3] if len(sys.argv) > 3 else ""

    print(f"Figure 2 sweep: sizes={sizes}, {runs} runs per size, paper constants")
    result = reproduce_figure2(
        population_sizes=sizes,
        runs_per_size=runs,
        params=ProtocolParameters.paper(),
        base_seed=2019,
    )

    print()
    print(result.table())
    print()
    print(result.ascii_plot())
    print()
    print(f"maximum additive error over all runs : {result.max_error_observed():.3f} "
          "(paper: always below 2)")
    slope = result.growth_exponent()
    if slope is not None:
        print(f"slope of time vs log2(n)^2           : {slope:.2f} "
              "(roughly constant => O(log^2 n) scaling)")
    if result.non_converged_runs:
        print(f"non-converged runs                   : {result.non_converged_runs}")

    if csv_path:
        with open(csv_path, "w", encoding="utf-8") as handle:
            handle.write(result.to_csv())
        print(f"raw points written to {csv_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
