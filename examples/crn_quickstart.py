"""Quickstart for the CRN front-end: three lines of spec, any engine.

Defines the SIR epidemic as a declarative reaction network, compiles it,
runs it on the batched engine, and cross-checks the final epidemic size
against the exact Gillespie SSA at a small population.

Usage::

    python examples/crn_quickstart.py [population_size] [seed]
"""

from __future__ import annotations

import sys

from repro.crn import CRN, compile_crn, simulate_ssa
from repro.crn.library import epidemic_extinct_predicate


def main() -> int:
    population_size = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    # The whole protocol specification: two reactions and an initial
    # condition.  R0 = 2, one seeded infection.
    crn = CRN.from_spec(
        ["S + I -> I + I @ 2.0", "I -> R @ 1.0"],
        name="sir",
        seeds={"I": 1},
        fractions={"S": 1.0},
    )

    compiled = compile_crn(crn)  # exact mass-action kinetics, any engine
    simulator = compiled.build("batched", population_size, seed=seed)
    parallel_time = simulator.run_until(
        epidemic_extinct_predicate,
        max_parallel_time=compiled.to_parallel_time(500.0),
    )

    print(crn.describe())
    print(f"population:        {population_size}")
    print(f"infection died at: chemical time "
          f"{compiled.to_chemical_time(parallel_time):.2f} "
          f"({simulator.interactions} interactions on the batched engine)")
    final_size = simulator.count("R")
    print(f"final size:        {final_size} recovered "
          f"({100.0 * final_size / population_size:.1f}% of the population)")

    # At a small population the exact Gillespie reference is feasible — the
    # engines simulate the same chain (DESIGN.md, CRN front-end).  The SIR
    # final size is bimodal (with R0 = 2 roughly half the chains die out
    # immediately), so compare means over a batch of runs, not single draws.
    small_n, runs = 200, 40
    ssa_mean = sum(
        simulate_ssa(crn, small_n, sample_times=[500.0], seed=seed + run).at(0)["R"]
        for run in range(runs)
    ) / runs
    engine_total = 0
    for run in range(runs):
        small_engine = compiled.build("count", small_n, seed=seed + run)
        small_engine.run_until(
            epidemic_extinct_predicate,
            max_parallel_time=compiled.to_parallel_time(500.0),
        )
        engine_total += small_engine.count("R")
    print(f"\nsmall-n cross-check (n = {small_n}, mean final size over {runs} runs):")
    print(f"  exact SSA:    {ssa_mean:.1f}")
    print(f"  count engine: {engine_total / runs:.1f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
