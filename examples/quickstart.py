"""Quickstart: estimate log2(n) with the paper's uniform leaderless protocol.

Runs the ``Log-Size-Estimation`` protocol (Protocol 1 of Doty & Eftekhari,
PODC 2019) on a small population with the reference (agent-level) engine and
prints the estimate every agent converges to.

Usage::

    python examples/quickstart.py [population_size] [seed]
"""

from __future__ import annotations

import math
import sys

from repro import LogSizeEstimationProtocol, ProtocolParameters, Simulation
from repro.core import all_agents_done
from repro.core.log_size_estimation import estimate_error, worker_count


def main() -> int:
    population_size = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    # The "moderate" constants keep the demo fast; swap in
    # ProtocolParameters.paper() for the constants used in the paper.
    params = ProtocolParameters.moderate()
    protocol = LogSizeEstimationProtocol(params)
    simulation = Simulation(protocol, population_size, seed=seed)

    print(f"Running Log-Size-Estimation on n = {population_size} agents "
          f"({params.describe()}) ...")
    elapsed = simulation.run_until(all_agents_done, max_parallel_time=500_000)

    report = estimate_error(simulation)
    print(f"converged after {elapsed:.0f} units of parallel time "
          f"({simulation.metrics.interactions} interactions)")
    print(f"worker agents (role A): {worker_count(simulation)} of {population_size}")
    print(f"true log2(n)          : {math.log2(population_size):.3f}")
    print(f"estimate (all agents) : {report['mean_estimate']:.3f}")
    print(f"additive error        : {report['max_additive_error']:.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
