"""Cache-key and capability-matrix contracts (K4xx/M5xx)."""

from __future__ import annotations

import dataclasses
import json
import textwrap

from repro.staticcheck.contracts import (
    FieldPerturbation,
    audit_cache_key,
    cache_key_diagnostics,
    capability_matrix_diagnostics,
    declared_backend_cells,
    declared_scheduler_cells,
    exercised_cells,
    store_exclusion_diagnostics,
    telemetry_exclusion_diagnostics,
)


def _rules(diagnostics):
    return {d.rule for d in diagnostics}


@dataclasses.dataclass(frozen=True)
class FakeSpec:
    """Deliberately broken: ``extra`` is missing from the key payload."""

    alpha: int = 1
    extra: int = 0

    def cache_key(self) -> str:
        return json.dumps({"alpha": self.alpha})


class TestCacheKeyAudit:
    def test_real_specs_are_complete(self):
        assert cache_key_diagnostics() == []

    def test_k401_detects_omitted_field(self):
        diagnostics = audit_cache_key(
            FakeSpec,
            baseline={"alpha": 1, "extra": 0},
            perturbations=[
                FieldPerturbation("alpha", 2),
                FieldPerturbation("extra", 5),
            ],
            key=lambda spec: spec.cache_key(),
            location="spec:FakeSpec",
        )
        assert _rules(diagnostics) == {"K401"}
        (diag,) = diagnostics
        assert diag.location == "spec:FakeSpec.extra" and diag.severity == "error"

    def test_k402_unaudited_field(self):
        diagnostics = audit_cache_key(
            FakeSpec,
            baseline={"alpha": 1, "extra": 0},
            perturbations=[FieldPerturbation("alpha", 2)],
            key=lambda spec: spec.cache_key(),
            location="spec:FakeSpec",
        )
        assert "K402" in _rules(diagnostics)

    def test_k403_unbuildable_perturbation(self):
        diagnostics = audit_cache_key(
            FakeSpec,
            baseline={"alpha": 1, "extra": 0},
            perturbations=[
                FieldPerturbation("alpha", 2),
                FieldPerturbation("extra", 5, base={"bogus_kwarg": 1}),
            ],
            key=lambda spec: spec.cache_key(),
            location="spec:FakeSpec",
        )
        assert "K403" in _rules(diagnostics)

    def test_k403_identical_variant(self):
        diagnostics = audit_cache_key(
            FakeSpec,
            baseline={"alpha": 1, "extra": 0},
            perturbations=[
                FieldPerturbation("alpha", 2),
                FieldPerturbation("extra", 0),  # same as baseline
            ],
            key=lambda spec: spec.cache_key(),
            location="spec:FakeSpec",
        )
        assert "K403" in _rules(diagnostics)


class TestStoreExclusion:
    def test_real_store_spec_is_fully_audited(self):
        assert store_exclusion_diagnostics() == []

    def test_k404_on_unaudited_store_field(self, monkeypatch):
        # Drop one StoreSpec field from the audit list: the checker must
        # demand an explicit decision for it.
        import repro.store.base as base

        monkeypatch.setattr(
            base, "STORE_KEY_EXCLUDED_FIELDS", ("scheme", "location", "name")
        )
        diagnostics = store_exclusion_diagnostics()
        assert {d.rule for d in diagnostics} == {"K404"}
        (diag,) = diagnostics
        assert "lease_seconds" in diag.message

    def test_k404_on_phantom_audited_field(self, monkeypatch):
        import repro.store.base as base

        monkeypatch.setattr(
            base,
            "STORE_KEY_EXCLUDED_FIELDS",
            base.STORE_KEY_EXCLUDED_FIELDS + ("renamed_away",),
        )
        diagnostics = store_exclusion_diagnostics()
        assert any(
            d.rule == "K404" and "renamed_away" in d.message for d in diagnostics
        )

    def test_k405_on_key_payload_collision(self, monkeypatch):
        # If an excluded name ever coincides with a TrialSpec payload key,
        # store selection would leak into trial identity.
        import repro.store.base as base

        monkeypatch.setattr(
            base,
            "STORE_KEY_EXCLUDED_FIELDS",
            base.STORE_KEY_EXCLUDED_FIELDS + ("engine",),
        )
        diagnostics = store_exclusion_diagnostics()
        assert any(d.rule == "K405" and "engine" in d.message for d in diagnostics)


class TestTelemetryExclusion:
    def test_real_telemetry_layer_is_excluded_from_cache_keys(self):
        # K406 on the live tree: flipping the recorder must not move any
        # cache key, and no manifest name may shadow spec identity.
        assert telemetry_exclusion_diagnostics() == []

    def test_recorder_state_is_restored_after_the_audit(self):
        from repro.obs.recorder import RECORDER

        prior = RECORDER.enabled
        telemetry_exclusion_diagnostics()
        assert RECORDER.enabled == prior
        RECORDER.enabled = True
        try:
            telemetry_exclusion_diagnostics()
            assert RECORDER.enabled is True
        finally:
            RECORDER.enabled = prior

    def test_k406_on_manifest_field_colliding_with_spec_field(self):
        # Inject a drifted manifest schema: a field named like a TrialSpec
        # field would let telemetry leak into trial identity.
        diagnostics = telemetry_exclusion_diagnostics(
            manifest_fields=("schema", "engine")
        )
        assert _rules(diagnostics) == {"K406"}
        assert any(
            "'engine'" in d.message and d.location == "spec:TrialSpec.engine"
            for d in diagnostics
        )

    def test_k406_on_telemetry_key_colliding_with_payload_key(self):
        diagnostics = telemetry_exclusion_diagnostics(telemetry_key="kind")
        assert any(d.rule == "K406" and "'kind'" in d.message for d in diagnostics)

    def test_k406_findings_are_errors(self):
        diagnostics = telemetry_exclusion_diagnostics(
            manifest_fields=("base_seed", "engine"), telemetry_key="kind"
        )
        assert len(diagnostics) == 3
        assert all(d.severity == "error" for d in diagnostics)


class TestCapabilityMatrix:
    def test_real_grid_is_consistent(self):
        assert capability_matrix_diagnostics(root=".") == []

    def test_declared_cells_are_nonempty(self):
        assert len(declared_scheduler_cells()) >= 13
        # batched/vector/multiscale x numpy/numba/native
        assert len(declared_backend_cells()) == 9

    def test_m501_on_missing_cell(self, tmp_path):
        self._write_grid(
            tmp_path,
            scheduler_cells=sorted(declared_scheduler_cells())[:-1],
            backend_cells=sorted(declared_backend_cells()),
        )
        diagnostics = capability_matrix_diagnostics(root=tmp_path)
        assert _rules(diagnostics) == {"M501"}

    def test_m502_on_phantom_cell(self, tmp_path):
        self._write_grid(
            tmp_path,
            scheduler_cells=sorted(declared_scheduler_cells())
            + [("agent", "imaginary")],
            backend_cells=sorted(declared_backend_cells()),
        )
        diagnostics = capability_matrix_diagnostics(root=tmp_path)
        assert _rules(diagnostics) == {"M502"}

    def test_m503_on_missing_constants(self, tmp_path):
        grid = tmp_path / "tests" / "engine" / "test_cross_engine.py"
        grid.parent.mkdir(parents=True)
        grid.write_text("x = 1\n")
        diagnostics = capability_matrix_diagnostics(root=tmp_path)
        assert _rules(diagnostics) == {"M503"} and len(diagnostics) == 2

    def test_m503_on_missing_module(self, tmp_path):
        (diag,) = capability_matrix_diagnostics(root=tmp_path)
        assert diag.rule == "M503"

    def test_exercised_cells_parses_literals(self, tmp_path):
        path = tmp_path / "grid.py"
        path.write_text(
            textwrap.dedent(
                """
                EXERCISED_CELLS = [("agent", "sequential")]
                EXERCISED_BACKEND_CELLS = [("vector", "numpy")]
                """
            )
        )
        scheduler_cells, backend_cells = exercised_cells(path)
        assert scheduler_cells == {("agent", "sequential")}
        assert backend_cells == {("vector", "numpy")}

    @staticmethod
    def _write_grid(root, scheduler_cells, backend_cells):
        grid = root / "tests" / "engine" / "test_cross_engine.py"
        grid.parent.mkdir(parents=True)
        grid.write_text(
            f"EXERCISED_CELLS = {sorted(scheduler_cells)!r}\n"
            f"EXERCISED_BACKEND_CELLS = {sorted(backend_cells)!r}\n"
        )
