"""Semantic analyzer (P1xx/C2xx): registry sweep + deliberately broken fixtures.

ISSUE contract: every registered protocol and CRN workload is analyzed in
CI and must be clean, or carry an expected-diagnostics fixture here; and a
deliberately broken protocol/CRN pair asserts that each rule actually fires.
"""

from __future__ import annotations

import pytest

from repro.crn.library import CRN_WORKLOADS
from repro.crn.model import CRN, Reaction
from repro.harness.parallel import WORKLOADS
from repro.protocols.base import FunctionalFiniteStateProtocol
from repro.staticcheck.semantic import (
    analyze_crn,
    analyze_protocol,
    analyze_registries,
    reachable_indices,
    sample_initial_states,
    starvation_diagnostics,
)

# Registered workloads that are *expected* to report diagnostics, with the
# exact rule set they may emit.  Anything not listed here must be clean.
EXPECTED_PROTOCOL_DIAGNOSTICS = {
    # Non-consensus outputs by design: the leader protocol stabilises with
    # exactly one True agent; the termination protocol's per-agent "I have
    # terminated" flag spreads but never needs global consensus (paper
    # Section 3.4 builds on exactly this).
    "leader": {"P102"},
    "termination": {"P102"},
}

EXPECTED_CRN_DIAGNOSTICS: dict[str, set[str]] = {}


def _rules(diagnostics):
    return {d.rule for d in diagnostics}


class TestRegistrySweep:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_registered_protocol_clean_or_expected(self, name):
        protocol = WORKLOADS[name].factory()
        diagnostics = analyze_protocol(protocol, location=f"protocol:{name}")
        allowed = EXPECTED_PROTOCOL_DIAGNOSTICS.get(name, set())
        assert _rules(diagnostics) <= allowed, [
            (d.rule, d.message) for d in diagnostics
        ]

    @pytest.mark.parametrize("name", sorted(CRN_WORKLOADS))
    def test_registered_crn_clean_or_expected(self, name):
        diagnostics = analyze_crn(CRN_WORKLOADS[name].crn, location=f"crn:{name}")
        allowed = EXPECTED_CRN_DIAGNOSTICS.get(name, set())
        assert _rules(diagnostics) <= allowed, [
            (d.rule, d.message) for d in diagnostics
        ]

    def test_analyze_registries_covers_every_workload(self):
        diagnostics = analyze_registries()
        locations = {d.location.split(":", 2)[1] for d in diagnostics}
        # Only the expected locations may appear at all.
        expected = set(EXPECTED_PROTOCOL_DIAGNOSTICS) | set(EXPECTED_CRN_DIAGNOSTICS)
        assert locations <= expected


# -- broken protocol fixtures -------------------------------------------------


class _BrokenCompileProtocol:
    """compiled() raises: P100."""

    def initial_state(self, agent_id):
        return "A"

    def compiled(self):
        raise RuntimeError("deliberately broken table")


class _ForeignInitialProtocol(FunctionalFiniteStateProtocol):
    """initial_state returns a state outside the declared set: P104."""

    def initial_state(self, agent_id):
        return "GHOST"


def _two_state_protocol(output_map=None, extra_state=None):
    states = ["A", "B"] + ([extra_state] if extra_state else [])
    return FunctionalFiniteStateProtocol(
        state_set=states,
        transition_map={("A", "A"): [("A", "B", 1.0)]},
        initial="A",
        output_map=output_map,
    )


class TestBrokenProtocols:
    def test_p100_compile_failure(self):
        diagnostics = analyze_protocol(_BrokenCompileProtocol(), location="protocol:x")
        assert _rules(diagnostics) == {"P100"}
        assert diagnostics[0].severity == "error"

    def test_p101_unreachable_state(self):
        protocol = _two_state_protocol(
            output_map={"A": 0, "B": 0, "DEAD": 0}, extra_state="DEAD"
        )
        diagnostics = analyze_protocol(protocol, location="protocol:x")
        assert _rules(diagnostics) == {"P101"}
        assert "'DEAD'" in diagnostics[0].message

    def test_p102_output_instability_aggregated(self):
        # A and B are mutually inert once B exists?  No: (A,A) reacts, but
        # a pure {B} pair is inert; use two inert states with split outputs.
        protocol = FunctionalFiniteStateProtocol(
            state_set=["A", "B"],
            transition_map={},
            initial=lambda agent_id: "A" if agent_id % 2 == 0 else "B",
            output_map={"A": True, "B": False},
        )
        diagnostics = analyze_protocol(protocol, location="protocol:x")
        (diag,) = diagnostics
        assert diag.rule == "P102" and diag.severity == "warning"
        assert "1 reachable mutually-inert" in diag.message

    def test_p102_suppressed_when_outputs_agree(self):
        protocol = FunctionalFiniteStateProtocol(
            state_set=["A", "B"],
            transition_map={},
            initial=lambda agent_id: "A" if agent_id % 2 == 0 else "B",
            output_map={"A": True, "B": True},
        )
        assert analyze_protocol(protocol, location="protocol:x") == []

    def test_p103_starved_reactive_pair(self):
        protocol = _two_state_protocol(output_map={"A": 0, "B": 0})
        table = protocol.compiled()
        reach = reachable_indices(table, [table.index["A"]])
        diagnostics = starvation_diagnostics(
            table, reach, rates={"A": 0.0}, location="protocol:x"
        )
        assert diagnostics and all(d.rule == "P103" for d in diagnostics)
        assert all(d.severity == "error" for d in diagnostics)

    def test_p103_silent_with_positive_rates(self):
        protocol = _two_state_protocol(output_map={"A": 0, "B": 0})
        table = protocol.compiled()
        reach = reachable_indices(table, [table.index["A"]])
        assert (
            starvation_diagnostics(table, reach, rates={}, location="protocol:x")
            == []
        )

    def test_p104_foreign_initial_state(self):
        protocol = _ForeignInitialProtocol(
            state_set=["A", "B"],
            transition_map={("A", "A"): [("A", "B", 1.0)]},
            initial="A",
            output_map={"A": 0, "B": 0},
        )
        diagnostics = analyze_protocol(protocol, location="protocol:x")
        assert "P104" in _rules(diagnostics)
        assert "'GHOST'" in next(
            d.message for d in diagnostics if d.rule == "P104"
        )

    def test_sample_initial_states_dedupes(self):
        protocol = _two_state_protocol(output_map={"A": 0, "B": 0})
        assert sample_initial_states(protocol) == ("A",)


# -- broken CRN fixtures ------------------------------------------------------


def _raw_reaction(reactants, products, rate=1.0):
    """Bypass Reaction validation so the analyzer (not the model) reports."""
    reaction = object.__new__(Reaction)
    object.__setattr__(reaction, "reactants", tuple(reactants))
    object.__setattr__(reaction, "products", tuple(products))
    object.__setattr__(reaction, "rate", rate)
    return reaction


def _raw_crn(name, reactions, seeds=(), fractions=()):
    crn = object.__new__(CRN)
    object.__setattr__(crn, "name", name)
    object.__setattr__(crn, "reactions", tuple(reactions))
    object.__setattr__(crn, "seeds", tuple(seeds))
    object.__setattr__(crn, "fractions", tuple(fractions))
    return crn


class TestBrokenCRNs:
    def test_c201_dead_reaction_missing_reactant(self):
        crn = CRN.from_spec(
            ["X + Y -> X + X"], name="dead", fractions={"X": 1.0}
        )
        diagnostics = analyze_crn(crn, location="crn:dead")
        rules = _rules(diagnostics)
        assert "C201" in rules  # Y never present -> reaction never fires
        assert "C202" in rules  # ...and Y is an unreachable species

    def test_c201_single_seed_blocks_a_plus_a(self):
        crn = CRN.from_spec(
            ["L + L -> L + F"], name="pair", seeds={"L": 1}, fractions={"F": 1.0}
        )
        diagnostics = analyze_crn(crn, location="crn:pair")
        c201 = [d for d in diagnostics if d.rule == "C201"]
        assert len(c201) == 1 and "count 2" in c201[0].hint

    def test_a_plus_a_fires_with_two_seeds(self):
        crn = CRN.from_spec(
            ["L + L -> L + F"], name="pair", seeds={"L": 2}, fractions={"F": 1.0}
        )
        assert "C201" not in _rules(analyze_crn(crn, location="crn:pair"))

    def test_c203_non_conserving_reaction(self):
        crn = _raw_crn(
            "unbalanced",
            [_raw_reaction(("A", "B"), ("A",))],
            fractions=(("A", 0.5), ("B", 0.5)),
        )
        diagnostics = analyze_crn(crn, location="crn:unbalanced")
        assert "C203" in _rules(diagnostics)

    def test_c204_invalid_rate(self):
        crn = _raw_crn(
            "badrate",
            [_raw_reaction(("A", "B"), ("B", "B"), rate=-1.0)],
            fractions=(("A", 0.5), ("B", 0.5)),
        )
        diagnostics = analyze_crn(crn, location="crn:badrate")
        assert "C204" in _rules(diagnostics)

    def test_c205_extreme_rate_range(self):
        crn = CRN.from_spec(
            ["A + B -> B + B @ 1.0", "B + A -> A + A @ 1e8"],
            name="range",
            fractions={"A": 0.5, "B": 0.5},
        )
        diagnostics = analyze_crn(crn, location="crn:range")
        c205 = [d for d in diagnostics if d.rule == "C205"]
        assert len(c205) == 1 and c205[0].severity == "warning"

    def test_c206_tau_leap_ill_conditioning(self):
        # Stiff but below the C205 limit: only the tau-leap warning fires.
        crn = CRN.from_spec(
            ["A + B -> B + B @ 1.0", "B + A -> A + A @ 1e4"],
            name="stiff",
            fractions={"A": 0.5, "B": 0.5},
        )
        diagnostics = analyze_crn(crn, location="crn:stiff")
        rules = _rules(diagnostics)
        assert "C206" in rules and "C205" not in rules
        c206 = [d for d in diagnostics if d.rule == "C206"][0]
        assert c206.severity == "warning"
        assert "--leap-eps" in c206.hint

    def test_c206_quiet_below_threshold(self):
        crn = CRN.from_spec(
            ["A + B -> B + B @ 1.0", "B + A -> A + A @ 100.0"],
            name="mild",
            fractions={"A": 0.5, "B": 0.5},
        )
        assert "C206" not in _rules(analyze_crn(crn, location="crn:mild"))

    def test_clean_crn_reports_nothing(self):
        crn = CRN.from_spec(
            ["A + B -> B + B"], name="epi", fractions={"A": 0.9, "B": 0.1}
        )
        assert analyze_crn(crn, location="crn:epi") == []
