"""Diagnostic plumbing: severities, waivers, rendering, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.staticcheck.diagnostics import (
    Diagnostic,
    Waiver,
    apply_waivers,
    exit_code,
    load_waiver_file,
    render_json,
    render_text,
)


def _diag(rule="D301", severity="error", location="src/x.py:3", message="m"):
    return Diagnostic(rule=rule, severity=severity, location=location, message=message)


class TestDiagnostic:
    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            _diag(severity="fatal")

    def test_as_dict_omits_waiver_when_absent(self):
        assert "waived_by" not in _diag().as_dict()


class TestWaivers:
    def test_waiver_matches_by_rule_and_location_prefix(self):
        waiver = Waiver(rule="D301", location="src/x.py", justification="why")
        assert waiver.matches(_diag(location="src/x.py:3"))
        assert not waiver.matches(_diag(location="src/y.py:3"))
        assert not waiver.matches(_diag(rule="D302", location="src/x.py:3"))

    def test_apply_marks_waived_and_reports_unused(self):
        waivers = [
            Waiver(rule="D301", location="src/x.py", justification="ok here"),
            Waiver(rule="P102", location="protocol:gone", justification="stale"),
        ]
        out = apply_waivers([_diag()], waivers)
        assert out[0].waived and out[0].waived_by == "ok here"
        unused = [d for d in out if d.rule == "W001"]
        assert len(unused) == 1 and "P102" in unused[0].message

    def test_unused_reporting_can_be_suppressed_by_prefix(self):
        waivers = [Waiver(rule="D301", location="src/gone.py", justification="j")]
        out = apply_waivers([], waivers, suppress_unused_prefixes=("D",))
        assert out == []

    def test_load_waiver_file(self, tmp_path):
        path = tmp_path / "waivers.json"
        path.write_text(
            json.dumps(
                {
                    "waivers": [
                        {"rule": "D301", "location": "src/x.py", "justification": "j"}
                    ]
                }
            )
        )
        (waiver,) = load_waiver_file(path)
        assert waiver.rule == "D301"

    def test_load_waiver_file_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "waivers.json"
        path.write_text(json.dumps({"waivers": [{"rule": "D301"}]}))
        with pytest.raises(ValueError):
            load_waiver_file(path)


class TestExitAndRendering:
    def test_exit_zero_when_errors_waived(self):
        waived = apply_waivers(
            [_diag()], [Waiver(rule="D301", location="src/x.py", justification="j")]
        )
        assert exit_code(waived) == 0

    def test_exit_one_on_unwaived_error(self):
        assert exit_code([_diag()]) == 1

    def test_warnings_never_fail(self):
        assert exit_code([_diag(severity="warning")]) == 0

    def test_render_text_counts_exclude_waived(self):
        waived = apply_waivers(
            [_diag()], [Waiver(rule="D301", location="src/x.py", justification="j")]
        )
        text = render_text(waived)
        assert "0 error(s)" in text and "[waived: j]" in text

    def test_render_json_shape(self):
        payload = json.loads(render_json([_diag(), _diag(severity="warning")]))
        assert payload["exit_code"] == 1
        assert payload["summary"] == {"error": 1, "warning": 1, "info": 0}
        assert payload["diagnostics"][0]["rule"] == "D301"

    def test_render_text_clean(self):
        assert "clean" in render_text([])
