"""Typing ratchet (T6xx): baseline comparison logic, mypy-independent."""

from __future__ import annotations

import json

import pytest

from repro.staticcheck import typing_ratchet
from repro.staticcheck.typing_ratchet import (
    BASELINE_PATH,
    _counts_by_package,
    typing_diagnostics,
)

PACKAGES = ("engine", "backend")

_SAMPLE_OUTPUT = """\
src/repro/engine/core.py:10: error: Missing return type  [no-untyped-def]
src/repro/engine/core.py:22: error: Incompatible types  [assignment]
src/repro/backend/numpy_backend.py:5: error: Untyped call  [no-untyped-call]
src/repro/engine/core.py:30: note: See docs
"""


def _rules(diagnostics):
    return {d.rule for d in diagnostics}


class TestCountParsing:
    def test_counts_by_package(self):
        counts = _counts_by_package(_SAMPLE_OUTPUT, PACKAGES)
        assert counts == {"engine": 2, "backend": 1}

    def test_notes_not_counted(self):
        assert _counts_by_package(
            "src/repro/engine/x.py:1: note: hi\n", PACKAGES
        ) == {"engine": 0, "backend": 0}


class TestRatchet:
    @pytest.fixture
    def fake_mypy(self, monkeypatch):
        """Pretend mypy is installed and returns _SAMPLE_OUTPUT."""
        monkeypatch.setattr(typing_ratchet, "_mypy_available", lambda: True)
        monkeypatch.setattr(
            typing_ratchet, "_run_mypy", lambda root, packages: (1, _SAMPLE_OUTPUT)
        )

    def _write_baseline(self, root, counts):
        (root / BASELINE_PATH).write_text(json.dumps(counts))

    def test_t600_when_mypy_absent(self, tmp_path, monkeypatch):
        monkeypatch.setattr(typing_ratchet, "_mypy_available", lambda: False)
        (diag,) = typing_diagnostics(tmp_path, packages=PACKAGES)
        assert diag.rule == "T600" and diag.severity == "info"

    def test_t601_when_errors_rise(self, tmp_path, fake_mypy):
        self._write_baseline(tmp_path, {"engine": 1, "backend": 1})
        diagnostics = typing_diagnostics(tmp_path, packages=PACKAGES)
        assert _rules(diagnostics) == {"T601"}
        assert diagnostics[0].severity == "error"

    def test_t602_when_errors_fall(self, tmp_path, fake_mypy):
        self._write_baseline(tmp_path, {"engine": 5, "backend": 1})
        diagnostics = typing_diagnostics(tmp_path, packages=PACKAGES)
        assert _rules(diagnostics) == {"T602"}

    def test_silent_when_counts_match(self, tmp_path, fake_mypy):
        self._write_baseline(tmp_path, {"engine": 2, "backend": 1})
        assert typing_diagnostics(tmp_path, packages=PACKAGES) == []

    def test_t603_for_unbaselined_package(self, tmp_path, fake_mypy):
        self._write_baseline(tmp_path, {"engine": 2})
        diagnostics = typing_diagnostics(tmp_path, packages=PACKAGES)
        assert _rules(diagnostics) == {"T603"}

    def test_t604_on_mypy_crash(self, tmp_path, monkeypatch):
        monkeypatch.setattr(typing_ratchet, "_mypy_available", lambda: True)
        monkeypatch.setattr(
            typing_ratchet, "_run_mypy", lambda root, packages: (2, "boom")
        )
        (diag,) = typing_diagnostics(tmp_path, packages=PACKAGES)
        assert diag.rule == "T604" and diag.severity == "error"

    def test_t605_update_writes_baseline(self, tmp_path, fake_mypy):
        (diag,) = typing_diagnostics(
            tmp_path, packages=PACKAGES, update_baseline=True
        )
        assert diag.rule == "T605"
        recorded = json.loads((tmp_path / BASELINE_PATH).read_text())
        assert recorded == {"engine": 2, "backend": 1}
