"""Determinism lint (D3xx): fixture sources for each rule variant."""

from __future__ import annotations

import textwrap

import pytest

from repro.staticcheck.diagnostics import Waiver, apply_waivers
from repro.staticcheck.lint import lint_paths, lint_source


def _lint(source):
    return lint_source(textwrap.dedent(source), path="fixture.py")


def _rules(diagnostics):
    return [d.rule for d in diagnostics]


class TestGlobalRNG:
    @pytest.mark.parametrize(
        "source",
        [
            "import random\n",
            "import random as rnd\n",
            "from random import randint\n",
            "from random import Random, shuffle\n",
            "import numpy as np\nx = np.random.seed(0)\n",
            "import numpy as np\nx = np.random.random(3)\n",
            "import numpy\nnumpy.random.shuffle(items)\n",
            "import numpy.random\nnumpy.random.rand(4)\n",
            "import numpy.random as nr\nnr.randint(10)\n",
            "from numpy import random as nprand\nnprand.normal()\n",
            "from numpy.random import seed\n",
        ],
    )
    def test_d301_fires(self, source):
        diagnostics = _lint(source)
        assert "D301" in _rules(diagnostics), source

    @pytest.mark.parametrize(
        "source",
        [
            # Explicit generators are the sanctioned API.
            "import numpy as np\nrng = np.random.default_rng(7)\n",
            "from numpy.random import default_rng, SeedSequence\n",
            "import numpy.random as nr\ng = nr.Generator(nr.PCG64(3))\n",
            # Names that merely *look* like the banned modules.
            "x = self.random.choice(3)\n",
            "import numpy as np\nval = np.randomized_thing\n",
            "random = 3\nprint(random)\n",
        ],
    )
    def test_allowed_patterns_clean(self, source):
        assert _lint(source) == [], source


class TestWallClock:
    @pytest.mark.parametrize(
        "source",
        [
            "import time\nt = time.time()\n",
            "import time\nt = time.perf_counter()\n",
            "import time as tm\nt = tm.monotonic()\n",
            "from time import perf_counter\n",
            "from datetime import datetime\nd = datetime.now()\n",
            "from datetime import datetime as dt\nd = dt.utcnow()\n",
            "import datetime\nd = datetime.date.today()\n",
        ],
    )
    def test_d302_fires(self, source):
        diagnostics = _lint(source)
        assert "D302" in _rules(diagnostics), source

    @pytest.mark.parametrize(
        "source",
        [
            "import time\ntime.sleep(0.1)\n",
            "from time import sleep\n",
            "from datetime import timedelta\n",
            "import datetime\nd = datetime.timedelta(days=1)\n",
        ],
    )
    def test_non_clock_time_usage_clean(self, source):
        assert _lint(source) == [], source


class TestParsing:
    def test_d300_on_syntax_error(self):
        (diag,) = _lint("def broken(:\n")
        assert diag.rule == "D300" and diag.severity == "error"

    def test_locations_carry_line_numbers(self):
        (diag,) = _lint("x = 1\nimport random\n")
        assert diag.location == "fixture.py:2"


class TestRealTree:
    def test_shipped_library_findings_all_waivable(self):
        """Every D3xx finding in src/repro matches a committed waiver."""
        from repro.staticcheck.waivers import BUILTIN_WAIVERS

        diagnostics = lint_paths(["src/repro"], root=".")
        lint_waivers = [w for w in BUILTIN_WAIVERS if w.rule.startswith("D")]
        applied = apply_waivers(diagnostics, lint_waivers)
        unwaived = [
            d for d in applied if d.rule.startswith("D") and not d.waived
        ]
        assert unwaived == [], [(d.location, d.message) for d in unwaived]

    def test_migrated_modules_are_clean_without_waivers(self):
        """rng.py and initial_configurations.py must lint clean on their own."""
        diagnostics = lint_paths(
            [
                "src/repro/rng.py",
                "src/repro/workloads/initial_configurations.py",
            ],
            root=".",
        )
        assert diagnostics == []

    def test_waiver_scoping(self, tmp_path):
        victim = tmp_path / "victim.py"
        victim.write_text("import random\n")
        diagnostics = lint_paths([victim], root=tmp_path)
        applied = apply_waivers(
            diagnostics,
            [Waiver(rule="D301", location="victim.py", justification="test")],
        )
        assert applied[0].waived
