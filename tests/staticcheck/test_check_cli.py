"""End-to-end `repro check` / `repro engines --verify` CLI behaviour."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.staticcheck.runner import run_check


class TestRunCheck:
    def test_full_repo_is_clean(self):
        diagnostics, code = run_check(".")
        assert code == 0
        unwaived_errors = [
            d for d in diagnostics if d.severity == "error" and not d.waived
        ]
        assert unwaived_errors == []

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown analyzer families"):
            run_check(".", only=["spelling"])

    def test_scoped_lint_suppresses_stale_waiver_noise(self):
        diagnostics, code = run_check(
            ".", only=["lint"], lint_paths=["src/repro/rng.py"]
        )
        assert code == 0 and diagnostics == []


class TestCheckCommand:
    def test_check_exit_zero_on_repo(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out or "clean" in out

    def test_json_output_parses(self, capsys):
        assert main(["check", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 0
        assert set(payload["summary"]) == {"error", "warning", "info"}

    def test_injected_global_rng_fails_the_check(self, tmp_path, capsys):
        bad = tmp_path / "bad_module.py"
        bad.write_text("import random\nvalue = random.random()\n")
        code = main(["check", "--only", "lint", "--paths", str(bad)])
        assert code == 1
        assert "D301" in capsys.readouterr().out

    def test_injected_wall_clock_fails_the_check(self, tmp_path, capsys):
        bad = tmp_path / "bad_module.py"
        bad.write_text("import time\nstamp = time.time()\n")
        code = main(["check", "--only", "lint", "--paths", str(bad)])
        assert code == 1
        assert "D302" in capsys.readouterr().out

    def test_only_typing_passes_without_mypy(self, capsys):
        # Locally mypy may be missing (T600 info) or match the baseline.
        assert main(["check", "--only", "typing"]) == 0

    def test_waiver_file_downgrades_injected_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad_module.py"
        bad.write_text("import random\n")
        waivers = tmp_path / "waivers.json"
        waivers.write_text(
            json.dumps(
                {
                    "waivers": [
                        {
                            "rule": "D301",
                            "location": str(bad),
                            "justification": "test fixture",
                        }
                    ]
                }
            )
        )
        code = main(
            [
                "check",
                "--only",
                "lint",
                "--paths",
                str(bad),
                "--waivers",
                str(waivers),
            ]
        )
        assert code == 0
        assert "[waived: test fixture]" in capsys.readouterr().out

    def test_bad_waiver_file_is_usage_error(self, tmp_path, capsys):
        waivers = tmp_path / "waivers.json"
        waivers.write_text(json.dumps({"waivers": [{"rule": "D301"}]}))
        assert main(["check", "--waivers", str(waivers)]) == 2


class TestEnginesVerify:
    def test_verify_passes_on_repo(self, capsys):
        assert main(["engines", "--verify"]) == 0
        assert "capability matrix verified" in capsys.readouterr().out

    def test_plain_engines_listing_still_works(self, capsys):
        assert main(["engines"]) == 0
        assert "scheduler" in capsys.readouterr().out.lower()
