"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.parameters import ProtocolParameters
from repro.rng import RandomSource


@pytest.fixture
def fast_params() -> ProtocolParameters:
    """Scaled-down protocol constants so simulation tests stay fast."""
    return ProtocolParameters.fast_test()


@pytest.fixture
def moderate_params() -> ProtocolParameters:
    """Intermediate constants for integration tests."""
    return ProtocolParameters.moderate()


@pytest.fixture
def paper_params() -> ProtocolParameters:
    """The paper's constants (used only by small or slow-marked tests)."""
    return ProtocolParameters.paper()


@pytest.fixture
def rng() -> RandomSource:
    """A seeded random source."""
    return RandomSource(seed=12345)
