"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import subprotocols as sub
from repro.core.fields import LogSizeAgentState, Role
from repro.core.log_size_estimation import LogSizeEstimationProtocol
from repro.core.parameters import ProtocolParameters
from repro.engine.configuration import Configuration
from repro.rng import RandomSource
from repro.types import interactions_for_time, parallel_time

PARAMS = ProtocolParameters.fast_test()
PROTOCOL = LogSizeEstimationProtocol(PARAMS)


# -- strategies -----------------------------------------------------------------------

state_values = st.one_of(st.text(max_size=3), st.integers(-5, 5))
count_maps = st.dictionaries(state_values, st.integers(min_value=0, max_value=50), max_size=6)


def _coherent(state: LogSizeAgentState) -> LogSizeAgentState:
    """Restrict generated states to ones reachable in real executions.

    An agent that has not been assigned a role yet has had no interaction, so
    all its other fields still hold their initial values; workers never hold a
    running sum (space multiplexing).  Random generation does not know these
    invariants, so they are enforced here.
    """
    if state.is_unassigned:
        return LogSizeAgentState()
    if state.is_worker:
        state.total = 0
    return state


def agent_states() -> st.SearchStrategy[LogSizeAgentState]:
    """Random execution-coherent agent states of the main protocol."""
    return st.builds(
        LogSizeAgentState,
        role=st.sampled_from([Role.UNASSIGNED, Role.WORKER, Role.STORAGE]),
        time=st.integers(0, 200),
        total=st.integers(0, 500),
        epoch=st.integers(0, 30),
        gr=st.integers(1, 20),
        log_size2=st.integers(1, 20),
        protocol_done=st.booleans(),
        updated_sum=st.booleans(),
        output=st.one_of(st.none(), st.floats(0, 30, allow_nan=False)),
    ).map(_coherent)


# -- configuration properties -----------------------------------------------------------


@given(count_maps)
def test_configuration_size_is_sum_of_counts(counts):
    config = Configuration(counts)
    assert config.size == sum(count for count in counts.values() if count > 0)


@given(count_maps, st.integers(1, 5))
def test_scaling_preserves_density_floor(counts, factor):
    counts = {state: count for state, count in counts.items() if count > 0}
    if not counts:
        return
    config = Configuration(counts)
    assert math.isclose(
        config.density_floor(), config.scale(factor).density_floor(), rel_tol=1e-12
    )


@given(count_maps, count_maps)
def test_configuration_le_is_consistent_with_addition(first, second):
    small = Configuration(first)
    combined = small + Configuration(second)
    assert small <= combined


@given(count_maps)
def test_alpha_dense_iff_alpha_below_density_floor(counts):
    counts = {state: count for state, count in counts.items() if count > 0}
    if not counts:
        return
    config = Configuration(counts)
    floor = config.density_floor()
    # Slightly below the floor to stay clear of floating-point rounding in
    # the threshold comparison.
    assert config.is_alpha_dense(floor * (1 - 1e-12))
    if floor < 2 / 3:
        assert not config.is_alpha_dense(floor * 1.5 + 1e-9)


# -- time conversions ---------------------------------------------------------------------


@given(st.floats(0, 1e6, allow_nan=False), st.integers(2, 10_000))
def test_interactions_cover_requested_parallel_time(time, n):
    interactions = interactions_for_time(time, n)
    assert parallel_time(interactions, n) >= time - 1e-9
    assert parallel_time(max(interactions - 1, 0), n) <= time + 1e-9 or interactions == 0


# -- protocol transition invariants ---------------------------------------------------------


@settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(agent_states(), agent_states(), st.integers(0, 2**31 - 1))
def test_transition_preserves_role_assignment(receiver, sender, seed):
    """Once assigned, an agent's role never changes (the paper's partition)."""
    rng = RandomSource(seed=seed)
    new_receiver, new_sender = PROTOCOL.transition(receiver, sender, rng)
    if not receiver.is_unassigned:
        assert new_receiver.role is receiver.role
    if not sender.is_unassigned:
        assert new_sender.role is sender.role
    assert not (new_receiver.is_unassigned and new_sender.is_unassigned) or (
        receiver.is_unassigned and sender.is_unassigned
    )


@settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(agent_states(), agent_states(), st.integers(0, 2**31 - 1))
def test_transition_never_decreases_log_size2(receiver, sender, seed):
    """logSize2 is a running maximum: it never decreases at any agent."""
    rng = RandomSource(seed=seed)
    new_receiver, new_sender = PROTOCOL.transition(receiver, sender, rng)
    assert new_receiver.log_size2 >= receiver.log_size2
    assert new_sender.log_size2 >= sender.log_size2
    # And after the interaction the two agents agree on the maximum seen.
    assert max(new_receiver.log_size2, new_sender.log_size2) >= max(
        receiver.log_size2, sender.log_size2
    )


@settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(agent_states(), agent_states(), st.integers(0, 2**31 - 1))
def test_transition_does_not_mutate_inputs(receiver, sender, seed):
    receiver_before = receiver.clone()
    sender_before = sender.clone()
    PROTOCOL.transition(receiver, sender, RandomSource(seed=seed))
    assert receiver == receiver_before
    assert sender == sender_before


@settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(agent_states(), agent_states(), st.integers(0, 2**31 - 1))
def test_workers_never_hold_sums(receiver, sender, seed):
    """Space multiplexing: only storage agents accumulate the running sum."""
    receiver.total = 0 if receiver.is_worker else receiver.total
    sender.total = 0 if sender.is_worker else sender.total
    new_receiver, new_sender = PROTOCOL.transition(
        receiver, sender, RandomSource(seed=seed)
    )
    if new_receiver.is_worker:
        assert new_receiver.total == 0
    if new_sender.is_worker:
        assert new_sender.total == 0


@settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(agent_states(), agent_states(), st.integers(0, 2**31 - 1))
def test_same_epoch_workers_agree_on_gr_after_interaction(receiver, sender, seed):
    """Propagate-Max-G.R.V.: same-epoch workers leave the interaction with equal gr."""
    receiver.role = Role.WORKER
    sender.role = Role.WORKER
    new_receiver, new_sender = PROTOCOL.transition(
        receiver, sender, RandomSource(seed=seed)
    )
    if (
        new_receiver.epoch == new_sender.epoch
        and receiver.log_size2 == sender.log_size2
    ):
        assert new_receiver.gr == new_sender.gr


# -- subprotocol-level properties ---------------------------------------------------------------


@settings(max_examples=200)
@given(st.integers(1, 50), st.integers(1, 50), st.integers(0, 2**31 - 1))
def test_propagate_max_clock_value_agrees_on_maximum(first_value, second_value, seed):
    rng = RandomSource(seed=seed)
    first = LogSizeAgentState(role=Role.WORKER, log_size2=first_value)
    second = LogSizeAgentState(role=Role.STORAGE, log_size2=second_value)
    sub.propagate_max_clock_value(first, second, rng, PARAMS)
    assert first.log_size2 == second.log_size2 == max(first_value, second_value)


@settings(max_examples=200)
@given(st.integers(0, 30), st.integers(0, 30), st.integers(0, 500), st.integers(0, 500))
def test_storage_epoch_propagation_is_monotone(epoch_a, epoch_b, total_a, total_b):
    rng = RandomSource(seed=1)
    first = LogSizeAgentState(role=Role.STORAGE, epoch=epoch_a, total=total_a, log_size2=30)
    second = LogSizeAgentState(role=Role.STORAGE, epoch=epoch_b, total=total_b, log_size2=30)
    sub.propagate_incremented_epoch(first, second, rng, PARAMS)
    assert first.epoch == second.epoch == max(epoch_a, epoch_b)
    assert first.total >= min(total_a, total_b)


# -- geometric analysis properties ------------------------------------------------------------


@settings(max_examples=50)
@given(st.integers(50, 5_000), st.floats(0.5, 10.0, allow_nan=False))
def test_maximum_tail_bounds_are_probabilities(population, deviation):
    from repro.analysis.geometric import maximum_lower_tail, maximum_upper_tail

    for bound in (maximum_upper_tail(deviation), maximum_lower_tail(deviation)):
        assert 0.0 <= bound <= 1.0
    assert population > 0


@settings(max_examples=50)
@given(st.integers(2, 10_000))
def test_expected_maximum_bracket_is_ordered(population):
    from repro.analysis.geometric import expected_maximum_of_geometrics

    lower, upper = expected_maximum_of_geometrics(population)
    assert lower < upper


# -- batched engine / compiled table properties ---------------------------------------------

finite_states = st.lists(
    st.sampled_from(["s0", "s1", "s2", "s3"]), min_size=2, max_size=4, unique=True
)


@st.composite
def finite_protocols(draw):
    """Random small finite-state protocols with valid outcome distributions."""
    states = draw(finite_states)
    transition_map = {}
    for receiver in states:
        for sender in states:
            if not draw(st.booleans()):
                continue
            receiver_out = draw(st.sampled_from(states))
            sender_out = draw(st.sampled_from(states))
            probability = draw(st.sampled_from([0.25, 0.5, 1.0]))
            transition_map[(receiver, sender)] = [(receiver_out, sender_out, probability)]
    initial = draw(st.sampled_from(states))
    from repro.protocols.base import FunctionalFiniteStateProtocol

    return FunctionalFiniteStateProtocol(
        state_set=states, transition_map=transition_map, initial=initial
    )


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(finite_protocols(), st.integers(10, 200), st.integers(0, 2**31 - 1))
def test_batched_engine_conserves_population_and_state_set(protocol, n, seed):
    from repro.engine.batched_simulator import BatchedCountSimulator

    simulator = BatchedCountSimulator(protocol, n, seed=seed)
    simulator.run_parallel_time(3)
    configuration = simulator.configuration()
    assert configuration.size == n
    assert configuration.states_present() <= set(protocol.states())
    assert simulator.states_seen() <= set(protocol.states())


@settings(max_examples=40, deadline=None)
@given(finite_protocols())
def test_compiled_table_probability_mass_is_complete(protocol):
    from repro.protocols.compiled import compile_transition_table

    table = compile_transition_table(protocol)
    total = table.outcome_probability.sum(axis=2) + table.null_probability
    assert (abs(total - 1.0) < 1e-9).all()
    # Explicit outcomes never encode the identity pair.
    for receiver in table.states:
        for sender in table.states:
            for outcome in table.outcomes(receiver, sender):
                assert (outcome.receiver_out, outcome.sender_out) != (receiver, sender)


@settings(max_examples=100)
@given(st.integers(0, 10_000), st.integers(1, 64))
def test_snapshot_boundaries_are_exact(total, samples):
    from repro.types import snapshot_boundaries

    boundaries = snapshot_boundaries(total, samples)
    assert boundaries == sorted(set(boundaries))
    if total == 0:
        assert boundaries == []
    else:
        assert boundaries[-1] == total
    if total >= samples:
        assert len(boundaries) == samples
