"""End-to-end integration tests spanning several subsystems.

These tests run complete protocol executions and check paper-level claims:
the accuracy and agreement of the size estimate across engines and variants,
the composition scheme driving a downstream protocol, the contrast between
uniform-dense and leader-driven termination behaviour (Theorems 3.13 / 4.1),
and, in a slow-marked test, a run with the paper's own constants.
"""

from __future__ import annotations

import math

import pytest

from repro.core.array_simulator import ArrayLogSizeSimulator, expected_convergence_time
from repro.core.composition import RestartComposition, stage_signal_reached
from repro.core.leader_terminating import (
    LeaderTerminatingSizeEstimation,
    all_agents_terminated,
)
from repro.core.log_size_estimation import (
    LogSizeEstimationProtocol,
    all_agents_done,
    estimate_error,
)
from repro.core.parameters import ProtocolParameters
from repro.core.synthetic_coin import SyntheticCoinLogSizeEstimation, all_workers_done
from repro.engine.simulator import Simulation
from repro.protocols.approximate_counting import AlistarhApproximateCounting
from repro.protocols.leader_election import NonuniformCounterLeaderElection
from repro.termination.definitions import TerminationSpec
from repro.termination.impossibility import termination_time_sweep


class TestAllVariantsAgree:
    """The three size-estimation implementations agree on what they compute."""

    N = 96
    FAST = ProtocolParameters.fast_test()

    def test_estimates_agree_across_variants(self):
        target = math.log2(self.N)
        estimates = {}

        simulation = Simulation(LogSizeEstimationProtocol(self.FAST), self.N, seed=1)
        simulation.run_until(all_agents_done, max_parallel_time=50_000)
        estimates["sequential"] = estimate_error(simulation)["mean_estimate"]

        array_result = ArrayLogSizeSimulator(self.N, params=self.FAST, seed=1).run_until_done(
            max_parallel_time=5_000
        )
        estimates["array"] = array_result.final_estimate_mean

        coin = Simulation(SyntheticCoinLogSizeEstimation(self.FAST), self.N, seed=1)
        coin.run_until(all_workers_done, max_parallel_time=50_000)
        worker_outputs = [s.output for s in coin.states if s.output is not None]
        estimates["synthetic_coin"] = sum(worker_outputs) / len(worker_outputs)

        for name, value in estimates.items():
            assert abs(value - target) < 4.5, f"{name} estimate {value} too far from {target}"
        # All three estimate the same quantity, so they should agree pairwise
        # within the sum of their tolerances.
        values = list(estimates.values())
        assert max(values) - min(values) < 6.0


class TestCompositionEndToEnd:
    def test_size_estimate_drives_downstream_nonuniform_protocol(self):
        """The Section 1.1 pipeline: weak estimate -> phase clock -> downstream.

        The downstream protocol is the Figure-1 nonuniform counter protocol,
        uniformised by receiving its threshold from the live size estimate.
        """
        downstream = NonuniformCounterLeaderElection(counter_threshold=1)

        def configure(protocol, estimate):
            protocol.counter_threshold = 5 * estimate

        downstream.configure_estimate = lambda estimate: configure(downstream, estimate)
        composition = RestartComposition(downstream, stage_length_factor=40)
        simulation = Simulation(composition, 64, seed=2)
        simulation.run_until(stage_signal_reached, max_parallel_time=5_000)
        # The composition delivered an estimate-derived threshold well above
        # the hard-coded placeholder of 1.
        assert downstream.counter_threshold >= 15
        # And the downstream protocol has been running: candidates were
        # eliminated and the remaining candidate count is sane.
        candidates = simulation.count_where(
            lambda state: composition.output(state) is True
        )
        assert 1 <= candidates < 64


class TestTerminationContrast:
    """Theorem 4.1 vs Theorem 3.13, measured side by side."""

    def test_dense_uniform_flat_vs_leader_growing(self):
        spec = TerminationSpec(terminated_predicate=lambda state: state.terminated)
        sizes = [32, 128]

        dense = termination_time_sweep(
            protocol_factory=lambda: NonuniformCounterLeaderElection(counter_threshold=8),
            spec=spec,
            population_sizes=sizes,
            runs_per_size=2,
            max_parallel_time=100.0,
            seed=3,
            check_interval=16,
        )
        leader = termination_time_sweep(
            protocol_factory=lambda: LeaderTerminatingSizeEstimation(
                params=ProtocolParameters.fast_test(),
                phase_count=8,
                termination_rounds_factor=1,
            ),
            spec=spec,
            population_sizes=sizes,
            runs_per_size=2,
            max_parallel_time=50_000.0,
            seed=3,
        )
        dense_ratio = dense[-1].mean_time / dense[0].mean_time
        leader_ratio = leader[-1].mean_time / leader[0].mean_time
        # The uniform dense protocol's termination time stays flat while the
        # leader-driven protocol's termination time grows with n.
        assert dense_ratio < 2.0
        assert leader_ratio > dense_ratio

    def test_leader_terminating_protocol_is_accurate_and_terminates(self):
        protocol = LeaderTerminatingSizeEstimation(
            params=ProtocolParameters.fast_test(),
            phase_count=16,
            termination_rounds_factor=2,
        )
        simulation = Simulation(protocol, 64, seed=4)
        simulation.run_until(all_agents_terminated, max_parallel_time=100_000)
        outputs = {protocol.output(state) for state in simulation.states}
        assert len(outputs) == 1
        (value,) = outputs
        assert abs(value - math.log2(64)) < 4.5


class TestPaperConstants:
    @pytest.mark.slow
    def test_paper_constants_at_moderate_population(self):
        """One run with the paper's constants (clock 95, epochs 5).

        Uses the vectorised engine; checks the Figure 2 convergence criterion
        and the in-practice additive error of 2 reported in Appendix C.
        """
        params = ProtocolParameters.paper()
        n = 512
        simulator = ArrayLogSizeSimulator(n, params=params, seed=2019)
        result = simulator.run_until_done(
            max_parallel_time=4 * expected_convergence_time(n, params)
        )
        assert result.converged
        assert result.max_additive_error <= 2.5
        # O(log^2 n) with the paper's constants: the convergence time should be
        # within a small factor of the a-priori estimate.
        assert result.convergence_time < 2 * expected_convergence_time(n, params)
