"""Tests for the m-rho-producibility closure."""

from __future__ import annotations

import pytest

from repro.exceptions import TerminationSpecError
from repro.protocols.base import FunctionalFiniteStateProtocol
from repro.protocols.epidemic import EpidemicProtocol, EpidemicState
from repro.protocols.majority import ApproximateMajorityProtocol
from repro.termination.producibility import ProducibilityAnalysis, producible_states


def _chain_protocol(length: int = 4) -> FunctionalFiniteStateProtocol:
    """x_i, x_i -> x_{i+1}, q : level i+1 is (i+1)-producible from {x_0}.

    This is exactly the example in the paper's footnote 18.
    """
    states = [f"x{i}" for i in range(length + 1)] + ["q"]
    transitions = {
        (f"x{i}", f"x{i}"): [(f"x{i+1}", "q", 1.0)] for i in range(length)
    }
    return FunctionalFiniteStateProtocol(
        state_set=states, transition_map=transitions, initial="x0"
    )


class TestClosure:
    def test_epidemic_closure_is_whole_state_set(self):
        analysis = ProducibilityAnalysis(EpidemicProtocol())
        result = analysis.closure({EpidemicState.INFECTED, EpidemicState.SUSCEPTIBLE})
        assert result.closure == frozenset(
            {EpidemicState.INFECTED, EpidemicState.SUSCEPTIBLE}
        )
        assert result.closure_depth == 0  # nothing new is produced

    def test_chain_depths_match_transition_count(self):
        protocol = _chain_protocol(4)
        analysis = ProducibilityAnalysis(protocol)
        result = analysis.closure({"x0"})
        assert result.depth_of["x0"] == 0
        for level in range(1, 5):
            assert result.depth_of[f"x{level}"] == level
        assert result.depth_of["q"] == 1
        assert result.closure_depth == 4

    def test_levels_are_monotone(self):
        result = ProducibilityAnalysis(_chain_protocol(3)).closure({"x0"})
        for earlier, later in zip(result.levels, result.levels[1:]):
            assert earlier <= later

    def test_max_depth_truncates(self):
        result = ProducibilityAnalysis(_chain_protocol(5)).closure({"x0"}, max_depth=2)
        assert "x2" in result.closure
        assert "x3" not in result.closure

    def test_producible_at_depth(self):
        result = ProducibilityAnalysis(_chain_protocol(3)).closure({"x0"})
        assert result.producible_at_depth(0) == frozenset({"x0"})
        assert "x2" in result.producible_at_depth(2)
        with pytest.raises(TerminationSpecError):
            result.producible_at_depth(-1)

    def test_rho_threshold_filters_unlikely_transitions(self):
        protocol = FunctionalFiniteStateProtocol(
            state_set=["a", "b", "c"],
            transition_map={
                ("a", "a"): [("b", "b", 0.9), ("c", "c", 0.05)],
            },
            initial="a",
        )
        analysis = ProducibilityAnalysis(protocol)
        assert "c" in analysis.closure({"a"}, rho=0.01).closure
        assert "c" not in analysis.closure({"a"}, rho=0.5).closure
        assert "b" in analysis.closure({"a"}, rho=0.5).closure

    def test_unknown_initial_state_rejected(self):
        analysis = ProducibilityAnalysis(EpidemicProtocol())
        with pytest.raises(TerminationSpecError):
            analysis.closure({"not-a-state"})

    def test_empty_initial_set_rejected(self):
        analysis = ProducibilityAnalysis(EpidemicProtocol())
        with pytest.raises(TerminationSpecError):
            analysis.closure(set())

    def test_invalid_rho_rejected(self):
        analysis = ProducibilityAnalysis(EpidemicProtocol())
        with pytest.raises(TerminationSpecError):
            analysis.closure({EpidemicState.INFECTED}, rho=0.0)


class TestHelpers:
    def test_producible_states_wrapper(self):
        closure = producible_states(ApproximateMajorityProtocol(), {"X", "Y"})
        assert closure == frozenset({"X", "Y", "B"})

    def test_blank_not_producible_from_single_opinion(self):
        closure = producible_states(ApproximateMajorityProtocol(), {"X"})
        assert closure == frozenset({"X"})

    def test_terminated_states_producible(self):
        protocol = FunctionalFiniteStateProtocol(
            state_set=["idle", "armed", "done"],
            transition_map={
                ("idle", "idle"): [("armed", "idle", 1.0)],
                ("armed", "idle"): [("done", "idle", 1.0)],
            },
            initial="idle",
        )
        analysis = ProducibilityAnalysis(protocol)
        terminated = analysis.terminated_states_producible(
            {"idle"}, terminated=lambda state: state == "done"
        )
        assert terminated == frozenset({"done"})
