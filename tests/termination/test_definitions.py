"""Tests for the Section 4 definitions: termination specs and dense families."""

from __future__ import annotations

import pytest

from repro.engine.configuration import Configuration
from repro.exceptions import TerminationSpecError
from repro.termination.definitions import (
    DenseInitialFamily,
    TerminationSpec,
    is_alpha_dense,
    is_terminated_configuration,
)


class TestPredicates:
    def test_is_alpha_dense_delegates_to_configuration(self):
        config = Configuration({"a": 50, "b": 50})
        assert is_alpha_dense(config, 0.4)
        assert not is_alpha_dense(config, 0.6)

    def test_is_terminated_configuration(self):
        config = Configuration({("idle", False): 9, ("done", True): 1})
        assert is_terminated_configuration(config, lambda state: state[1])
        quiet = Configuration({("idle", False): 10})
        assert not is_terminated_configuration(quiet, lambda state: state[1])


class TestTerminationSpec:
    def test_kappa_validation(self):
        with pytest.raises(TerminationSpecError):
            TerminationSpec(terminated_predicate=lambda s: False, kappa=0.0)
        with pytest.raises(TerminationSpecError):
            TerminationSpec(terminated_predicate=lambda s: False, kappa=1.5)

    def test_population_terminated(self):
        spec = TerminationSpec(terminated_predicate=lambda s: s == "T")
        assert spec.population_terminated(["a", "T", "b"])
        assert not spec.population_terminated(["a", "b"])

    def test_configuration_terminated(self):
        spec = TerminationSpec(terminated_predicate=lambda s: s == "T")
        assert spec.configuration_terminated(Configuration({"a": 5, "T": 1}))


class TestDenseInitialFamily:
    def test_all_same_state_family(self):
        family = DenseInitialFamily.all_same_state("x")
        config = family.instantiate(100)
        assert config.count("x") == 100
        assert family.is_dense_at(100)

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(TerminationSpecError):
            DenseInitialFamily(base_fractions={"a": 0.5, "b": 0.4})

    def test_fractions_must_be_positive(self):
        with pytest.raises(TerminationSpecError):
            DenseInitialFamily(base_fractions={"a": 1.2, "b": -0.2})

    def test_empty_family_rejected(self):
        with pytest.raises(TerminationSpecError):
            DenseInitialFamily(base_fractions={})

    def test_instantiation_has_exact_size(self):
        family = DenseInitialFamily(base_fractions={"a": 0.3, "b": 0.7})
        for n in (10, 33, 101, 1024):
            assert family.instantiate(n).size == n

    def test_instantiations_are_alpha_dense(self):
        family = DenseInitialFamily(base_fractions={"a": 0.25, "b": 0.75})
        for n in (16, 64, 333):
            assert family.instantiate(n).is_alpha_dense(family.alpha)

    def test_initial_states_list(self):
        family = DenseInitialFamily(base_fractions={"a": 0.5, "b": 0.5})
        states = family.initial_states(10)
        assert len(states) == 10
        assert states.count("a") + states.count("b") == 10

    def test_sizes_generator(self):
        family = DenseInitialFamily.all_same_state("x")
        assert list(family.sizes(start=8, count=4)) == [8, 16, 32, 64]

    def test_sizes_validation(self):
        family = DenseInitialFamily.all_same_state("x")
        with pytest.raises(TerminationSpecError):
            list(family.sizes(start=8, count=0))

    def test_population_too_small_rejected(self):
        family = DenseInitialFamily(base_fractions={"a": 0.5, "b": 0.5})
        with pytest.raises(TerminationSpecError):
            family.instantiate(1)
