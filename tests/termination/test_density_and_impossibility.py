"""Tests for the density-lemma experiments and the Theorem 4.1 sweep."""

from __future__ import annotations

import pytest

from repro.analysis.balls_and_bins import count_survival_bound
from repro.exceptions import TerminationSpecError
from repro.protocols.epidemic import EpidemicProtocol, EpidemicState
from repro.protocols.leader_election import NonuniformCounterLeaderElection
from repro.protocols.majority import ApproximateMajorityProtocol
from repro.termination.definitions import DenseInitialFamily, TerminationSpec
from repro.termination.density import DensityExperiment, density_trajectory
from repro.termination.impossibility import (
    growth_ratio,
    measure_termination_time,
    termination_time_sweep,
)


class TestDensityTrajectory:
    def test_producible_states_reach_constant_fraction_in_constant_time(self):
        """Empirical Lemma 4.2 for the majority protocol from a dense start."""
        family = DenseInitialFamily(
            base_fractions={"X": 0.5, "Y": 0.5}, description="balanced opinions"
        )
        observation = density_trajectory(
            ApproximateMajorityProtocol(),
            family,
            population_size=2_000,
            observation_time=1.0,
            threshold_fraction=0.02,
            seed=1,
        )
        # All three states (X, Y and the blank B produced by X-Y meetings)
        # should be present in constant fraction after one unit of time.
        assert set(observation.fractions) == {"X", "Y", "B"}
        assert observation.min_fraction > 0.02
        assert all(
            reach_time is not None and reach_time <= 1.0
            for reach_time in observation.first_reach_times.values()
        )

    def test_minimum_fraction_stable_across_population_sizes(self):
        """The empirical delta of Lemma 4.2 does not vanish as n grows."""
        family = DenseInitialFamily(base_fractions={"X": 0.5, "Y": 0.5})
        experiment = DensityExperiment(
            ApproximateMajorityProtocol(), family, threshold_fraction=0.02
        )
        observations = experiment.run([500, 2_000, 8_000], seed=3)
        fractions = experiment.minimum_fractions(observations)
        assert all(fraction > 0.02 for fraction in fractions.values())
        # The smallest fraction should not collapse as n grows 16-fold.
        values = list(fractions.values())
        assert max(values) < 10 * min(values)

    def test_survival_bound_consistent_with_simulation(self):
        """Corollary E.3: a dense state's count should not collapse within time 1."""
        family = DenseInitialFamily.all_same_state(EpidemicState.SUSCEPTIBLE)
        observation = density_trajectory(
            EpidemicProtocol(initial_infected=1),
            # All susceptible: the epidemic cannot even start without a source,
            # but producibility from {S} alone is just {S}; use a mixed family.
            DenseInitialFamily(
                base_fractions={EpidemicState.INFECTED: 0.5, EpidemicState.SUSCEPTIBLE: 0.5}
            ),
            population_size=4_000,
            observation_time=1.0,
            threshold_fraction=1 / 81,
            seed=5,
        )
        assert family is not None
        # The infected state only grows; the susceptible state starts at n/2
        # and cannot fall below (n/2)/81 within one unit of time except with
        # probability ~2^-(n/162), so with n=4000 it must survive.
        assert observation.fractions[EpidemicState.SUSCEPTIBLE] > 0.5 / 81
        assert count_survival_bound(2_000) < 1e-6

    def test_parameter_validation(self):
        family = DenseInitialFamily.all_same_state("X")
        with pytest.raises(TerminationSpecError):
            density_trajectory(
                ApproximateMajorityProtocol(), family, 100, observation_time=0
            )
        with pytest.raises(TerminationSpecError):
            density_trajectory(
                ApproximateMajorityProtocol(), family, 100, threshold_fraction=2.0
            )


class TestTerminationTimeSweep:
    def _spec(self) -> TerminationSpec:
        return TerminationSpec(terminated_predicate=lambda state: state.terminated)

    def test_uniform_dense_protocol_terminates_in_constant_time(self):
        """The operational content of Theorem 4.1: flat termination time."""
        observations = termination_time_sweep(
            protocol_factory=lambda: NonuniformCounterLeaderElection(counter_threshold=8),
            spec=self._spec(),
            population_sizes=[32, 128, 512],
            runs_per_size=3,
            max_parallel_time=200.0,
            seed=7,
            check_interval=16,
        )
        assert all(obs.termination_probability == 1.0 for obs in observations)
        ratio = growth_ratio(observations)
        assert ratio is not None
        # The population grew 16x; the termination time must stay O(1).
        assert ratio < 3.0

    def test_termination_happens_before_leader_election_can_finish(self):
        """The signal fires long before the Omega(n)-time election stabilises,
        which is exactly why a uniform terminating protocol is useless here."""
        protocol = NonuniformCounterLeaderElection(counter_threshold=8)
        spec = self._spec()
        elapsed = measure_termination_time(
            protocol_factory=lambda: NonuniformCounterLeaderElection(counter_threshold=8),
            spec=spec,
            population_size=512,
            max_parallel_time=200.0,
            seed=11,
            check_interval=16,
        )
        assert elapsed is not None
        assert elapsed < 32  # far less than the Theta(n) = 512 stabilisation time
        assert protocol is not None

    def test_budget_exhaustion_counts_as_failure(self):
        observations = termination_time_sweep(
            protocol_factory=lambda: NonuniformCounterLeaderElection(
                counter_threshold=10_000_000
            ),
            spec=self._spec(),
            population_sizes=[16],
            runs_per_size=2,
            max_parallel_time=5.0,
            seed=13,
        )
        assert observations[0].failures == 2
        assert observations[0].termination_probability == 0.0
        assert observations[0].mean_time is None

    def test_runs_per_size_validated(self):
        with pytest.raises(TerminationSpecError):
            termination_time_sweep(
                protocol_factory=lambda: NonuniformCounterLeaderElection(8),
                spec=self._spec(),
                population_sizes=[16],
                runs_per_size=0,
            )

    def test_growth_ratio_edge_cases(self):
        assert growth_ratio([]) is None
