"""Bitwise stream-preservation of the numpy backend against recorded runs.

``golden_streams.json`` was captured from the pre-seam engines (inline hot
loops, before :mod:`repro.backend` existed): per-case checkpoints of the
configuration, the interaction/batch counters and the states seen, plus the
*next draw* of the engine generator after the run — a direct probe of the
RNG stream position.  The numpy backend contracts to reproduce all of it
bitwise; any refactor of the reference kernels that reorders, adds or drops
a single draw fails here.

The cases deliberately cover every kernel code path: pure batched runs, the
small-count exact fallback, the consumption-guard fallback, disabled
thresholds and the state-weighted (rate-scaled) policy, plus vector-engine
matching rounds.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.engine.batched_simulator import BatchedCountSimulator
from repro.engine.scheduler import SchedulerSpec
from repro.engine.vector import VectorFiniteStateSimulator
from repro.protocols.epidemic import EpidemicProtocol
from repro.protocols.leader_election import FiniteStatePairwiseElimination
from repro.protocols.majority import ApproximateMajorityProtocol

GOLDEN_PATH = pathlib.Path(__file__).with_name("golden_streams.json")

#: Construction parameters of every recorded case, keyed like the fixture.
BATCHED_CASES = {
    "epidemic_n1000_seed3": (EpidemicProtocol, 1000, 3, {}),
    "majority_n2000_seed42": (ApproximateMajorityProtocol, 2000, 42, {}),
    "leader_n300_seed6": (FiniteStatePairwiseElimination, 300, 6, {}),
    "leader_n6_seed10_smallcount": (
        FiniteStatePairwiseElimination, 6, 10, {"small_count_threshold": 8},
    ),
    "epidemic_weighted_n2000_seed3": (
        EpidemicProtocol, 2000, 3,
        {"scheduler": SchedulerSpec("state-weighted", (("rates", (("I", 0.25),)),))},
    ),
    "epidemic_n1000_seed11_nofallback": (
        EpidemicProtocol, 1000, 11, {"small_count_threshold": 0},
    ),
    "majority_n40_seed12_guard": (
        ApproximateMajorityProtocol, 40, 12,
        {"batch_size": 30, "small_count_threshold": 0},
    ),
}

VECTOR_CASES = {
    "vector_epidemic_n500_seed7": (EpidemicProtocol, 500, 7),
    "vector_majority_n300_seed9": (ApproximateMajorityProtocol, 300, 9),
}


@pytest.fixture(scope="module")
def golden() -> dict:
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


def _snapshot(simulator) -> dict:
    return {
        "configuration": sorted(
            [repr(state), int(count)]
            for state, count in simulator.configuration().items()
        ),
        "interactions": int(simulator.interactions),
        "batched_batches": int(getattr(simulator, "batched_batches", -1)),
        "fallback_batches": int(getattr(simulator, "fallback_batches", -1)),
        "states_seen": sorted(repr(state) for state in simulator.states_seen())
        if hasattr(simulator, "states_seen")
        else None,
    }


@pytest.mark.parametrize("case", sorted(BATCHED_CASES))
def test_batched_engine_reproduces_golden_stream(case, golden):
    protocol_cls, n, seed, kwargs = BATCHED_CASES[case]
    simulator = BatchedCountSimulator(
        protocol_cls(), n, seed=seed, backend="numpy", **kwargs
    )
    for checkpoint in golden[case]["checkpoints"]:
        simulator.run_interactions(checkpoint["interactions"] - simulator.interactions)
        snapshot = _snapshot(simulator)
        for key, value in snapshot.items():
            assert value == checkpoint[key], (case, checkpoint["interactions"], key)
    # The strongest check: the generator is at the exact same stream
    # position, i.e. the kernels made precisely the recorded draws.
    final = golden[case]["checkpoints"][-1]
    assert int(simulator._rng.integers(0, 2**32)) == final["rng_next"], case


@pytest.mark.parametrize("case", sorted(VECTOR_CASES))
def test_vector_engine_reproduces_golden_stream(case, golden):
    protocol_cls, n, seed = VECTOR_CASES[case]
    simulator = VectorFiniteStateSimulator(
        protocol_cls(), n, seed=seed, backend="numpy"
    )
    [checkpoint] = golden[case]["checkpoints"]
    simulator.run_interactions(checkpoint["interactions"])
    assert simulator.rounds == checkpoint["rounds"], case
    snapshot = _snapshot(simulator)
    assert snapshot["configuration"] == checkpoint["configuration"], case
    assert snapshot["interactions"] == checkpoint["interactions"], case
    assert (
        int(simulator.simulator.rng.integers(0, 2**32)) == checkpoint["rng_next"]
    ), case


def test_default_backend_is_the_golden_one(golden):
    """Leaving ``backend`` unset must select the stream-preserving path."""
    case = "epidemic_n1000_seed3"
    protocol_cls, n, seed, kwargs = BATCHED_CASES[case]
    simulator = BatchedCountSimulator(protocol_cls(), n, seed=seed, **kwargs)
    # Replay the recorded call partition: a trailing short batch is drawn per
    # run_interactions call, so the call boundaries are part of the stream.
    for checkpoint in golden[case]["checkpoints"]:
        simulator.run_interactions(checkpoint["interactions"] - simulator.interactions)
    final = golden[case]["checkpoints"][-1]
    assert _snapshot(simulator)["configuration"] == final["configuration"]
    assert int(simulator._rng.integers(0, 2**32)) == final["rng_next"]
