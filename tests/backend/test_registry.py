"""The backend registry, environment default and graceful-fallback contract.

These tests pin the seam's behavioural guarantees rather than any kernel's
numerics: numpy-only installs must stay fully functional (selecting an
unavailable backend warns and falls back), the ``REPRO_BACKEND`` environment
variable supplies a process-wide default, and a partial backend — one that
overrides a single kernel — transparently inherits the reference
implementations for everything else.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    ENV_BACKEND,
    ArrayBackend,
    BACKEND_REGISTRY,
    backend_availability,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.backend.numba_backend import NUMBA_AVAILABLE
from repro.backend.numpy_backend import NumpyBatchedKernel
from repro.engine.batched_simulator import BatchedCountSimulator
from repro.engine.selection import build_engine
from repro.exceptions import SimulationError
from repro.protocols.epidemic import EpidemicProtocol


class TestRegistry:
    def test_shipped_backends_are_registered(self):
        assert BACKEND_NAMES == ("numpy", "numba", "native")

    def test_numpy_backend_is_always_available(self):
        assert backend_availability()["numpy"] is None

    def test_availability_report_covers_every_backend(self):
        report = backend_availability()
        assert set(report) == set(BACKEND_NAMES)
        for name, reason in report.items():
            assert reason is None or isinstance(reason, str), name

    def test_unknown_backend_raises(self):
        with pytest.raises(SimulationError, match="unknown backend 'warp'"):
            get_backend("warp")
        with pytest.raises(SimulationError, match="unknown backend"):
            resolve_backend("warp")

    def test_get_backend_memoises(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_registering_a_nameless_backend_is_rejected(self):
        with pytest.raises(SimulationError, match="non-empty name"):
            register_backend(type("Anonymous", (ArrayBackend,), {}))

    def test_describe_is_a_one_liner(self):
        for name in BACKEND_NAMES:
            description = get_backend(name).describe()
            assert description and "\n" not in description, name


class TestResolution:
    def test_none_resolves_to_the_default(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert resolve_backend(None).name == DEFAULT_BACKEND

    def test_environment_variable_sets_the_default(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_empty_environment_variable_is_ignored(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "")
        assert resolve_backend(None).name == DEFAULT_BACKEND

    def test_unknown_environment_backend_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "warp")
        with pytest.raises(SimulationError, match="unknown backend"):
            resolve_backend(None)

    def test_instances_pass_through_unchanged(self):
        instance = get_backend("numpy")
        assert resolve_backend(instance) is instance

    def test_non_string_choice_is_rejected(self):
        with pytest.raises(SimulationError, match="name or ArrayBackend"):
            resolve_backend(42)  # type: ignore[arg-type]

    def test_environment_default_reaches_the_engines(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "numpy")
        simulator = BatchedCountSimulator(EpidemicProtocol(), 64, seed=0)
        assert simulator.backend.name == "numpy"


class TestGracefulFallback:
    @pytest.fixture()
    def broken_backend(self):
        @register_backend
        class BrokenBackend(ArrayBackend):
            name = "broken-for-test"

            @classmethod
            def available(cls):
                return False

            @classmethod
            def unavailable_reason(cls):
                return "deliberately broken by the test"

        yield BrokenBackend
        BACKEND_REGISTRY.pop("broken-for-test", None)

    def test_unavailable_backend_warns_and_falls_back(self, broken_backend):
        with pytest.warns(UserWarning, match="deliberately broken"):
            resolved = resolve_backend("broken-for-test")
        assert resolved.name == DEFAULT_BACKEND

    def test_engine_built_on_unavailable_backend_runs_on_numpy(
        self, broken_backend
    ):
        with pytest.warns(UserWarning, match="falling back to the numpy"):
            simulator = BatchedCountSimulator(
                EpidemicProtocol(), 64, seed=0, backend="broken-for-test"
            )
        assert simulator.backend.name == "numpy"
        simulator.run_interactions(200)
        assert simulator.interactions == 200

    @pytest.mark.skipif(
        NUMBA_AVAILABLE, reason="numba is installed; no fallback to observe"
    )
    def test_numba_absent_fallback_names_the_extra(self):
        """Numpy-only installs get a pointer at the [jit] extra, not a crash."""
        with pytest.warns(UserWarning, match=r"pip install -e \.\[jit\]"):
            resolved = resolve_backend("numba")
        assert resolved.name == "numpy"


class TestPartialBackendComposition:
    def test_bare_subclass_inherits_every_reference_kernel(self):
        class Bare(ArrayBackend):
            name = "bare"

        backend = Bare()
        kernel = backend.batched_kernel(
            BatchedCountSimulator(EpidemicProtocol(), 32, seed=0).table,
            None,
            32,
            8,
            np.random.default_rng(0),
        )
        assert isinstance(kernel, NumpyBatchedKernel)
        receivers, senders = backend.draw_matching_arrays(
            10, np.random.default_rng(1)
        )
        assert receivers.size == senders.size == 5
        thinned = backend.thin_members(
            np.ones(6), np.random.default_rng(2)
        )
        assert list(thinned) == [0, 1, 2, 3, 4, 5]

    def test_pair_weights_reference(self):
        backend = get_backend("numpy")
        counts = np.array([3, 2, 0])
        uniform = backend.pair_weights(counts, None)
        assert uniform[0, 1] == 6 and uniform[0, 0] == 6 and uniform[2, 2] == 0
        rates = np.array([1.0, 0.5, 1.0])
        weighted = backend.pair_weights(counts, rates)
        assert weighted[0, 1] == 3.0 and weighted[1, 1] == 0.5


class TestEngineBackendThreading:
    @pytest.mark.parametrize("engine", ["agent", "count"])
    def test_reference_engines_warn_and_ignore_non_numpy_backends(self, engine):
        with pytest.warns(UserWarning, match="per-interaction reference"):
            simulator = build_engine(
                engine, EpidemicProtocol(), 64, seed=0, backend="native"
            )
        simulator.run_interactions(64)
        assert simulator.interactions == 64

    @pytest.mark.parametrize("engine", ["agent", "count"])
    def test_reference_engines_accept_numpy_silently(self, engine, recwarn):
        build_engine(engine, EpidemicProtocol(), 64, seed=0, backend="numpy")
        assert not [w for w in recwarn if issubclass(w.category, UserWarning)]

    def test_batched_and_vector_record_their_backend(self):
        batched = build_engine(
            "batched", EpidemicProtocol(), 64, seed=0, backend="numpy"
        )
        vector = build_engine(
            "vector", EpidemicProtocol(), 64, seed=0, backend="numpy"
        )
        assert batched.backend.name == "numpy"
        assert vector.backend.name == "numpy"
