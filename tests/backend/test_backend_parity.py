"""Cross-backend parity: every backend runs the same stochastic process.

The numpy backend is the stream-preserving reference (pinned bitwise by
``test_numpy_golden``).  The JIT backends draw from their own RNGs, so they
are held to the *distribution*: trajectory statistics over many seeds must
agree with the numpy reference within sampling noise, on every hot path the
seam fuses — the batched multinomial draw→apply (uniform and state-weighted),
the small-count and consumption-guard exact fallbacks, the vector matching
round, and the CRN lowerings (checked against the exact Gillespie SSA).

The numba kernels are exercised *interpreted* here when numba is not
installed — ``NumbaBackend()`` is instantiated directly, bypassing the
availability gate — so this suite validates the kernel logic on numpy-only
installs too (slow path, same arithmetic).  The native backend participates
whenever a C toolchain is present.
"""

from __future__ import annotations

import math
import statistics

import pytest

from repro.backend import ArrayBackend, get_backend
from repro.backend.native_backend import NativeBackend
from repro.backend.numba_backend import NumbaBackend
from repro.crn import CRN, compile_crn, simulate_ssa
from repro.crn.library import epidemic_extinct_predicate
from repro.engine.selection import build_engine
from repro.protocols.epidemic import (
    EpidemicProtocol,
    epidemic_completion_predicate,
)
from repro.protocols.leader_election import FiniteStatePairwiseElimination
from repro.protocols.majority import (
    ApproximateMajorityProtocol,
    majority_consensus_predicate,
)


def _parity_backends() -> list:
    """The non-reference backends runnable in this environment."""
    backends = [pytest.param(NumbaBackend(), id="numba")]
    if NativeBackend.available():
        backends.append(pytest.param(NativeBackend(), id="native"))
    return backends


def _mean_std(values):
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / max(1, len(values) - 1)
    return mean, math.sqrt(variance)


def _z_score(sample_a, sample_b):
    mean_a, std_a = _mean_std(sample_a)
    mean_b, std_b = _mean_std(sample_b)
    spread = math.sqrt(std_a**2 / len(sample_a) + std_b**2 / len(sample_b))
    return (mean_a - mean_b) / max(spread, 1e-9)


EPIDEMIC_N = 256
RUNS = 24


def _epidemic_times(backend: "ArrayBackend | None", **engine_options):
    times = []
    for run_index in range(RUNS):
        simulator = build_engine(
            "batched",
            EpidemicProtocol(),
            EPIDEMIC_N,
            seed=1_000 + run_index,
            backend=backend,
            **engine_options,
        )
        times.append(
            simulator.run_until(
                epidemic_completion_predicate,
                max_parallel_time=60 * math.log(EPIDEMIC_N),
                check_interval=max(EPIDEMIC_N // 8, 16),
            )
        )
    return times


class TestBatchedDistributionParity:
    @pytest.mark.parametrize("backend", _parity_backends())
    def test_epidemic_completion_time_matches_numpy(self, backend):
        reference = _epidemic_times(None)
        observed = _epidemic_times(backend)
        z = _z_score(observed, reference)
        assert abs(z) < 4.0, (backend.name, z)

    @pytest.mark.parametrize("backend", _parity_backends())
    def test_state_weighted_parity_and_slowdown(self, backend):
        """The rate-scaled pair distribution agrees across backends, and
        throttling the infected state slows the epidemic on every backend."""
        options = {
            "scheduler": "state-weighted",
            "scheduler_options": {"rates": (("I", 0.3),)},
        }
        reference = _epidemic_times(None, **options)
        observed = _epidemic_times(backend, **options)
        z = _z_score(observed, reference)
        assert abs(z) < 4.0, (backend.name, z)
        uniform = statistics.fmean(_epidemic_times(backend))
        assert statistics.fmean(observed) > 1.2 * uniform, backend.name

    @pytest.mark.parametrize("backend", _parity_backends())
    def test_population_conserved_and_states_tracked(self, backend):
        simulator = build_engine(
            "batched", EpidemicProtocol(), 512, seed=7, backend=backend
        )
        simulator.run_interactions(4_096)
        assert simulator.configuration().size == 512
        seen = {repr(state) for state in simulator.states_seen()}
        assert seen == {"'I'", "'S'"}

    @pytest.mark.parametrize("backend", _parity_backends())
    def test_small_count_exact_fallback_still_converges(self, backend):
        """Leader election drives every count to the fallback threshold; the
        run must finish with exactly one leader on every backend."""
        for run_index in range(8):
            simulator = build_engine(
                "batched",
                FiniteStatePairwiseElimination(),
                48,
                seed=4_000 + run_index,
                backend=backend,
            )
            simulator.run_until(
                lambda sim: sim.count(FiniteStatePairwiseElimination.LEADER)
                == 1,
                max_parallel_time=10_000.0,
                check_interval=48,
            )
            assert simulator.count(FiniteStatePairwiseElimination.LEADER) == 1
            assert simulator.fallback_batches > 0, backend.name

    @pytest.mark.parametrize("backend", _parity_backends())
    def test_majority_correctness_is_backend_independent(self, backend):
        correct = 0
        for run_index in range(16):
            simulator = build_engine(
                "batched",
                ApproximateMajorityProtocol(x_fraction=0.7),
                300,
                seed=6_000 + run_index,
                backend=backend,
            )
            simulator.run_until(
                majority_consensus_predicate,
                max_parallel_time=500,
                check_interval=64,
            )
            if simulator.count(ApproximateMajorityProtocol.OPINION_Y) == 0:
                correct += 1
        assert correct >= 14, (backend.name, correct)


class TestVectorDistributionParity:
    @pytest.mark.parametrize("backend", _parity_backends())
    def test_vector_epidemic_round_kernel_matches_numpy(self, backend):
        def times(chosen):
            values = []
            for run_index in range(RUNS):
                simulator = build_engine(
                    "vector",
                    EpidemicProtocol(),
                    EPIDEMIC_N,
                    seed=2_000 + run_index,
                    backend=chosen,
                )
                values.append(
                    simulator.run_until(
                        epidemic_completion_predicate,
                        max_parallel_time=60 * math.log(EPIDEMIC_N),
                    )
                )
            return values

        z = _z_score(times(backend), times(None))
        assert abs(z) < 4.0, (backend.name, z)

    @pytest.mark.parametrize("backend", _parity_backends())
    def test_vector_majority_consensus(self, backend):
        simulator = build_engine(
            "vector",
            ApproximateMajorityProtocol(x_fraction=0.7),
            300,
            seed=11,
            backend=backend,
        )
        simulator.run_until(majority_consensus_predicate, max_parallel_time=500)
        assert simulator.count(ApproximateMajorityProtocol.OPINION_Y) == 0


# ---------------------------------------------------------------------------
# CRN lowerings vs the exact SSA, on the JIT backends
# ---------------------------------------------------------------------------

SIR = CRN.from_spec(
    ["S + I -> I + I @ 2.0", "I -> R @ 1.0"],
    name="sir",
    seeds={"I": 2},
    fractions={"S": 1.0},
)
CRN_POPULATION = 60
CRN_RUNS = 48
SSA_RUNS = 96


@pytest.fixture(scope="module")
def ssa_final_sizes() -> list[int]:
    return [
        simulate_ssa(SIR, CRN_POPULATION, [10_000.0], seed=7_000 + run).at(0)["R"]
        for run in range(SSA_RUNS)
    ]


class TestCRNLoweringsOnJITBackends:
    @pytest.mark.parametrize("backend", _parity_backends())
    def test_uniform_lowering_matches_ssa_in_time(self, backend):
        """Sampling the backend's batched engine at parallel time Γ·t must
        sample the chain at chemical time t — the seam may not distort the
        kinetics."""
        compiled = compile_crn(SIR)
        chemical_time = 6.0
        recovered = []
        for run in range(CRN_RUNS):
            simulator = compiled.build(
                "batched", CRN_POPULATION, seed=1_000 + run, backend=backend
            )
            simulator.run_parallel_time(compiled.to_parallel_time(chemical_time))
            recovered.append(simulator.count("R"))
        ssa_sample = [
            simulate_ssa(
                SIR, CRN_POPULATION, [chemical_time], seed=5_000 + run
            ).at(0)["R"]
            for run in range(SSA_RUNS)
        ]
        z = _z_score(recovered, ssa_sample)
        assert abs(z) < 4.0, (backend.name, z)

    @pytest.mark.parametrize("backend", _parity_backends())
    def test_thinned_lowering_final_size_matches_ssa(
        self, backend, ssa_final_sizes
    ):
        """The thinned (state-weighted) lowering exercises the backends'
        rate-scaled kernels; the SIR final size is clock-independent, so it
        must match the exact jump chain."""
        compiled = compile_crn(SIR, mode="thinned")
        finals = []
        for run in range(CRN_RUNS):
            simulator = compiled.build(
                "batched", CRN_POPULATION, seed=3_000 + run, backend=backend
            )
            simulator.run_until(
                epidemic_extinct_predicate,
                max_parallel_time=10_000.0,
                check_interval=CRN_POPULATION,
            )
            finals.append(simulator.count("R"))
        z = _z_score(finals, ssa_final_sizes)
        assert abs(z) < 4.0, (backend.name, z)


class TestBackendFallbackEquivalence:
    def test_resolved_fallback_is_bitwise_numpy(self):
        """When an unavailable backend falls back, the run is not merely
        similar to numpy — it *is* the numpy backend, stream and all."""
        from repro.backend import BACKEND_REGISTRY, register_backend

        @register_backend
        class Ghost(ArrayBackend):
            name = "ghost-for-test"

            @classmethod
            def available(cls):
                return False

            @classmethod
            def unavailable_reason(cls):
                return "test ghost"

        try:
            with pytest.warns(UserWarning, match="ghost"):
                ghost = build_engine(
                    "batched",
                    EpidemicProtocol(),
                    200,
                    seed=5,
                    backend="ghost-for-test",
                )
            reference = build_engine(
                "batched", EpidemicProtocol(), 200, seed=5, backend="numpy"
            )
            ghost.run_interactions(2_000)
            reference.run_interactions(2_000)
            assert dict(ghost.configuration().items()) == dict(
                reference.configuration().items()
            )
            assert int(ghost._rng.integers(0, 2**32)) == int(
                reference._rng.integers(0, 2**32)
            )
        finally:
            BACKEND_REGISTRY.pop("ghost-for-test", None)

    def test_numpy_is_the_memoised_reference(self):
        assert get_backend("numpy") is get_backend("numpy")
