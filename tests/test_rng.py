"""Tests for the randomness substrate (repro.rng)."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.rng import (
    RandomSource,
    SyntheticCoin,
    empirical_maximum_distribution,
    geometric,
    max_of_geometrics,
    stream_of_geometrics,
)


class TestGeometric:
    def test_support_starts_at_one(self, rng):
        samples = [rng.geometric() for _ in range(2000)]
        assert min(samples) == 1

    def test_mean_close_to_two_for_fair_coin(self):
        source = RandomSource(seed=7)
        samples = [source.geometric(0.5) for _ in range(20_000)]
        assert abs(statistics.fmean(samples) - 2.0) < 0.05

    def test_mean_matches_inverse_probability(self):
        source = RandomSource(seed=8)
        samples = [source.geometric(0.25) for _ in range(20_000)]
        assert abs(statistics.fmean(samples) - 4.0) < 0.15

    def test_probability_one_always_returns_one(self):
        source = RandomSource(seed=9)
        assert all(source.geometric(1.0) == 1 for _ in range(100))

    def test_rejects_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            rng.geometric(0.0)
        with pytest.raises(ValueError):
            rng.geometric(1.5)


class TestMaxOfGeometrics:
    def test_expectation_near_log2_n(self):
        samples = empirical_maximum_distribution(seed=1, population=1024, trials=400)
        mean = statistics.fmean(samples)
        # Lemma D.4: log2(N) + 1 < E[M] < log2(N) + 3/2 for N >= 50.
        assert math.log2(1024) + 0.5 < mean < math.log2(1024) + 2.0

    def test_rejects_nonpositive_count(self, rng):
        with pytest.raises(ValueError):
            max_of_geometrics(rng.raw(), 0)

    def test_maximum_at_least_each_sample(self):
        source = RandomSource(seed=2)
        assert source.max_of_geometrics(100) >= 1


class TestRandomSource:
    def test_reproducible_with_same_seed(self):
        first = RandomSource(seed=42)
        second = RandomSource(seed=42)
        assert [first.geometric() for _ in range(50)] == [
            second.geometric() for _ in range(50)
        ]

    def test_uniform_pair_returns_distinct_agents(self):
        source = RandomSource(seed=3)
        for _ in range(500):
            receiver, sender = source.uniform_pair(10)
            assert receiver != sender
            assert 0 <= receiver < 10
            assert 0 <= sender < 10

    def test_uniform_pair_rejects_tiny_population(self):
        source = RandomSource(seed=3)
        with pytest.raises(ValueError):
            source.uniform_pair(1)

    def test_uniform_pair_covers_all_ordered_pairs(self):
        source = RandomSource(seed=4)
        seen = {source.uniform_pair(3) for _ in range(2000)}
        assert seen == {(a, b) for a in range(3) for b in range(3) if a != b}

    def test_fair_bit_is_binary_and_balanced(self):
        source = RandomSource(seed=5)
        bits = [source.fair_bit() for _ in range(5000)]
        assert set(bits) <= {0, 1}
        assert 0.45 < statistics.fmean(bits) < 0.55

    def test_sample_indices_distinct(self):
        source = RandomSource(seed=6)
        indices = source.sample_indices(20, 10)
        assert len(set(indices)) == 10

    def test_sample_indices_rejects_oversampling(self):
        source = RandomSource(seed=6)
        with pytest.raises(ValueError):
            source.sample_indices(5, 6)

    def test_spawn_gives_independent_stream(self):
        parent = RandomSource(seed=10)
        child = parent.spawn()
        assert child.seed != parent.seed


class TestSyntheticCoin:
    def test_counts_sender_flips_until_receiver(self):
        coin = SyntheticCoin()
        assert not coin.observe(agent_was_sender=True)
        assert not coin.observe(agent_was_sender=True)
        assert coin.observe(agent_was_sender=False)
        assert coin.value == 3
        assert coin.complete

    def test_observe_after_complete_raises(self):
        coin = SyntheticCoin()
        coin.observe(agent_was_sender=False)
        with pytest.raises(ValueError):
            coin.observe(agent_was_sender=True)

    def test_reset(self):
        coin = SyntheticCoin()
        coin.observe(agent_was_sender=False)
        coin.reset()
        assert coin.value == 1
        assert not coin.complete


class TestStreams:
    def test_stream_of_geometrics_length_and_reproducibility(self):
        first = list(stream_of_geometrics(seed=1, count=100))
        second = list(stream_of_geometrics(seed=1, count=100))
        assert len(first) == 100
        assert first == second

    def test_empirical_maximum_distribution_validation(self):
        with pytest.raises(ValueError):
            empirical_maximum_distribution(seed=1, population=0, trials=10)
        with pytest.raises(ValueError):
            empirical_maximum_distribution(seed=1, population=10, trials=0)
