"""Tests for repro.types: parallel-time conversions and interaction pairs."""

from __future__ import annotations

import pytest

from repro.types import InteractionPair, interactions_for_time, parallel_time


class TestParallelTime:
    def test_basic_conversion(self):
        assert parallel_time(1000, 100) == 10.0

    def test_zero_interactions(self):
        assert parallel_time(0, 10) == 0.0

    def test_rejects_nonpositive_population(self):
        with pytest.raises(ValueError):
            parallel_time(10, 0)

    def test_rejects_negative_interactions(self):
        with pytest.raises(ValueError):
            parallel_time(-1, 10)


class TestInteractionsForTime:
    def test_exact_multiple(self):
        assert interactions_for_time(5.0, 10) == 50

    def test_rounds_up(self):
        assert interactions_for_time(1.01, 10) == 11

    def test_zero_time(self):
        assert interactions_for_time(0.0, 10) == 0

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            interactions_for_time(-1.0, 10)

    def test_rejects_bad_population(self):
        with pytest.raises(ValueError):
            interactions_for_time(1.0, 0)

    def test_round_trip_covers_requested_time(self):
        for time in (0.1, 0.5, 3.7, 12.0):
            for n in (3, 7, 100):
                interactions = interactions_for_time(time, n)
                assert parallel_time(interactions, n) >= time - 1e-12


class TestInteractionPair:
    def test_valid_pair(self):
        pair = InteractionPair(receiver=1, sender=2)
        assert pair.as_tuple() == (1, 2)

    def test_reversed(self):
        pair = InteractionPair(receiver=1, sender=2)
        assert pair.reversed() == InteractionPair(receiver=2, sender=1)

    def test_rejects_self_interaction(self):
        with pytest.raises(ValueError):
            InteractionPair(receiver=3, sender=3)

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError):
            InteractionPair(receiver=-1, sender=0)
