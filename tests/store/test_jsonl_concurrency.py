"""Concurrent-append safety of the JSONL cache (O_APPEND + advisory lock).

The historical ``ResultCache.put`` buffered through a ``open(..., "a")``
file object, so two processes appending simultaneously could interleave
partial lines and corrupt *other* writers' records.  The rewritten append
path emits each line in a single ``O_APPEND`` ``os.write`` under an
advisory lock; this test hammers one shard file from many processes and
requires every record to survive byte-exact.
"""

from __future__ import annotations

import json
import multiprocessing

from repro.harness.cache import ResultCache, append_jsonl_line
from repro.harness.results import RunRecord

WRITERS = 8
RECORDS_PER_WRITER = 200


def _hammer(directory: str, writer: int) -> None:
    cache = ResultCache(directory, name="hammer")
    for index in range(RECORDS_PER_WRITER):
        # A long-ish extra payload makes torn interleaved writes (the old
        # failure mode) overwhelmingly likely to corrupt JSON if the append
        # path is not atomic.
        record = RunRecord(
            population_size=1000 + writer,
            seed=writer * RECORDS_PER_WRITER + index,
            converged=True,
            convergence_time=float(index),
            extra={"writer": writer, "blob": "x" * 500, "index": index},
        )
        cache.put(f"w{writer}-r{index}", record)


class TestConcurrentAppends:
    def test_multiprocess_hammer_leaves_every_line_parseable(self, tmp_path):
        context = multiprocessing.get_context()
        processes = [
            context.Process(target=_hammer, args=(str(tmp_path), writer))
            for writer in range(WRITERS)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0

        path = tmp_path / "hammer.jsonl"
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == WRITERS * RECORDS_PER_WRITER
        keys = set()
        for line in lines:
            payload = json.loads(line)  # any torn/interleaved line raises
            keys.add(payload["key"])
            assert payload["record"]["extra"]["blob"] == "x" * 500
        assert len(keys) == WRITERS * RECORDS_PER_WRITER

        # And the cache loads every record back (no skipped torn lines).
        reloaded = ResultCache(tmp_path, name="hammer")
        assert len(reloaded) == WRITERS * RECORDS_PER_WRITER

    def test_append_jsonl_line_appends_exactly_one_line(self, tmp_path):
        path = tmp_path / "lines.jsonl"
        append_jsonl_line(path, '{"a": 1}')
        append_jsonl_line(path, '{"b": 2}')
        assert path.read_text(encoding="utf-8") == '{"a": 1}\n{"b": 2}\n'
