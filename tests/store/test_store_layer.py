"""Unit tests for the result-store layer (URL parsing, JSONL, SQLite)."""

from __future__ import annotations

import math

import pytest

from repro.harness.cache import ResultCache
from repro.harness.results import RunRecord, records_equal
from repro.store import (
    CLAIM_ACQUIRED,
    CLAIM_DONE,
    CLAIM_LEASED,
    STORE_KEY_EXCLUDED_FIELDS,
    StoreError,
    StoreSpec,
    open_store,
    parse_store_url,
)
from repro.store.jsonl import JsonlStore
from repro.store.sqlite import SqliteStore


def make_record(seed: int = 7, interactions: int = 120) -> RunRecord:
    return RunRecord(
        population_size=64,
        seed=seed,
        converged=True,
        convergence_time=4.5,
        extra={"engine": "count", "interactions": interactions},
    )


class TestStoreUrls:
    def test_jsonl_and_sqlite_split_on_first_colon(self):
        spec = parse_store_url("jsonl:/data/cache:dir")
        assert (spec.scheme, spec.location) == ("jsonl", "/data/cache:dir")
        spec = parse_store_url("sqlite:results.sqlite")
        assert (spec.scheme, spec.location) == ("sqlite", "results.sqlite")

    def test_http_keeps_the_whole_url(self):
        spec = parse_store_url("http://host:8512")
        assert spec.scheme == "http"
        assert spec.location == "http://host:8512"
        assert spec.url() == "http://host:8512"

    @pytest.mark.parametrize("url", ["", "no-scheme", "ftp:/x", "jsonl:"])
    def test_malformed_urls_are_rejected(self, url):
        with pytest.raises(StoreError):
            parse_store_url(url)

    def test_non_positive_lease_is_rejected(self):
        with pytest.raises(StoreError):
            StoreSpec(scheme="sqlite", location="x", lease_seconds=0.0)

    def test_open_store_dispatches_by_scheme(self, tmp_path):
        jsonl = open_store(f"jsonl:{tmp_path / 'cache'}")
        sqlite = open_store(f"sqlite:{tmp_path / 'db.sqlite'}")
        assert isinstance(jsonl, JsonlStore)
        assert isinstance(sqlite, SqliteStore)
        # An already-open store passes through untouched.
        assert open_store(sqlite) is sqlite
        sqlite.close()

    def test_store_spec_fields_match_the_audit_list(self):
        import dataclasses

        assert {f.name for f in dataclasses.fields(StoreSpec)} == set(
            STORE_KEY_EXCLUDED_FIELDS
        )


class TestJsonlStore:
    def test_wraps_existing_cache_files(self, tmp_path):
        # Records written through the legacy ResultCache are visible through
        # the store, and vice versa — same file, same format.
        cache = ResultCache(tmp_path, name="sweep")
        cache.put("k1", make_record(seed=1))
        store = JsonlStore(tmp_path, name="sweep")
        assert records_equal(store.get("k1"), make_record(seed=1))
        store.append("k2", make_record(seed=2))
        reloaded = ResultCache(tmp_path, name="sweep")
        assert records_equal(reloaded.get("k2"), make_record(seed=2))

    def test_claim_cycle(self, tmp_path):
        store = JsonlStore(tmp_path)
        claim = store.claim("k", owner="a")
        assert claim.status == CLAIM_ACQUIRED
        assert store.claim("k", owner="b").status == CLAIM_LEASED
        store.append("k", make_record())
        done = store.claim("k", owner="b")
        assert done.status == CLAIM_DONE
        assert records_equal(done.record, make_record())

    def test_release_frees_the_key(self, tmp_path):
        store = JsonlStore(tmp_path)
        store.claim("k", owner="a")
        store.release("k", owner="a")
        assert store.claim("k", owner="b").status == CLAIM_ACQUIRED

    def test_status_counts(self, tmp_path):
        store = JsonlStore(tmp_path)
        store.append("k1", make_record(seed=1))
        store.claim("k2", owner="a")
        status = store.status()
        assert (status.completed, status.leased, status.stale) == (1, 1, 0)
        assert status.workloads[0].workload == "count"
        assert status.workloads[0].interactions == 120


class TestSqliteStore:
    def test_round_trip_preserves_records_exactly(self, tmp_path):
        store = SqliteStore(tmp_path / "db.sqlite")
        record = RunRecord(
            population_size=10,
            seed=3,
            converged=False,
            convergence_time=None,
            max_additive_error=math.inf,
            extra={"engine": "array", "final_estimate_mean": math.nan},
        )
        store.append("k", record)
        loaded = store.get("k")
        # Same canonicalisation as the JSONL cache: non-finite floats load
        # as NaN (max_additive_error) / None (inside extra).
        assert math.isnan(loaded.max_additive_error)
        assert loaded.extra["final_estimate_mean"] is None
        assert loaded.converged is False and loaded.convergence_time is None
        store.close()

    def test_atomic_claim_done_leased(self, tmp_path):
        store = SqliteStore(tmp_path / "db.sqlite")
        first = store.claim("k", lease=60.0, owner="a")
        assert first.status == CLAIM_ACQUIRED and first.expires is not None
        second = store.claim("k", lease=60.0, owner="b")
        assert second.status == CLAIM_LEASED and second.owner == "a"
        # The holder may re-claim (refresh) its own lease.
        assert store.claim("k", lease=60.0, owner="a").status == CLAIM_ACQUIRED
        store.append("k", make_record())
        assert store.claim("k", owner="b").status == CLAIM_DONE
        store.close()

    def test_expired_lease_is_reclaimed(self, tmp_path):
        import time

        store = SqliteStore(tmp_path / "db.sqlite")
        store.claim("k", lease=0.05, owner="crashed-worker")
        time.sleep(0.1)
        reclaim = store.claim("k", lease=60.0, owner="b")
        assert reclaim.status == CLAIM_ACQUIRED and reclaim.owner == "b"
        store.close()

    def test_release_respects_ownership(self, tmp_path):
        store = SqliteStore(tmp_path / "db.sqlite")
        store.claim("k", lease=60.0, owner="a")
        store.release("k", owner="b")  # not the holder: no-op
        assert store.claim("k", lease=60.0, owner="c").status == CLAIM_LEASED
        store.release("k", owner="a")
        assert store.claim("k", lease=60.0, owner="c").status == CLAIM_ACQUIRED
        store.close()

    def test_pending_batches_and_preserves_order(self, tmp_path):
        store = SqliteStore(tmp_path / "db.sqlite")
        store.append("k2", make_record())
        keys = [f"k{i}" for i in range(600)]  # crosses the chunk boundary
        pending = store.pending(keys)
        assert "k2" not in pending
        assert pending == [k for k in keys if k != "k2"]
        store.close()

    def test_status_reports_stale_leases_and_throughput(self, tmp_path):
        import time

        store = SqliteStore(tmp_path / "db.sqlite")
        claim = store.claim("done-key", lease=60.0, owner="a")
        assert claim.status == CLAIM_ACQUIRED
        store.append("done-key", make_record(interactions=500))
        store.claim("stale-key", lease=0.01, owner="dead")
        store.claim("live-key", lease=60.0, owner="alive")
        time.sleep(0.05)
        status = store.status()
        assert (status.completed, status.leased, status.stale) == (1, 1, 1)
        by_key = {entry.key: entry for entry in status.leases}
        assert by_key["stale-key"].stale and not by_key["live-key"].stale
        (workload,) = status.workloads
        # Wall time is derived from the claim that started the trial, so
        # throughput reporting needs no driver-side clock.
        assert workload.interactions == 500 and workload.wall_seconds > 0
        store.close()

    def test_append_is_write_once(self, tmp_path):
        store = SqliteStore(tmp_path / "db.sqlite")
        store.append("k", make_record(seed=1))
        store.append("k", make_record(seed=2))  # late duplicate: ignored
        assert store.get("k").seed == 1
        assert store.status().completed == 1
        store.close()
