"""Distributed-sweep semantics: many drivers, one store, exactly-once trials.

These tests spawn *real* concurrent driver processes against one shared
store and assert the layer's headline guarantees:

* every trial executes exactly once across all drivers (checked two ways:
  disjoint ``executed_keys`` sets AND an execution-count probe — the
  protocol factory appends one line to a file per actual execution);
* the merged result set is record-for-record identical to a serial run;
* a killed worker's leased trials are reclaimed after lease expiry and
  completed by a surviving driver;
* a sweep resumed after a mid-sweep kill executes only the remaining
  trials;
* the HTTP store behaves identically end-to-end against a live
  ``repro store serve`` daemon on localhost.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.harness.parallel import build_finite_state_trials, run_trials
from repro.harness.results import records_equal
from repro.protocols.epidemic import (
    EpidemicProtocol,
    epidemic_completion_predicate,
)
from repro.store.server import StoreServer
from repro.store.sqlite import SqliteStore

#: Path of the execution-count probe file (one appended line per actual
#: trial execution), handed to child processes through the environment.
PROBE_ENV = "REPRO_TEST_EXECUTION_PROBE"


class ProbedEpidemic(EpidemicProtocol):
    """Epidemic protocol that tallies every construction (= every execution)."""

    def __init__(self) -> None:
        super().__init__()
        path = os.environ.get(PROBE_ENV)
        if path:
            descriptor = os.open(
                path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(descriptor, b"x\n")
            finally:
                os.close(descriptor)


def probed_specs():
    return build_finite_state_trials(
        population_sizes=[30, 40, 50],
        runs_per_size=2,
        protocol_factory=ProbedEpidemic,
        predicate=epidemic_completion_predicate,
        engine="count",
        max_parallel_time=200.0,
        base_seed=17,
    )


def _drive(store_url: str, owner: str, queue) -> None:
    """One claim-loop driver process; ships its outcome back over a queue."""
    outcome = run_trials(
        probed_specs(),
        store=store_url,
        owner=owner,
        lease_seconds=30.0,
        poll_interval=0.02,
    )
    queue.put(
        (
            owner,
            outcome.executed_keys,
            outcome.from_cache,
            [
                (record.population_size, record.seed, record.convergence_time)
                for record in outcome.records
            ],
        )
    )


def _run_two_drivers(store_url: str, probe_path) -> None:
    """Shared body of the SQLite and HTTP two-driver tests."""
    specs = probed_specs()
    serial = run_trials(specs)  # probe env not yet set: reference run untallied

    context = multiprocessing.get_context()
    queue = context.Queue()
    drivers = [
        context.Process(target=_drive, args=(store_url, f"driver-{i}", queue))
        for i in range(2)
    ]
    os.environ[PROBE_ENV] = str(probe_path)
    try:
        for process in drivers:
            process.start()
        outcomes = [queue.get(timeout=120) for _ in drivers]
    finally:
        del os.environ[PROBE_ENV]
    for process in drivers:
        process.join(timeout=120)
        assert process.exitcode == 0

    # Exactly-once, probe one: the drivers' executed-key sets partition the
    # sweep — disjoint, and their union covers every trial.
    key_sets = {owner: set(keys) for owner, keys, _, _ in outcomes}
    all_keys = {spec.cache_key() for spec in specs}
    assert set.union(*key_sets.values()) == all_keys
    assert not set.intersection(*key_sets.values())
    executed_total = sum(len(keys) for _, keys, _, _ in outcomes)
    assert executed_total == len(specs)
    # Every driver still returns the *full* record list (replaying the
    # other driver's trials from the store).
    for owner, keys, from_cache, _ in outcomes:
        assert from_cache == len(specs) - len(keys)

    # Exactly-once, probe two: each execution constructed one protocol.
    assert probe_path.read_text().count("x") == len(specs)

    # Merged results are record-for-record identical to the serial run.
    serial_view = [
        (record.population_size, record.seed, record.convergence_time)
        for record in serial.records
    ]
    for _, _, _, view in outcomes:
        assert view == serial_view


class TestTwoDriversOneStore:
    def test_sqlite_store_exactly_once_and_serial_identical(self, tmp_path):
        _run_two_drivers(
            f"sqlite:{tmp_path / 'db.sqlite'}", tmp_path / "probe.log"
        )

    def test_http_store_exactly_once_and_serial_identical(self, tmp_path):
        with StoreServer(tmp_path / "db.sqlite", port=0) as server:
            _run_two_drivers(server.url, tmp_path / "probe.log")


def _doomed_worker(store_url: str, keys, ready) -> None:
    """Claims trials with a short lease, signals readiness, then hangs."""
    store = SqliteStore(store_url, lease_seconds=0.5)
    for key in keys:
        claim = store.claim(key, lease=0.5, owner="doomed")
        assert claim.acquired
    ready.set()
    time.sleep(600)  # "crashed": never appends, never releases


class TestLeaseExpiryReclaim:
    def test_killed_workers_trials_are_reclaimed_and_completed(self, tmp_path):
        specs = probed_specs()
        db_path = str(tmp_path / "db.sqlite")
        victim_keys = [spec.cache_key() for spec in specs[:2]]

        context = multiprocessing.get_context()
        ready = context.Event()
        worker = context.Process(
            target=_doomed_worker, args=(db_path, victim_keys, ready)
        )
        worker.start()
        assert ready.wait(timeout=30), "worker never claimed its trials"
        os.kill(worker.pid, signal.SIGKILL)  # crash mid-trial, leases held
        worker.join(timeout=30)

        outcome = run_trials(
            probed_specs(),
            store=f"sqlite:{db_path}",
            owner="survivor",
            lease_seconds=30.0,
            poll_interval=0.05,
        )
        # The survivor had to wait out the dead worker's 0.5 s leases, then
        # reclaim and execute *every* trial, including the victim's two.
        assert set(outcome.executed_keys) == {spec.cache_key() for spec in specs}
        serial = run_trials(probed_specs())
        assert all(
            records_equal(left, right)
            for left, right in zip(serial.records, outcome.records)
        )
        with SqliteStore(db_path) as store:
            status = store.status()
        assert status.completed == len(specs)
        assert status.leased == 0 and status.stale == 0


class TestResumeAfterKill:
    def test_resumed_sweep_executes_only_remaining_trials(self, tmp_path):
        # Emulate a mid-sweep kill: the first "driver" completes part of the
        # sweep and dies holding a lease on its in-flight trial.
        specs = probed_specs()
        db_path = str(tmp_path / "db.sqlite")
        keys = [spec.cache_key() for spec in specs]
        serial = run_trials(probed_specs())
        with SqliteStore(db_path) as store:
            for spec, key, record in zip(specs[:3], keys[:3], serial.records[:3]):
                assert store.claim(key, lease=30.0, owner="killed").acquired
                store.append(key, record)
            assert store.claim(keys[3], lease=0.2, owner="killed").acquired

        outcome = run_trials(
            probed_specs(),
            store=f"sqlite:{db_path}",
            owner="resumer",
            lease_seconds=30.0,
            poll_interval=0.05,
        )
        assert outcome.from_cache == 3
        assert set(outcome.executed_keys) == set(keys[3:])
        assert all(
            records_equal(left, right)
            for left, right in zip(serial.records, outcome.records)
        )


class TestPoolDriversShareStores:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_worker_pool_matches_serial_through_a_store(self, tmp_path, workers):
        specs = probed_specs()
        serial = run_trials(specs)
        outcome = run_trials(
            probed_specs(),
            workers=workers,
            store=f"sqlite:{tmp_path / 'db.sqlite'}",
        )
        assert outcome.executed == len(specs)
        assert all(
            records_equal(left, right)
            for left, right in zip(serial.records, outcome.records)
        )
