"""Run manifests: construction, store round-trips, cache-key exclusion."""

from __future__ import annotations

from contextlib import contextmanager

from repro.harness.parallel import (
    build_finite_state_trials,
    run_trial,
    run_trials,
)
from repro.obs.manifest import (
    MANIFEST_FIELDS,
    MANIFEST_SCHEMA_VERSION,
    TELEMETRY_KEY,
    trial_manifest,
)
from repro.obs.recorder import RECORDER, recording
from repro.protocols.epidemic import EpidemicProtocol, epidemic_completion_predicate
from repro.store.jsonl import JsonlStore
from repro.store.server import StoreServer
from repro.store.sqlite import SqliteStore


def epidemic_specs(sizes=(48,), runs=1, engine="batched", **overrides):
    options = dict(
        population_sizes=list(sizes),
        runs_per_size=runs,
        base_seed=11,
        engine=engine,
        max_parallel_time=200.0,
        protocol_factory=EpidemicProtocol,
        predicate=epidemic_completion_predicate,
    )
    options.update(overrides)
    return build_finite_state_trials(**options)


class TestTrialManifest:
    def test_manifest_shape_and_provenance(self):
        (spec,) = epidemic_specs()
        delta = {"counters": {"engine.interactions": 7}, "timing": {"total": 0.5}}
        manifest = trial_manifest(spec, delta)
        assert tuple(manifest) == MANIFEST_FIELDS
        assert manifest["schema"] == MANIFEST_SCHEMA_VERSION
        assert manifest["spec_hash"] == spec.cache_key()
        assert manifest["seed_lineage"] == {
            "base_seed": spec.base_seed,
            "size_index": spec.size_index,
            "run_index": spec.run_index,
            "seed": spec.seed,
        }
        assert manifest["resolution"]["kind"] == spec.kind
        assert manifest["resolution"]["engine"] == "batched"
        assert manifest["counters"] == {"engine.interactions": 7}
        assert manifest["timing"] == {"total": 0.5}

    def test_run_trial_attaches_manifest_only_when_enabled(self):
        (spec,) = epidemic_specs()
        plain = run_trial(spec)
        assert TELEMETRY_KEY not in plain.extra
        with recording():
            observed = run_trial(spec)
        manifest = observed.extra[TELEMETRY_KEY]
        assert manifest["spec_hash"] == spec.cache_key()
        assert manifest["counters"]["engine.interactions"] > 0
        assert manifest["timing"]["total"] > 0.0
        assert manifest["resolution"]["backend"] is not None

    def test_cache_key_is_identical_with_telemetry_on_and_off(self):
        (spec,) = epidemic_specs()
        RECORDER.enabled = False
        key_off = spec.cache_key()
        with recording():
            key_on = spec.cache_key()
        assert key_on == key_off


def run_store_sweep(store):
    specs = epidemic_specs(sizes=(40, 56), runs=1)
    with recording():
        outcome = run_trials(specs, store=store)
    return specs, outcome


class RoundTripContract:
    """Shared assertions: manifests survive append -> fetch bit-for-bit."""

    def open_store(self, tmp_path):
        """Yield ``(fetch, url)``: a fresh-read ``fetch(key)`` and a store URL."""
        raise NotImplementedError

    def test_manifest_round_trip(self, tmp_path):
        with self.open_store(tmp_path) as (fetch, url):
            specs, outcome = run_store_sweep(url)
            assert len(outcome.records) == len(specs)
            for spec, record in zip(specs, outcome.records):
                manifest = record.extra[TELEMETRY_KEY]
                fetched = fetch(spec.cache_key())
                assert fetched is not None
                assert fetched.extra[TELEMETRY_KEY] == manifest
                assert manifest["spec_hash"] == spec.cache_key()

    def test_replay_from_store_preserves_manifest(self, tmp_path):
        with self.open_store(tmp_path) as (fetch, url):
            specs, first = run_store_sweep(url)
            second = run_trials(specs, store=url)  # telemetry off: pure replay
            assert second.from_cache == len(specs)
            for a, b in zip(first.records, second.records):
                assert a.extra[TELEMETRY_KEY] == b.extra[TELEMETRY_KEY]


class TestJsonlRoundTrip(RoundTripContract):
    @contextmanager
    def open_store(self, tmp_path):
        yield (
            lambda key: JsonlStore(tmp_path / "cache").get(key),
            f"jsonl:{tmp_path / 'cache'}",
        )


class TestSqliteRoundTrip(RoundTripContract):
    @contextmanager
    def open_store(self, tmp_path):
        def fetch(key):
            store = SqliteStore(tmp_path / "db.sqlite")
            try:
                return store.get(key)
            finally:
                store.close()

        yield fetch, f"sqlite:{tmp_path / 'db.sqlite'}"


class TestHttpRoundTrip(RoundTripContract):
    @contextmanager
    def open_store(self, tmp_path):
        from repro.store.http import HttpStore

        with StoreServer(tmp_path / "db.sqlite", port=0) as server:
            yield HttpStore(server.url).get, server.url


class TestStoreCounters:
    def test_store_backends_count_appends_and_claims(self, tmp_path):
        with recording():
            RECORDER.reset()
            run_trials(epidemic_specs(), store=f"sqlite:{tmp_path / 'db.sqlite'}")
            counters = dict(RECORDER.counters)
        assert counters["store.sqlite.appends"] == 1
        assert counters["store.sqlite.claims"] >= 1
        assert counters["store.appends"] == 1
        assert counters["store.claims_acquired"] == 1
