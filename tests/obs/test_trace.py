"""Trace spool merging, Chrome trace export, and schema validation."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.recorder import Recorder
from repro.obs.trace import (
    collect_spool_events,
    export_spool,
    validate_trace,
    write_chrome_trace,
)


def event(**overrides) -> dict:
    base = {"name": "trial", "ph": "X", "ts": 1.0, "dur": 2.0, "pid": 1, "tid": 1}
    base.update(overrides)
    return base


def write_spool(path, events) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for item in events:
            handle.write(json.dumps(item) + "\n")


class TestCollectSpool:
    def test_merges_files_sorted_by_pid_then_ts(self, tmp_path):
        write_spool(
            tmp_path / "trace-200.jsonl",
            [event(pid=200, ts=5.0), event(pid=200, ts=1.0)],
        )
        write_spool(tmp_path / "trace-100.jsonl", [event(pid=100, ts=9.0)])
        events = collect_spool_events(tmp_path)
        assert [(e["pid"], e["ts"]) for e in events] == [
            (100, 9.0),
            (200, 1.0),
            (200, 5.0),
        ]

    def test_ignores_blank_lines_and_non_spool_files(self, tmp_path):
        (tmp_path / "trace-1.jsonl").write_text(
            json.dumps(event()) + "\n\n", encoding="utf-8"
        )
        (tmp_path / "notes.txt").write_text("not a trace", encoding="utf-8")
        assert len(collect_spool_events(tmp_path)) == 1

    def test_empty_spool_dir(self, tmp_path):
        assert collect_spool_events(tmp_path) == []


class TestExport:
    def test_export_writes_perfetto_loadable_container(self, tmp_path):
        write_spool(tmp_path / "trace-1.jsonl", [event()])
        out = tmp_path / "trace.json"
        trace = export_spool(tmp_path, out)
        assert validate_trace(trace) == []
        on_disk = json.loads(out.read_text(encoding="utf-8"))
        assert on_disk["traceEvents"] == [event()]
        assert on_disk["displayTimeUnit"] == "ms"

    def test_export_rejects_invalid_events(self, tmp_path):
        write_spool(tmp_path / "trace-1.jsonl", [event(ph="Z")])
        with pytest.raises(ValueError, match="unknown phase"):
            export_spool(tmp_path, tmp_path / "trace.json")

    def test_recorder_spool_round_trips_through_export(self, tmp_path):
        recorder = Recorder()
        recorder.spool_dir = str(tmp_path / "spool")
        start = recorder.now_ns()
        recorder.add_span("trial", start, start + 1_000_000, args={"n": 64})
        recorder.flush_spool()
        trace = export_spool(tmp_path / "spool", tmp_path / "trace.json")
        (exported,) = trace["traceEvents"]
        assert exported["name"] == "trial"
        assert exported["args"] == {"n": 64}


class TestValidateTrace:
    def test_valid_trace_has_no_problems(self):
        assert validate_trace({"traceEvents": [event()]}) == []

    @pytest.mark.parametrize(
        "bad, fragment",
        [
            ("not a dict", "top level must be an object"),
            ({"traceEvents": "nope"}, "'traceEvents' must be a list"),
            ({"traceEvents": ["nope"]}, "event must be an object"),
            ({"traceEvents": [event(ph="Z")]}, "unknown phase"),
            ({"traceEvents": [event(ts=-1.0)]}, "'ts' must be non-negative"),
            ({"traceEvents": [event(ts="soon")]}, "'ts' must be a number"),
            ({"traceEvents": [event(pid="one")]}, "'pid' must be an integer"),
            ({"traceEvents": [event(args=[1])]}, "'args' must be an object"),
        ],
    )
    def test_malformed_traces_are_reported(self, bad, fragment):
        problems = validate_trace(bad)
        assert problems
        assert any(fragment in problem for problem in problems)

    def test_complete_event_requires_dur(self):
        incomplete = event()
        del incomplete["dur"]
        problems = validate_trace({"traceEvents": [incomplete]})
        assert any("missing 'dur'" in problem for problem in problems)

    def test_missing_required_key_is_reported(self):
        nameless = event()
        del nameless["name"]
        problems = validate_trace({"traceEvents": [nameless]})
        assert any("missing required key 'name'" in problem for problem in problems)


class TestTraceCli:
    def test_trace_export_then_validate(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        spool.mkdir()
        write_spool(spool / "trace-1.jsonl", [event(), event(ts=4.0)])
        out = tmp_path / "trace.json"
        assert main(["trace", "export", "--spool", str(spool), "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "2 events" in output
        assert main(["trace", "validate", str(out)]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out

    def test_trace_validate_rejects_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({"traceEvents": [event(ph="Q")]}), encoding="utf-8"
        )
        assert main(["trace", "validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_trace_export_fails_cleanly_on_corrupt_spool(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        spool.mkdir()
        write_spool(spool / "trace-1.jsonl", [event(tid="main")])
        code = main(
            ["trace", "export", "--spool", str(spool), "--out", str(tmp_path / "t.json")]
        )
        assert code != 0
