"""Progress rendering and distributed store-health watching."""

from __future__ import annotations

import io

from repro.obs.progress import (
    ProgressView,
    StatusWatcher,
    SweepProgress,
    render_progress_line,
)
from repro.store.base import LeaseReport, StoreStatus


def status(completed=0, leases=()):
    return StoreStatus(
        completed=completed,
        leased=sum(1 for lease in leases if not lease.stale),
        stale=sum(1 for lease in leases if lease.stale),
        leases=tuple(leases),
        workloads=(),
    )


def lease(key, owner, stale=False):
    return LeaseReport(key=key, owner=owner, expires=9e9, stale=stale)


class TestRenderProgressLine:
    def test_counts_rate_and_eta(self):
        line = render_progress_line(
            SweepProgress(total=10, done=4, executed=2, from_cache=2),
            elapsed_seconds=4.0,
        )
        assert "4/10 trials" in line
        assert "2 executed" in line
        assert "2 cached" in line
        assert "0.50 trials/s" in line
        assert "eta 12s" in line  # 6 remaining / 0.5 per second

    def test_eta_dashes_without_throughput(self):
        line = render_progress_line(
            SweepProgress(total=3, done=0, executed=0, from_cache=0), 0.0
        )
        assert line.endswith("eta --")


class TestProgressView:
    def test_non_tty_stream_gets_one_line_per_update(self):
        stream = io.StringIO()  # StringIO.isatty() is False
        view = ProgressView(stream=stream)
        view(SweepProgress(total=2, done=1, executed=1, from_cache=0))
        view(SweepProgress(total=2, done=2, executed=2, from_cache=0))
        view.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[1].startswith("[sweep] 2/2 trials")


class TestStatusWatcher:
    def test_first_snapshot_establishes_baseline(self):
        watcher = StatusWatcher()
        lines = watcher.update(status(completed=3, leases=[lease("k1", "d1")]))
        assert lines[0].startswith("completed=3 (+0)")
        assert "driver d1: 1 leased" in lines[1]

    def test_completions_attributed_to_releasing_owner(self):
        watcher = StatusWatcher()
        watcher.update(
            status(completed=0, leases=[lease("k1", "d1"), lease("k2", "d2")])
        )
        # d1 released its lease while completed rose by one: d1 finished it.
        lines = watcher.update(status(completed=1, leases=[lease("k2", "d2")]))
        assert watcher.completions_by_owner == {"d1": 1}
        assert any("driver d1: idle, 1 completed" in line for line in lines)

    def test_lease_churn_counts_new_acquisitions(self):
        watcher = StatusWatcher()
        watcher.update(status(leases=[lease("k1", "d1")]))
        watcher.update(status(leases=[lease("k1", "d1"), lease("k2", "d1")]))
        watcher.update(status(leases=[lease("k3", "d2")]))
        assert watcher.leases_acquired == 2

    def test_stale_lease_raises_alert_line(self):
        watcher = StatusWatcher()
        lines = watcher.update(
            status(leases=[lease("deadbeefdeadbeef", "d9", stale=True)])
        )
        assert any(
            "ALERT stale lease" in line and "owner=d9" in line for line in lines
        )
