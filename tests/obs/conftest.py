"""Fixtures for the telemetry tests.

The recorder is process-global mutable state; every test here starts and
ends with it disabled and empty so test order can never leak telemetry.
"""

from __future__ import annotations

import pytest

from repro.obs.recorder import RECORDER


@pytest.fixture(autouse=True)
def clean_recorder():
    RECORDER.enabled = False
    RECORDER.spool_dir = None
    RECORDER.reset()
    yield RECORDER
    RECORDER.enabled = False
    RECORDER.spool_dir = None
    RECORDER.reset()
