"""Unit tests for the process-global telemetry recorder."""

from __future__ import annotations

import os
import threading

from repro.obs.recorder import (
    RECORDER,
    Recorder,
    get_recorder,
    recording,
    set_telemetry,
    telemetry_enabled,
)


class TestSingleton:
    def test_default_off(self):
        # The process-global recorder starts disabled: instrumented hot
        # paths must take their uninstrumented branch by default.
        assert get_recorder() is RECORDER
        assert telemetry_enabled() is False

    def test_set_telemetry_toggles_in_place(self, tmp_path):
        returned = set_telemetry(True, spool_dir=str(tmp_path))
        assert returned is RECORDER
        assert telemetry_enabled() is True
        assert RECORDER.spool_dir == str(tmp_path)
        set_telemetry(False)
        assert telemetry_enabled() is False
        # spool_dir persists unless explicitly replaced.
        assert RECORDER.spool_dir == str(tmp_path)

    def test_recording_restores_prior_state(self, tmp_path):
        assert not RECORDER.enabled
        with recording(spool_dir=str(tmp_path)) as recorder:
            assert recorder is RECORDER
            assert recorder.enabled
            assert recorder.spool_dir == str(tmp_path)
        assert not RECORDER.enabled
        assert RECORDER.spool_dir is None


class TestMetrics:
    def test_counters_accumulate(self):
        recorder = Recorder()
        recorder.count("a")
        recorder.count("a", 4)
        recorder.count("b", 2)
        assert recorder.counters == {"a": 5, "b": 2}

    def test_timers_accumulate_nanoseconds(self):
        recorder = Recorder()
        recorder.add_time("t", 1_000)
        recorder.add_time("t", 500)
        assert recorder.timers_ns == {"t": 1_500}
        assert recorder.snapshot()["timing"]["t"] == 1_500 / 1e9

    def test_histogram_buckets_are_powers_of_two(self):
        recorder = Recorder()
        for value in (0, 1, 2, 3, 4, 1024):
            recorder.observe("h", value)
        histogram = recorder.histograms["h"]
        # 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 1024 -> 11.
        assert histogram == {0: 1, 1: 1, 2: 2, 3: 1, 11: 1}

    def test_now_ns_is_monotonic(self):
        recorder = Recorder()
        a = recorder.now_ns()
        b = recorder.now_ns()
        assert b >= a

    def test_reset_clears_everything(self):
        recorder = Recorder()
        recorder.count("a")
        recorder.add_time("t", 10)
        recorder.observe("h", 2)
        recorder.add_span("s", 0, 10)
        recorder.reset()
        assert recorder.counters == {}
        assert recorder.timers_ns == {}
        assert recorder.histograms == {}
        assert recorder.events == []


class TestMarkSince:
    def test_since_returns_only_deltas(self):
        recorder = Recorder()
        recorder.count("pre", 10)
        recorder.add_time("t", 100)
        mark = recorder.mark()
        recorder.count("pre", 3)
        recorder.count("new", 1)
        recorder.add_time("t", 900)
        delta = recorder.since(mark)
        assert delta["counters"] == {"pre": 3, "new": 1}
        assert delta["timing"]["t"] == 900 / 1e9
        # "total" is wall time of the window, always present.
        assert delta["timing"]["total"] >= 0.0

    def test_zero_deltas_are_dropped(self):
        recorder = Recorder()
        recorder.count("untouched", 5)
        mark = recorder.mark()
        delta = recorder.since(mark)
        assert delta["counters"] == {}
        assert set(delta["timing"]) == {"total"}


class TestSpans:
    def test_add_span_builds_chrome_complete_event(self):
        recorder = Recorder()
        origin = recorder._origin_ns
        recorder.add_span(
            "trial", origin + 2_000, origin + 5_000, category="sweep", args={"n": 64}
        )
        (event,) = recorder.events
        assert event["name"] == "trial"
        assert event["ph"] == "X"
        assert event["cat"] == "sweep"
        assert event["ts"] == 2.0  # microseconds since recorder origin
        assert event["dur"] == 3.0
        assert event["pid"] == os.getpid()
        assert event["tid"] == threading.get_ident() % 2**31
        assert event["args"] == {"n": 64}

    def test_negative_duration_is_clamped(self):
        recorder = Recorder()
        recorder.add_span("weird", 5_000, 4_000)
        assert recorder.events[0]["dur"] == 0.0

    def test_span_context_manager_records_on_exception(self):
        recorder = Recorder()
        try:
            with recorder.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [event["name"] for event in recorder.events] == ["failing"]


class TestSpool:
    def test_no_spool_dir_keeps_events_in_memory(self):
        recorder = Recorder()
        recorder.add_span("s", 0, 1)
        assert recorder.flush_spool() is None
        assert len(recorder.events) == 1

    def test_flush_appends_one_json_line_per_event(self, tmp_path):
        import json

        recorder = Recorder()
        recorder.spool_dir = str(tmp_path)
        recorder.add_span("a", 0, 1_000)
        recorder.add_span("b", 1_000, 2_000)
        path = recorder.flush_spool()
        assert path == str(tmp_path / f"trace-{os.getpid()}.jsonl")
        assert recorder.events == []  # flushed, not duplicated
        lines = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert [event["name"] for event in lines] == ["a", "b"]
        # A second flush appends rather than truncates.
        recorder.add_span("c", 2_000, 3_000)
        recorder.flush_spool()
        lines = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert [event["name"] for event in lines] == ["a", "b", "c"]
