"""Golden-stream guarantees: telemetry never changes a trajectory.

The observability contract has two halves:

* **Off (default):** the instrumented hot paths take a branch that is the
  pre-instrumentation code, byte for byte — records are ``records_equal``
  to what the uninstrumented tree produced (pinned here by golden values).
* **On:** the recorder only *reads* monotonic clocks, so enabling it must
  still produce the identical trajectory; only ``extra["telemetry"]``
  (and the recorder's own state) may differ.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.parameters import ProtocolParameters
from repro.harness.parallel import (
    build_crn_trials,
    build_finite_state_trials,
    build_vector_trials,
    run_trial,
)
from repro.harness.results import records_equal
from repro.obs.manifest import TELEMETRY_KEY
from repro.obs.recorder import recording
from repro.protocols.epidemic import EpidemicProtocol, epidemic_completion_predicate

FAST = ProtocolParameters.fast_test()


def specs_under_test():
    """One spec per instrumented execution layer."""
    finite = build_finite_state_trials(
        [64],
        1,
        base_seed=23,
        engine="batched",
        max_parallel_time=200.0,
        protocol_factory=EpidemicProtocol,
        predicate=epidemic_completion_predicate,
    )
    count = build_finite_state_trials(
        [64],
        1,
        base_seed=23,
        engine="count",
        max_parallel_time=200.0,
        protocol_factory=EpidemicProtocol,
        predicate=epidemic_completion_predicate,
    )
    vector = build_vector_trials([48], 1, protocol="figure2", params=FAST, base_seed=9)
    crn_multiscale = build_crn_trials(
        [300], 1, "epidemic", engine="multiscale", base_seed=5
    )
    crn_count = build_crn_trials([80], 1, "epidemic", engine="count", base_seed=5)
    return finite + count + vector + crn_multiscale + crn_count


def strip_telemetry(record):
    extra = {
        key: value for key, value in record.extra.items() if key != TELEMETRY_KEY
    }
    return dataclasses.replace(record, extra=extra)


@pytest.mark.parametrize(
    "spec", specs_under_test(), ids=lambda spec: f"{spec.kind}-{spec.engine}"
)
def test_enabling_telemetry_leaves_the_trajectory_bit_identical(spec):
    baseline = run_trial(spec)
    with recording():
        observed = run_trial(spec)
    # The manifest is the *only* difference the recorder may introduce.
    assert TELEMETRY_KEY not in baseline.extra
    assert TELEMETRY_KEY in observed.extra
    assert records_equal(strip_telemetry(observed), baseline)
    rerun = run_trial(spec)  # telemetry off again: still the golden stream
    assert records_equal(rerun, baseline)


def test_off_path_matches_pinned_golden_ssa_stream():
    # The SSA golden stream (tests/crn/test_ssa_golden.py) pins the exact
    # trajectory of the uninstrumented tree; re-check it here with the
    # recorder toggled around the run so instrumentation provably neither
    # consumes RNG nor perturbs the event loop.
    from repro.crn.library import CRN_WORKLOADS
    from repro.crn.ssa import simulate_ssa

    crn = CRN_WORKLOADS["epidemic"].crn
    baseline = simulate_ssa(crn, 2000, (0.5, 1.0, 2.0, 4.0), seed=42)
    assert dict(baseline.counts) == {
        "I": (1, 1, 6, 326),
        "S": (1999, 1999, 1994, 1674),
    }
    assert baseline.reactions_fired == 325
    with recording():
        observed = simulate_ssa(crn, 2000, (0.5, 1.0, 2.0, 4.0), seed=42)
    assert observed == baseline
    assert simulate_ssa(crn, 2000, (0.5, 1.0, 2.0, 4.0), seed=42) == baseline


def test_telemetry_counters_match_trial_work():
    (spec,) = build_finite_state_trials(
        [64],
        1,
        base_seed=23,
        engine="batched",
        max_parallel_time=200.0,
        protocol_factory=EpidemicProtocol,
        predicate=epidemic_completion_predicate,
    )
    with recording():
        record = run_trial(spec)
    counters = record.extra[TELEMETRY_KEY]["counters"]
    # The interaction counter must agree exactly with the record's own
    # bookkeeping — telemetry observes the run, it does not estimate it.
    assert counters["engine.interactions"] == record.extra["interactions"]
    assert counters["engine.batched_batches"] + counters.get(
        "engine.fallback_batches", 0
    ) == counters["backend.kernel_advances"]
    timing = record.extra[TELEMETRY_KEY]["timing"]
    assert 0.0 < timing["engine.step"] <= timing["total"]


def test_multiscale_regime_counters_flow_into_manifest():
    (spec,) = build_crn_trials([400], 1, "epidemic", engine="multiscale", base_seed=5)
    with recording():
        record = run_trial(spec)
    counters = record.extra[TELEMETRY_KEY]["counters"]
    regime_names = [name for name in counters if name.startswith("multiscale.")]
    assert "multiscale.advance" not in regime_names  # timer, not counter
    assert any(
        name in counters
        for name in (
            "multiscale.exact_events",
            "multiscale.leaps",
            "multiscale.ode_steps",
        )
    )
    # Satellite: regime stats also land beside the manifest for CRN sweeps.
    assert "regime" in record.extra
    assert set(record.extra["regime"]) == {
        "exact_events",
        "leaps",
        "ode_steps",
        "regime_switches",
    }
