"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in (
            "estimate",
            "figure2",
            "accuracy",
            "states",
            "termination",
            "bounds",
            "simulate",
            "sweep",
            "engines",
            "protocols",
        ):
            args = parser.parse_args([command] if command != "bounds" else ["bounds"])
            assert args.command == command

    def test_simulate_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--engine", "warp"])


class TestCommands:
    def test_bounds_text(self, capsys):
        assert main(["bounds", "--n", "1024"]) == 0
        output = capsys.readouterr().out
        assert "Theorem 3.1" in output
        assert "1024" in output

    def test_bounds_json(self, capsys):
        assert main(["bounds", "--n", "512", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["population"] == 512
        assert payload["additive_error_claim"] == 5.7

    def test_estimate_fast(self, capsys):
        assert main(["estimate", "--n", "96", "--fast", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "converged" in output
        assert "max_additive_error" in output

    def test_figure2_fast(self, capsys, tmp_path):
        csv_path = tmp_path / "fig2.csv"
        code = main(
            [
                "figure2",
                "--fast",
                "--sizes",
                "64,128",
                "--runs",
                "1",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 2 reproduction" in output
        assert "max additive error" in output
        assert csv_path.exists()
        assert csv_path.read_text().startswith("population_size,")

    def test_accuracy_fast(self, capsys):
        assert main(["accuracy", "--fast", "--sizes", "64", "--runs", "1"]) == 0
        assert "Theorem 3.1 accuracy" in capsys.readouterr().out

    def test_states_fast(self, capsys):
        assert main(["states", "--fast", "--sizes", "64"]) == 0
        assert "state complexity" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["agent", "count", "batched", "vector"])
    def test_simulate_epidemic_all_engines(self, capsys, engine):
        code = main(
            [
                "simulate",
                "--protocol",
                "epidemic",
                "--n",
                "300",
                "--engine",
                engine,
                "--seed",
                "4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert f"engine                    : {engine}" in output
        assert "converged                 : True" in output
        assert "output[True]              : 300" in output

    def test_simulate_majority_batched(self, capsys):
        code = main(
            ["simulate", "--protocol", "majority", "--n", "2000", "--engine", "batched"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "ApproximateMajority" in output
        assert "converged                 : True" in output

    def test_simulate_termination_signal(self, capsys):
        code = main(
            [
                "simulate",
                "--protocol",
                "termination",
                "--n",
                "5000",
                "--engine",
                "batched",
                "--batch-size",
                "64",
            ]
        )
        assert code == 0
        assert "FiniteStateCounterTermination" in capsys.readouterr().out

    def test_simulate_non_convergence_exit_code(self, capsys):
        # Leader election needs Theta(n) time; a tiny budget cannot finish.
        code = main(
            [
                "simulate",
                "--protocol",
                "leader",
                "--n",
                "5000",
                "--engine",
                "count",
                "--max-time",
                "1",
            ]
        )
        assert code == 1
        assert "converged                 : False" in capsys.readouterr().out

    def test_sweep_serial(self, capsys):
        code = main(
            [
                "sweep",
                "--protocol",
                "epidemic",
                "--sizes",
                "64,128",
                "--runs",
                "2",
                "--engine",
                "count",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "4 total, 4 executed, 0 from cache" in output
        assert "P(converged)" in output

    def test_sweep_parallel_with_resume(self, capsys, tmp_path):
        args = [
            "sweep",
            "--protocol",
            "epidemic",
            "--sizes",
            "64,128",
            "--runs",
            "2",
            "--engine",
            "count",
            "--workers",
            "2",
            "--cache-dir",
            str(tmp_path),
            "--resume",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "4 executed, 0 from cache" in first
        # Re-running the identical sweep with --resume executes zero trials.
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 executed, 4 from cache" in second
        assert (tmp_path / "epidemic-count.jsonl").exists()

    def test_sweep_without_resume_clears_cache(self, capsys, tmp_path):
        args = [
            "sweep",
            "--protocol",
            "epidemic",
            "--sizes",
            "64",
            "--runs",
            "1",
            "--engine",
            "count",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "1 executed, 0 from cache" in capsys.readouterr().out

    def test_sweep_non_convergence_exit_code(self, capsys):
        code = main(
            [
                "sweep",
                "--protocol",
                "leader",
                "--sizes",
                "2000",
                "--runs",
                "1",
                "--engine",
                "count",
                "--max-time",
                "1",
            ]
        )
        assert code == 1

    def test_sweep_vector_figure2(self, capsys, tmp_path):
        args = [
            "sweep",
            "--engine",
            "vector",
            "--protocol",
            "figure2",
            "--fast",
            "--sizes",
            "64,128",
            "--runs",
            "2",
            "--cache-dir",
            str(tmp_path),
            "--resume",
        ]
        assert main(args) == 0
        output = capsys.readouterr().out
        assert "'figure2' on the vector engine" in output
        assert "4 total, 4 executed, 0 from cache" in output
        assert "non-conv" in output
        assert (tmp_path / "figure2-vector.jsonl").exists()
        # Re-running the identical sweep replays every trial from the cache.
        assert main(args) == 0
        assert "0 executed, 4 from cache" in capsys.readouterr().out

    def test_sweep_vector_leader_terminating(self, capsys):
        code = main(
            [
                "sweep",
                "--engine",
                "vector",
                "--protocol",
                "leader-terminating",
                "--fast",
                "--phase-count",
                "8",
                "--sizes",
                "64",
                "--runs",
                "1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "'leader-terminating' on the vector engine" in output
        assert "1 total, 1 executed" in output

    def test_sweep_vector_workload_requires_vector_engine(self, capsys):
        code = main(
            ["sweep", "--protocol", "figure2", "--engine", "batched", "--sizes", "64"]
        )
        assert code == 2
        assert "pass --engine vector" in capsys.readouterr().err

    def test_sweep_vector_rejects_inapplicable_engine_flags(self, capsys):
        code = main(
            [
                "sweep",
                "--engine",
                "vector",
                "--protocol",
                "figure2",
                "--batch-size",
                "64",
                "--sizes",
                "64",
            ]
        )
        assert code == 2
        assert "--batch-size" in capsys.readouterr().err
        code = main(
            [
                "sweep",
                "--engine",
                "vector",
                "--protocol",
                "figure2",
                "--check-interval",
                "100",
                "--sizes",
                "64",
            ]
        )
        assert code == 2
        assert "--check-interval" in capsys.readouterr().err

    def test_sweep_phase_count_rejected_for_other_workloads(self, capsys):
        code = main(
            [
                "sweep",
                "--engine",
                "vector",
                "--protocol",
                "figure2",
                "--phase-count",
                "8",
                "--sizes",
                "64",
            ]
        )
        assert code == 2
        assert "leader-terminating" in capsys.readouterr().err

    def test_sweep_finite_state_rejects_vector_only_flags(self, capsys):
        base = ["sweep", "--protocol", "epidemic", "--engine", "count",
                "--sizes", "64", "--runs", "1"]
        code = main(base + ["--phase-count", "8"])
        assert code == 2
        assert "--phase-count" in capsys.readouterr().err
        code = main(base + ["--fast"])
        assert code == 2
        assert "--fast" in capsys.readouterr().err

    def test_termination_command(self, capsys):
        code = main(
            [
                "termination",
                "--sizes",
                "16,32",
                "--runs",
                "1",
                "--threshold",
                "6",
                "--budget",
                "50",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Theorem 4.1" in output
        assert "uniform dense protocol" in output
        assert "leader-driven" in output


class TestSchedulerCli:
    def test_engines_command_prints_matrix(self, capsys):
        assert main(["engines"]) == 0
        output = capsys.readouterr().out
        assert "engine x scheduler compatibility" in output
        for name in ("sequential", "matching", "weighted", "two-block",
                     "quiescing", "state-weighted"):
            assert name in output
        assert "yes *" in output  # per-engine defaults are marked

    def test_simulate_with_nonuniform_scheduler(self, capsys):
        code = main(
            [
                "simulate", "--protocol", "epidemic", "--n", "500",
                "--engine", "agent", "--scheduler", "two-block",
                "--scheduler-opt", "intra=0.9", "--seed", "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "two-block(intra=0.9) scheduler" in output

    def test_simulate_rejects_incompatible_scheduler(self, capsys):
        code = main(
            [
                "simulate", "--protocol", "epidemic", "--n", "100",
                "--engine", "count", "--scheduler", "matching",
            ]
        )
        assert code == 2
        assert "not compatible" in capsys.readouterr().err

    def test_scheduler_opt_requires_scheduler(self, capsys):
        code = main(
            [
                "simulate", "--protocol", "epidemic", "--n", "100",
                "--scheduler-opt", "intra=0.9",
            ]
        )
        assert code == 2
        assert "--scheduler" in capsys.readouterr().err

    def test_malformed_scheduler_opt_rejected(self, capsys):
        code = main(
            [
                "simulate", "--protocol", "epidemic", "--n", "100",
                "--engine", "agent", "--scheduler", "weighted",
                "--scheduler-opt", "lazy_rate",
            ]
        )
        assert code == 2
        assert "key=value" in capsys.readouterr().err

    def test_sweep_with_scheduler_and_cache(self, capsys, tmp_path):
        common = [
            "sweep", "--protocol", "epidemic", "--sizes", "200", "--runs", "1",
            "--engine", "vector", "--scheduler", "weighted",
            "--scheduler-opt", "lazy_rate=0.25",
            "--cache-dir", str(tmp_path), "--resume",
        ]
        assert main(common) == 0
        first = capsys.readouterr().out
        assert "weighted(lazy_rate=0.25) scheduler" in first
        assert "1 executed, 0 from cache" in first
        assert main(common) == 0
        second = capsys.readouterr().out
        assert "0 executed, 1 from cache" in second

    def test_sweep_rejects_incompatible_scheduler(self, capsys):
        code = main(
            [
                "sweep", "--protocol", "epidemic", "--sizes", "100",
                "--engine", "batched", "--scheduler", "quiescing",
            ]
        )
        assert code == 2
        assert "not compatible" in capsys.readouterr().err

    def test_state_weighted_rates_expressible_from_the_cli(self, capsys):
        code = main(
            [
                "simulate", "--protocol", "epidemic", "--n", "300",
                "--engine", "count", "--scheduler", "state-weighted",
                "--scheduler-opt", "rates=I:0.5", "--seed", "2",
            ]
        )
        assert code == 0
        assert "state-weighted(rates=I:0.5) scheduler" in capsys.readouterr().out

    def test_malformed_state_weighted_rates_exit_cleanly(self, capsys):
        code = main(
            [
                "simulate", "--protocol", "epidemic", "--n", "100",
                "--engine", "count", "--scheduler", "state-weighted",
                "--scheduler-opt", "rates=I-0.5",
            ]
        )
        assert code == 2
        assert "STATE:RATE" in capsys.readouterr().err

    def test_state_weighted_rate_typos_rejected(self, capsys):
        # Regression: a rate key naming no protocol state used to fall back
        # to default_rate for every state, silently running the uniform
        # scheduler under a non-uniform cache key.
        code = main(
            [
                "simulate", "--protocol", "epidemic", "--n", "100",
                "--engine", "count", "--scheduler", "state-weighted",
                "--scheduler-opt", "rates=X:0.5",
            ]
        )
        assert code == 2
        assert "outside the protocol's state set" in capsys.readouterr().err


class TestProtocolsCommand:
    def test_lists_all_three_registries(self, capsys):
        assert main(["protocols"]) == 0
        output = capsys.readouterr().out
        assert "finite-state" in output
        assert "figure2" in output and "vector" in output
        assert "approximate-majority" in output and "crn" in output
        assert "agent,count,batched,vector" in output


class TestSchedulerOptionValidation:
    def test_uncoercible_option_value_exits_cleanly(self, capsys):
        code = main(
            [
                "simulate",
                "--protocol",
                "epidemic",
                "--n",
                "100",
                "--engine",
                "agent",
                "--scheduler",
                "weighted",
                "--scheduler-opt",
                "lazy_rate=abc",
            ]
        )
        assert code == 2
        error = capsys.readouterr().err
        assert "lazy_rate" in error and "float" in error

    def test_unknown_option_key_exits_cleanly(self, capsys):
        code = main(
            [
                "simulate",
                "--protocol",
                "epidemic",
                "--n",
                "100",
                "--engine",
                "agent",
                "--scheduler",
                "weighted",
                "--scheduler-opt",
                "bogus=1",
            ]
        )
        assert code == 2
        assert "does not accept option 'bogus'" in capsys.readouterr().err


class TestCRNCommands:
    def test_crn_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["crn"])

    def test_info_lists_the_library(self, capsys):
        assert main(["crn", "info"]) == 0
        output = capsys.readouterr().out
        assert "approximate-majority" in output
        assert "sir" in output

    def test_info_shows_one_network(self, capsys):
        assert main(["crn", "info", "--crn", "sir"]) == 0
        output = capsys.readouterr().out
        assert "S + I -> I + I @ 2" in output
        assert "rate_scale" in output
        assert "thinned activity rates" in output

    def test_info_adhoc_network(self, capsys):
        code = main(
            ["crn", "info", "--reaction", "A + B -> B + B @ 0.5", "--init", "A:1,B:1"]
        )
        assert code == 0
        assert "A + B -> B + B @ 0.5" in capsys.readouterr().out

    def test_info_rejects_mixing_registry_and_adhoc(self, capsys):
        code = main(
            ["crn", "info", "--crn", "sir", "--reaction", "A + B -> B + B"]
        )
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().err

    @pytest.mark.parametrize("engine", ["agent", "count", "batched", "vector"])
    def test_simulate_workload_on_every_engine(self, capsys, engine):
        code = main(
            [
                "crn",
                "simulate",
                "--crn",
                "epidemic",
                "--n",
                "200",
                "--engine",
                engine,
                "--seed",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "converged       : True" in output
        assert "count[I]        : 200" in output

    def test_simulate_thinned_mode(self, capsys):
        code = main(
            [
                "crn",
                "simulate",
                "--crn",
                "leader",
                "--n",
                "200",
                "--engine",
                "count",
                "--mode",
                "thinned",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mode            : thinned" in output
        assert "count[L]        : 1" in output

    def test_simulate_thinned_rejects_agent_engine(self, capsys):
        code = main(
            [
                "crn",
                "simulate",
                "--crn",
                "leader",
                "--engine",
                "agent",
                "--mode",
                "thinned",
            ]
        )
        assert code == 2
        assert "thinned" in capsys.readouterr().err

    def test_simulate_adhoc_runs_fixed_chemical_duration(self, capsys):
        code = main(
            [
                "crn",
                "simulate",
                "--reaction",
                "L + L -> L + F",
                "--init",
                "L:1",
                "--n",
                "300",
                "--chem-time",
                "2000",
                "--engine",
                "count",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "count[L]        : 1" in output
        assert "count[F]        : 299" in output
        # No predicate was evaluated, so no convergence claim is reported.
        assert "converged" not in output

    def test_simulate_adhoc_thinned_rejected(self, capsys):
        code = main(
            [
                "crn",
                "simulate",
                "--reaction",
                "L + L -> L + F",
                "--init",
                "L:1",
                "--chem-time",
                "5",
                "--engine",
                "count",
                "--mode",
                "thinned",
            ]
        )
        assert code == 2
        assert "chemical time" in capsys.readouterr().err

    def test_simulate_adhoc_needs_chem_time(self, capsys):
        code = main(
            ["crn", "simulate", "--reaction", "L + L -> L + F", "--init", "L:1"]
        )
        assert code == 2
        assert "--chem-time" in capsys.readouterr().err

    def test_simulate_malformed_reaction_exits_cleanly(self, capsys):
        code = main(
            ["crn", "simulate", "--reaction", "L + L => L + F", "--init", "L:1"]
        )
        assert code == 2
        assert "malformed" in capsys.readouterr().err.lower()

    def test_sweep_with_cache_and_resume(self, capsys, tmp_path):
        argv = [
            "crn",
            "sweep",
            "--crn",
            "epidemic",
            "--sizes",
            "100,200",
            "--runs",
            "2",
            "--engine",
            "count",
            "--cache-dir",
            str(tmp_path),
            "--resume",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "4 executed, 0 from cache" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 executed, 4 from cache" in second

    def test_sweep_thinned_rejects_vector_engine(self, capsys):
        code = main(
            [
                "crn",
                "sweep",
                "--crn",
                "leader",
                "--engine",
                "vector",
                "--mode",
                "thinned",
                "--sizes",
                "100",
            ]
        )
        assert code == 2
        assert "thinned" in capsys.readouterr().err


class TestBackendFlag:
    """The array-backend seam surfaces on every engine-running subcommand."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["simulate", "--backend", "numpy"],
            ["sweep", "--backend", "numpy"],
            ["profile", "--backend", "numpy"],
            ["crn", "simulate", "--backend", "numpy"],
            ["crn", "sweep", "--crn", "epidemic", "--backend", "numpy"],
        ],
    )
    def test_backend_flag_parses(self, argv):
        assert build_parser().parse_args(argv).backend == "numpy"

    def test_unknown_backend_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--backend", "warp"])

    def test_engines_reports_backend_availability(self, capsys):
        assert main(["engines"]) == 0
        output = capsys.readouterr().out
        assert "array backends" in output
        for name in ("numpy", "numba", "native"):
            assert name in output
        assert "REPRO_BACKEND" in output

    def test_simulate_runs_with_explicit_numpy_backend(self, capsys):
        code = main(
            [
                "simulate",
                "--protocol",
                "epidemic",
                "--n",
                "2000",
                "--engine",
                "batched",
                "--backend",
                "numpy",
            ]
        )
        assert code == 0
        assert "converged" in capsys.readouterr().out

    def test_sweep_runs_with_explicit_numpy_backend(self, capsys):
        code = main(
            [
                "sweep",
                "--protocol",
                "epidemic",
                "--sizes",
                "500,1000",
                "--runs",
                "2",
                "--engine",
                "batched",
                "--backend",
                "numpy",
            ]
        )
        assert code == 0
        assert "P(converged)" in capsys.readouterr().out

    def test_vector_sweep_accepts_backend(self, capsys):
        code = main(
            [
                "sweep",
                "--protocol",
                "figure2",
                "--engine",
                "vector",
                "--sizes",
                "1000",
                "--runs",
                "1",
                "--fast",
                "--backend",
                "numpy",
            ]
        )
        assert code == 0
        assert "P(converged)" in capsys.readouterr().out

    def test_crn_simulate_accepts_backend(self, capsys):
        code = main(
            [
                "crn",
                "simulate",
                "--crn",
                "leader",
                "--n",
                "500",
                "--engine",
                "batched",
                "--backend",
                "numpy",
            ]
        )
        assert code == 0
        assert "converged" in capsys.readouterr().out


class TestProfileCommand:
    def test_profile_fixed_interactions(self, capsys):
        code = main(
            [
                "profile",
                "--protocol",
                "epidemic",
                "--n",
                "2000",
                "--engine",
                "batched",
                "--interactions",
                "20000",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "interactions_per_second" in output
        assert "top" in output and "cumulative time" in output
        assert "kernel breakdown" in output
        assert "repro/" in output  # kernel frames resolved to repo paths

    def test_profile_run_to_convergence(self, capsys):
        code = main(
            [
                "profile",
                "--protocol",
                "epidemic",
                "--n",
                "1000",
                "--engine",
                "count",
                "--max-time",
                "60",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "converged" in output
        assert "kernel breakdown" in output

    def test_profile_vector_engine(self, capsys):
        code = main(
            [
                "profile",
                "--protocol",
                "epidemic",
                "--n",
                "1000",
                "--engine",
                "vector",
                "--interactions",
                "10000",
                "--top",
                "5",
            ]
        )
        assert code == 0
        assert "vector engine" in capsys.readouterr().out

    def test_profile_reports_engine_errors_cleanly(self, capsys):
        code = main(
            [
                "profile",
                "--protocol",
                "epidemic",
                "--engine",
                "vector",
                "--batch-size",
                "32",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestStoreCli:
    """--store plumbing on sweeps plus the `repro store` subcommands."""

    @staticmethod
    def _sweep_args(store_url, sizes="64,128"):
        return [
            "sweep",
            "--protocol",
            "epidemic",
            "--sizes",
            sizes,
            "--runs",
            "2",
            "--engine",
            "count",
            "--store",
            store_url,
        ]

    def test_store_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["store", "status", "--store", "sqlite:x"])
        assert args.command == "store"
        args = parser.parse_args(["store", "serve", "--db", "x.sqlite"])
        assert args.command == "store"

    def test_store_serve_help_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "serve", "--help"])
        assert excinfo.value.code == 0
        assert "--db" in capsys.readouterr().out

    def test_sweep_store_and_cache_dir_are_mutually_exclusive(
        self, capsys, tmp_path
    ):
        code = main(
            self._sweep_args(f"sqlite:{tmp_path / 'db.sqlite'}")
            + ["--cache-dir", str(tmp_path)]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_sweep_sqlite_store_resumes(self, capsys, tmp_path):
        args = self._sweep_args(f"sqlite:{tmp_path / 'db.sqlite'}")
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "4 total, 4 executed, 0 from cache" in first
        assert "store: sqlite:" in first
        # Identical sweep against the same store: nothing left to execute.
        assert main(args) == 0
        assert "0 executed, 4 from cache" in capsys.readouterr().out
        # Growing the sweep executes only the new trials.
        assert main(self._sweep_args(f"sqlite:{tmp_path / 'db.sqlite'}",
                                     sizes="64,128,192")) == 0
        assert "6 total, 2 executed, 4 from cache" in capsys.readouterr().out

    def test_sweep_sqlite_store_resumes_after_midsweep_kill(
        self, capsys, tmp_path
    ):
        import sqlite3
        import time as _time

        db = tmp_path / "db.sqlite"
        args = self._sweep_args(f"sqlite:{db}")
        assert main(args) == 0
        capsys.readouterr()
        # Emulate a driver killed mid-trial: one record never landed and the
        # dead owner still holds an (expired) lease on its key.
        connection = sqlite3.connect(db)
        with connection:
            (key,) = connection.execute(
                "SELECT key FROM results LIMIT 1"
            ).fetchone()
            connection.execute("DELETE FROM results WHERE key = ?", (key,))
            now = _time.time()
            connection.execute(
                "INSERT INTO leases (key, owner, acquired_at, expires_at) "
                "VALUES (?, ?, ?, ?)",
                (key, "killed-driver", now - 10.0, now - 5.0),
            )
        connection.close()
        assert main(args) == 0
        assert "4 total, 1 executed, 3 from cache" in capsys.readouterr().out

    def test_crn_sweep_with_sqlite_store(self, capsys, tmp_path):
        args = [
            "crn",
            "sweep",
            "--crn",
            "epidemic",
            "--sizes",
            "100",
            "--runs",
            "2",
            "--engine",
            "count",
            "--store",
            f"sqlite:{tmp_path / 'db.sqlite'}",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "2 total, 2 executed, 0 from cache" in first
        assert "store: sqlite:" in first
        assert main(args) == 0
        assert "0 executed, 2 from cache" in capsys.readouterr().out

    def test_store_status_reports_counts_and_stale_leases(
        self, capsys, tmp_path
    ):
        from repro.store.sqlite import SqliteStore

        url = f"sqlite:{tmp_path / 'db.sqlite'}"
        assert main(self._sweep_args(url)) == 0
        with SqliteStore(tmp_path / "db.sqlite") as store:
            store.claim("unfinished-key", lease=0.01, owner="dead-driver")
        import time as _time

        _time.sleep(0.05)
        capsys.readouterr()
        assert main(["store", "status", "--store", url]) == 0
        output = capsys.readouterr().out
        assert "completed trials" in output and ": 4" in output
        assert "stale leases (reclaimable)" in output
        assert "dead-driver" in output and "STALE" in output
        assert "throughput by workload" in output
        # Finite-state records carry no protocol name, so the workload label
        # degrades to the engine name.
        assert "count" in output

    def test_store_status_rejects_bad_url(self, capsys):
        assert main(["store", "status", "--store", "warp:x"]) == 2
        assert "error" in capsys.readouterr().err
