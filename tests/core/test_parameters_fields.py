"""Tests for protocol parameters and the agent-state record."""

from __future__ import annotations

import pytest

from repro.core.fields import LogSizeAgentState, Role
from repro.core.parameters import ProtocolParameters
from repro.exceptions import ProtocolError


class TestProtocolParameters:
    def test_paper_defaults(self):
        params = ProtocolParameters.paper()
        assert params.clock_threshold_factor == 95
        assert params.epochs_factor == 5
        assert params.log_size2_offset == 2
        assert params.geometric_success_probability == 0.5

    def test_derived_quantities(self):
        params = ProtocolParameters.paper()
        assert params.clock_threshold(10) == 950
        assert params.total_epochs(10) == 50

    def test_fast_preset_is_smaller(self):
        fast = ProtocolParameters.fast_test()
        paper = ProtocolParameters.paper()
        assert fast.clock_threshold_factor < paper.clock_threshold_factor
        assert fast.epochs_factor < paper.epochs_factor

    def test_validation(self):
        with pytest.raises(ProtocolError):
            ProtocolParameters(clock_threshold_factor=0)
        with pytest.raises(ProtocolError):
            ProtocolParameters(epochs_factor=0)
        with pytest.raises(ProtocolError):
            ProtocolParameters(log_size2_offset=-1)
        with pytest.raises(ProtocolError):
            ProtocolParameters(geometric_success_probability=1.0)

    def test_describe_mentions_constants(self):
        text = ProtocolParameters.paper().describe()
        assert "95" in text and "5" in text

    def test_frozen(self):
        params = ProtocolParameters.paper()
        with pytest.raises(AttributeError):
            params.epochs_factor = 7  # type: ignore[misc]


class TestLogSizeAgentState:
    def test_defaults_match_protocol_1(self):
        state = LogSizeAgentState()
        assert state.role is Role.UNASSIGNED
        assert state.time == 0
        assert state.total == 0
        assert state.epoch == 0
        assert state.gr == 1
        assert state.log_size2 == 1
        assert not state.protocol_done
        assert not state.updated_sum
        assert state.output is None

    def test_clone_is_independent(self):
        state = LogSizeAgentState(role=Role.WORKER, time=5)
        copy = state.clone()
        copy.time = 99
        assert state.time == 5
        assert copy.role is Role.WORKER

    def test_signature_equality(self):
        assert LogSizeAgentState() == LogSizeAgentState()
        assert LogSizeAgentState(time=1) != LogSizeAgentState()

    def test_role_helpers(self):
        assert LogSizeAgentState(role=Role.WORKER).is_worker
        assert LogSizeAgentState(role=Role.STORAGE).is_storage
        assert LogSizeAgentState().is_unassigned

    def test_current_estimate_for_storage(self):
        state = LogSizeAgentState(
            role=Role.STORAGE, total=30, epoch=10, protocol_done=True
        )
        assert state.current_estimate(output_offset=1.0) == pytest.approx(4.0)

    def test_current_estimate_for_worker_uses_stored_output(self):
        state = LogSizeAgentState(role=Role.WORKER, output=7.25)
        assert state.current_estimate() == 7.25

    def test_current_estimate_none_before_completion(self):
        assert LogSizeAgentState(role=Role.STORAGE, total=3, epoch=1).current_estimate() is None

    def test_hashable_via_signature(self):
        assert len({LogSizeAgentState(), LogSizeAgentState(), LogSizeAgentState(time=1)}) == 2
