"""Tests for the restart-based composition scheme (Section 1.1)."""

from __future__ import annotations

import pytest

from repro.core.composition import (
    RestartComposition,
    StagedComposition,
    make_estimate_hook,
    stage_signal_reached,
)
from repro.core.parameters import ProtocolParameters
from repro.engine.simulator import Simulation
from repro.exceptions import CompositionError
from repro.protocols.approximate_counting import AlistarhApproximateCounting
from repro.protocols.leader_election import (
    NonuniformCounterLeaderElection,
    PairwiseEliminationLeaderElection,
)


class TestValidation:
    def test_requires_at_least_one_stage(self):
        with pytest.raises(CompositionError):
            StagedComposition(stages=[], stage_length_factor=10)

    def test_requires_positive_stage_length(self):
        with pytest.raises(CompositionError):
            StagedComposition(
                stages=[PairwiseEliminationLeaderElection()], stage_length_factor=0
            )


class TestRestartComposition:
    def test_downstream_protocol_runs_and_converges(self):
        composition = RestartComposition(
            AlistarhApproximateCounting(), stage_length_factor=30
        )
        simulation = Simulation(composition, 64, seed=1)
        simulation.run_until(stage_signal_reached, max_parallel_time=5_000)
        outputs = set(simulation.outputs())
        assert len(outputs) == 1
        assert None not in outputs

    def test_signal_arrives_after_downstream_convergence_time(self):
        """The phase clock must not fire before f(s) interactions per agent."""
        composition = RestartComposition(
            AlistarhApproximateCounting(), stage_length_factor=30
        )
        simulation = Simulation(composition, 64, seed=2)
        elapsed = simulation.run_until(stage_signal_reached, max_parallel_time=5_000)
        # f(s) = 30 * s with s >= 3; each agent has ~2 interactions per unit
        # time, so the signal cannot appear before ~45 units of parallel time.
        assert elapsed > 20

    def test_estimates_agree_across_population(self):
        composition = RestartComposition(
            AlistarhApproximateCounting(), stage_length_factor=20
        )
        simulation = Simulation(composition, 48, seed=3)
        simulation.run_until(stage_signal_reached, max_parallel_time=5_000)
        estimates = {state.estimate for state in simulation.states}
        assert len(estimates) == 1

    def test_describe(self):
        composition = RestartComposition(
            AlistarhApproximateCounting(), stage_length_factor=20
        )
        assert "RestartComposition" in composition.describe()


class TestStagedComposition:
    def test_two_stages_run_in_sequence(self):
        stages = [AlistarhApproximateCounting(), PairwiseEliminationLeaderElection()]
        composition = StagedComposition(stages=stages, stage_length_factor=25)
        simulation = Simulation(composition, 48, seed=4)
        simulation.run_until(
            lambda sim: all(state.stage == 1 for state in sim.states),
            max_parallel_time=5_000,
        )
        # Stage 1 is leader election started afresh: leader count should be
        # between 1 and n and strictly decreasing over time.
        leaders = simulation.count_where(
            lambda state: composition.output(state) is True
        )
        assert 1 <= leaders <= 48

    def test_stage_index_never_exceeds_last_stage(self):
        stages = [AlistarhApproximateCounting(), PairwiseEliminationLeaderElection()]
        composition = StagedComposition(stages=stages, stage_length_factor=10)
        simulation = Simulation(composition, 32, seed=5)
        simulation.run_parallel_time(1_000)
        assert all(state.stage <= 1 for state in simulation.states)

    def test_uniformising_a_nonuniform_protocol_via_hook(self):
        """The configure_estimate hook feeds the weak size estimate to a
        nonuniform downstream protocol (the Figure-1 counter protocol)."""
        downstream = NonuniformCounterLeaderElection(counter_threshold=1)
        observed = []

        def setter(protocol, estimate):
            protocol.counter_threshold = 10 * estimate
            observed.append(estimate)

        make_estimate_hook(downstream, setter)
        composition = RestartComposition(downstream, stage_length_factor=40)
        simulation = Simulation(composition, 48, seed=6)
        simulation.run_parallel_time(50)
        assert observed, "the estimate hook was never invoked"
        assert all(estimate >= 3 for estimate in observed)
        assert downstream.counter_threshold >= 30

    def test_state_signature_includes_stage_and_estimate(self):
        composition = RestartComposition(
            AlistarhApproximateCounting(), stage_length_factor=10
        )
        state = composition.initial_state(0)
        signature = composition.state_signature(state)
        assert signature[0] is None  # estimate not yet drawn
        assert signature[2] == 0  # stage
