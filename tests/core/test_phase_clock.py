"""Tests for the leaderless and leader-driven phase clocks."""

from __future__ import annotations

import pytest

from repro.core.phase_clock import (
    LeaderDrivenPhaseClock,
    LeaderlessPhaseClock,
    PhaseClockAgent,
)
from repro.engine.simulator import Simulation
from repro.exceptions import ProtocolError
from repro.protocols.base import AgentProtocol
from repro.rng import RandomSource


class TestLeaderlessPhaseClock:
    def test_threshold(self):
        clock = LeaderlessPhaseClock(clock_factor=95, size_estimate=10)
        assert clock.threshold == 950
        assert not clock.expired(949)
        assert clock.expired(950)

    def test_with_estimate_returns_updated_clock(self):
        clock = LeaderlessPhaseClock(clock_factor=8, size_estimate=3)
        updated = clock.with_estimate(7)
        assert updated.threshold == 56
        assert clock.threshold == 24  # original unchanged

    def test_validation(self):
        with pytest.raises(ProtocolError):
            LeaderlessPhaseClock(clock_factor=0, size_estimate=3)
        with pytest.raises(ProtocolError):
            LeaderlessPhaseClock(clock_factor=5, size_estimate=0)


class _PhaseClockOnlyProtocol(AgentProtocol):
    """Wrap the leader-driven clock as a standalone protocol for simulation tests."""

    def __init__(self, phase_count: int) -> None:
        self.clock = LeaderDrivenPhaseClock(phase_count=phase_count)

    def initial_state(self, agent_id: int):
        return (agent_id == 0, PhaseClockAgent())

    def transition(self, receiver, sender, rng: RandomSource):
        receiver_leader, receiver_clock = receiver
        sender_leader, sender_clock = sender
        new_receiver, new_sender = self.clock.interact(
            receiver_clock, receiver_leader, sender_clock, sender_leader
        )
        return (receiver_leader, new_receiver), (sender_leader, new_sender)

    def output(self, state):
        return state[1].round

    def state_signature(self, state):
        return (state[0], state[1].phase, state[1].round)


class TestLeaderDrivenPhaseClock:
    def test_phase_count_validation(self):
        with pytest.raises(ProtocolError):
            LeaderDrivenPhaseClock(phase_count=2)

    def test_leader_advances_when_met_by_caught_up_agent(self):
        clock = LeaderDrivenPhaseClock(phase_count=4)
        leader = PhaseClockAgent(phase=1, round=0)
        follower = PhaseClockAgent(phase=1, round=0)
        new_leader, new_follower = clock.interact(leader, True, follower, False)
        assert new_leader.phase == 2
        assert new_follower.phase == 1

    def test_follower_adopts_later_reading(self):
        clock = LeaderDrivenPhaseClock(phase_count=4)
        behind = PhaseClockAgent(phase=0, round=0)
        ahead = PhaseClockAgent(phase=3, round=1)
        new_behind, new_ahead = clock.interact(behind, False, ahead, False)
        assert (new_behind.round, new_behind.phase) == (1, 3)
        assert (new_ahead.round, new_ahead.phase) == (1, 3)

    def test_leader_does_not_advance_when_ahead(self):
        clock = LeaderDrivenPhaseClock(phase_count=4)
        leader = PhaseClockAgent(phase=2, round=0)
        follower = PhaseClockAgent(phase=0, round=0)
        new_leader, new_follower = clock.interact(leader, True, follower, False)
        assert new_leader == leader
        assert new_follower.phase == 2

    def test_round_increments_on_wrap(self):
        clock = LeaderDrivenPhaseClock(phase_count=3)
        leader = PhaseClockAgent(phase=2, round=0)
        caught_up = PhaseClockAgent(phase=2, round=0)
        new_leader, _ = clock.interact(leader, True, caught_up, False)
        assert new_leader.phase == 0
        assert new_leader.round == 1

    def test_round_count_grows_with_time_in_simulation(self):
        protocol = _PhaseClockOnlyProtocol(phase_count=6)
        simulation = Simulation(protocol, 40, seed=1)
        simulation.run_parallel_time(50)
        early_rounds = protocol.output(simulation.states[0])
        simulation.run_parallel_time(150)
        late_rounds = protocol.output(simulation.states[0])
        assert late_rounds > early_rounds >= 0

    def test_followers_track_leader_round(self):
        protocol = _PhaseClockOnlyProtocol(phase_count=6)
        simulation = Simulation(protocol, 40, seed=2)
        simulation.run_parallel_time(200)
        rounds = [protocol.output(state) for state in simulation.states]
        # All agents should be within one round of the leader.
        assert max(rounds) - min(rounds) <= 1
