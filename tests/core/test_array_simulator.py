"""Tests for the vectorised (numpy) simulator and its agreement with the reference engine."""

from __future__ import annotations

import math

import pytest

from repro.core.array_simulator import (
    ArrayLogSizeSimulator,
    expected_convergence_time,
)
from repro.core.log_size_estimation import (
    LogSizeEstimationProtocol,
    all_agents_done,
    estimate_error,
)
from repro.core.parameters import ProtocolParameters
from repro.engine.simulator import Simulation
from repro.exceptions import ConvergenceError, SimulationError


class TestBasics:
    def test_rejects_tiny_population(self):
        with pytest.raises(SimulationError):
            ArrayLogSizeSimulator(1)

    def test_round_accounting(self, fast_params):
        simulator = ArrayLogSizeSimulator(100, params=fast_params, seed=1)
        for _ in range(10):
            simulator.run_round()
        assert simulator.rounds == 10
        assert simulator.interactions == 10 * 50
        assert simulator.parallel_time == pytest.approx(5.0)

    def test_expected_convergence_time_grows_with_n(self, paper_params):
        assert expected_convergence_time(10_000, paper_params) > expected_convergence_time(
            100, paper_params
        )

    def test_timeout_behaviour(self, fast_params):
        simulator = ArrayLogSizeSimulator(64, params=fast_params, seed=2)
        result = simulator.run_until_done(max_parallel_time=1.0)
        assert not result.converged
        with pytest.raises(ConvergenceError):
            ArrayLogSizeSimulator(64, params=fast_params, seed=2).run_until_done(
                max_parallel_time=1.0, raise_on_timeout=True
            )

    def test_result_dictionary_round_trip(self, fast_params):
        simulator = ArrayLogSizeSimulator(64, params=fast_params, seed=3)
        result = simulator.run_until_done(max_parallel_time=5_000)
        data = result.as_dict()
        assert data["population_size"] == 64
        assert data["converged"] == result.converged


class TestConvergence:
    @pytest.fixture(scope="class")
    def result(self):
        params = ProtocolParameters.fast_test()
        simulator = ArrayLogSizeSimulator(256, params=params, seed=5)
        return simulator.run_until_done(
            max_parallel_time=6 * expected_convergence_time(256, params)
        )

    def test_converges(self, result):
        assert result.converged
        assert result.convergence_time is not None and result.convergence_time > 0

    def test_estimate_accuracy(self, result):
        assert result.max_additive_error < 4.0

    def test_all_agents_report(self, result):
        assert not math.isnan(result.final_estimate_mean)
        assert result.final_estimate_min <= result.final_estimate_mean <= result.final_estimate_max

    def test_log_size2_in_weak_range(self, result):
        n = result.population_size
        assert result.log_size2 >= math.log2(n) - math.log2(math.log(n)) - 1
        assert result.log_size2 <= 2 * math.log2(n) + 3

    def test_state_bound_tracked(self, result):
        assert result.distinct_state_bound > 0

    def test_reproducible(self):
        params = ProtocolParameters.fast_test()
        outcomes = []
        for _ in range(2):
            simulator = ArrayLogSizeSimulator(128, params=params, seed=9)
            outcomes.append(
                simulator.run_until_done(max_parallel_time=5_000).convergence_time
            )
        assert outcomes[0] == outcomes[1]


class TestExactConvergenceDetection:
    """Regression tests for the convergence-time quantisation bug.

    ``run_until_done`` used to evaluate the convergence condition only every
    ``check_every_rounds`` (default 64) rounds, overstating every reported
    Figure 2 time by up to 63 rounds (~32 units of parallel time at n=100 —
    the same order as the quantity being plotted).  Detection must be exact
    to the round; ``check_every_rounds`` only throttles field-range sampling.
    """

    def test_detection_is_exact_to_the_round(self, fast_params):
        n, seed = 96, 13
        # Ground truth: step round by round and record the first all-done round.
        manual = ArrayLogSizeSimulator(n, params=fast_params, seed=seed)
        while not manual.all_done():
            manual.run_round()
        exact_rounds = manual.rounds
        # The driver must stop at exactly that round, not at the next
        # multiple of check_every_rounds (this seed converges at a round
        # that is not such a multiple, so quantised detection would differ).
        assert exact_rounds % 64 != 0
        driver = ArrayLogSizeSimulator(n, params=fast_params, seed=seed)
        result = driver.run_until_done(max_parallel_time=5_000, check_every_rounds=64)
        assert result.converged
        assert result.rounds == exact_rounds
        assert result.convergence_time == pytest.approx(
            exact_rounds * (n // 2) / n
        )

    def test_detection_independent_of_range_sampling_cadence(self, fast_params):
        times = []
        for cadence in (1, 7, 64, 1000):
            simulator = ArrayLogSizeSimulator(64, params=fast_params, seed=3)
            result = simulator.run_until_done(
                max_parallel_time=5_000, check_every_rounds=cadence
            )
            assert result.converged
            times.append(result.convergence_time)
        assert len(set(times)) == 1

    def test_ranges_still_sampled_for_state_table(self, fast_params):
        simulator = ArrayLogSizeSimulator(64, params=fast_params, seed=3)
        simulator.run_until_done(max_parallel_time=5_000)
        assert simulator._max_log_size2 >= 1
        assert simulator._max_time > 0
        assert simulator.distinct_state_bound() > 1


class TestCrossEngineAgreement:
    """The vectorised engine must agree with the reference engine on behaviour."""

    def test_accuracy_agreement(self):
        params = ProtocolParameters.fast_test()
        n, seed = 96, 21

        array_result = ArrayLogSizeSimulator(n, params=params, seed=seed).run_until_done(
            max_parallel_time=5_000
        )

        protocol = LogSizeEstimationProtocol(params)
        simulation = Simulation(protocol, n, seed=seed)
        simulation.run_until(all_agents_done, max_parallel_time=50_000)
        sequential_error = estimate_error(simulation)["max_additive_error"]

        assert array_result.converged
        # Both engines estimate log2(96) ~ 6.58 within a small additive error.
        assert array_result.max_additive_error < 4.0
        assert sequential_error < 4.0

    def test_convergence_time_same_order_of_magnitude(self):
        params = ProtocolParameters.fast_test()
        n = 96
        array_time = (
            ArrayLogSizeSimulator(n, params=params, seed=31)
            .run_until_done(max_parallel_time=5_000)
            .convergence_time
        )
        protocol = LogSizeEstimationProtocol(params)
        simulation = Simulation(protocol, n, seed=31)
        sequential_time = simulation.run_until(all_agents_done, max_parallel_time=50_000)
        assert array_time is not None
        # The matching-round scheduler halves per-agent interaction variance but
        # keeps the same Theta(log^2 n) behaviour; allow a factor-3 band.
        ratio = sequential_time / array_time
        assert 1 / 3 < ratio < 3

    def test_growth_shape_is_superlinear_in_log_n(self):
        """Convergence time grows roughly like log^2 n (Figure 2's shape)."""
        params = ProtocolParameters.fast_test()
        times = {}
        for n in (64, 1024):
            result = ArrayLogSizeSimulator(n, params=params, seed=7).run_until_done(
                max_parallel_time=8 * expected_convergence_time(n, params)
            )
            assert result.converged
            times[n] = result.convergence_time
        # log2^2(1024)/log2^2(64) = 100/36 ~ 2.8; the measured ratio should be
        # clearly above 1 (growth) and not wildly above the predicted ~2.8.
        ratio = times[1024] / times[64]
        assert 1.3 < ratio < 6.0
