"""Tests for the vectorised leader-terminating protocol (Theorem 3.13)."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.core.leader_terminating import (
    LeaderTerminatingSizeEstimation,
    all_agents_terminated,
)
from repro.core.parameters import ProtocolParameters
from repro.core.vector_leader import (
    LeaderTerminatingVectorProtocol,
    expected_termination_time,
)
from repro.engine.simulator import Simulation
from repro.engine.vector import VectorSimulator
from repro.exceptions import ProtocolError
from repro.harness.parallel import build_vector_trials, run_trial

FAST = ProtocolParameters.fast_test()
PHASES = 16
K2 = 2


def run_vector(population_size, seed, phase_count=PHASES, budget_factor=4.0):
    kernel = LeaderTerminatingVectorProtocol(
        FAST, phase_count=phase_count, termination_rounds_factor=K2
    )
    simulator = VectorSimulator(kernel, population_size, seed=seed)
    budget = budget_factor * expected_termination_time(
        population_size, FAST, phase_count, K2
    )
    return simulator.run_until_done(max_parallel_time=budget), kernel


class TestValidation:
    def test_phase_count_too_small_rejected(self):
        with pytest.raises(ProtocolError):
            LeaderTerminatingVectorProtocol(FAST, phase_count=2)

    def test_termination_factor_validated(self):
        with pytest.raises(ProtocolError):
            LeaderTerminatingVectorProtocol(FAST, termination_rounds_factor=0)


class TestTermination:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_vector(128, seed=11)

    def test_terminates_within_budget(self, outcome):
        result, _ = outcome
        assert result.converged
        assert result.convergence_time is not None and result.convergence_time > 0

    def test_every_agent_terminated(self, outcome):
        _, kernel = outcome
        assert bool(kernel.terminated.all())
        assert kernel.any_terminated()

    def test_announced_estimate_accurate(self, outcome):
        result, _ = outcome
        # Theorem 3.1's additive-error bound carries over to the announced
        # estimate when the clock fires after the underlying convergence.
        assert result.max_additive_error < 5.7

    def test_reproducible_per_seed(self):
        times = [run_vector(96, seed=17)[0].convergence_time for _ in range(2)]
        assert times[0] == times[1]

    def test_state_bound_includes_clock_fields(self):
        kernel = LeaderTerminatingVectorProtocol(
            FAST, phase_count=PHASES, termination_rounds_factor=K2
        )
        simulator = VectorSimulator(kernel, 96, seed=7)
        result = simulator.run_until_done(
            max_parallel_time=4 * expected_termination_time(96, FAST, PHASES, K2)
        )
        assert result.converged
        fields = simulator.fields
        base = (
            (fields.max_observed("log_size2") + 1)
            * (fields.max_observed("gr") + 1)
            * (fields.max_observed("time") + 1)
            * (fields.max_observed("epoch") + 1)
        )
        clock = (
            (fields.max_observed("clock_phase") + 1)
            * (fields.max_observed("clock_round") + 1)
            * 2
        )
        # The bound must multiply the leader clock and termination flag into
        # the inherited log-size product, not silently report the smaller
        # base-protocol state machine.
        assert result.distinct_state_bound == base * clock
        # Every phase value was realised across the run's many clock wraps.
        assert fields.max_observed("clock_phase") == PHASES - 1

    def test_timeout_reports_non_converged(self):
        kernel = LeaderTerminatingVectorProtocol(
            FAST, phase_count=PHASES, termination_rounds_factor=K2
        )
        result = VectorSimulator(kernel, 64, seed=1).run_until_done(
            max_parallel_time=1.0
        )
        assert not result.converged
        assert result.convergence_time is None


class TestCrossEngineAgreement:
    """The vector port must agree with the agent-level reference protocol."""

    def test_termination_time_same_order_of_magnitude(self):
        n = 64
        agent_times = []
        for seed in range(3):
            simulation = Simulation(
                LeaderTerminatingSizeEstimation(
                    params=FAST, phase_count=PHASES, termination_rounds_factor=K2
                ),
                n,
                seed=seed,
            )
            agent_times.append(
                simulation.run_until(
                    all_agents_terminated, max_parallel_time=500_000
                )
            )
        vector_times = [
            run_vector(n, seed=seed)[0].convergence_time for seed in range(3)
        ]
        ratio = statistics.fmean(agent_times) / statistics.fmean(vector_times)
        # The matching-round scheduler preserves the signal time up to a
        # constant factor (measured ~0.94 at these settings).
        assert 1 / 3 < ratio < 3, (agent_times, vector_times)

    def test_accuracy_agreement(self):
        n = 96
        result, _ = run_vector(n, seed=23)
        assert result.converged
        assert result.max_additive_error < 5.7

        simulation = Simulation(
            LeaderTerminatingSizeEstimation(
                params=FAST, phase_count=PHASES, termination_rounds_factor=K2
            ),
            n,
            seed=23,
        )
        simulation.run_until(all_agents_terminated, max_parallel_time=500_000)
        outputs = [
            simulation.protocol.output(state) for state in simulation.states
        ]
        agent_error = max(
            abs(value - math.log2(n)) for value in outputs if value is not None
        )
        assert agent_error < 5.7

    def test_termination_time_grows_with_n(self):
        """Theorem 3.13's qualitative claim: the signal time grows with n.

        (The uniform dense protocols of Theorem 4.1 terminate in O(1) time;
        the initial leader is what makes the growing delay possible.)
        """
        means = {}
        for n in (64, 4096):
            times = [
                run_vector(n, seed=seed)[0].convergence_time for seed in (0, 2)
            ]
            means[n] = statistics.fmean(times)
        # Measured ratio ~4.3 at these settings; any clear growth suffices.
        assert means[4096] > 1.5 * means[64], means


class TestSweepIntegration:
    def test_registered_workload_runs_through_the_driver(self):
        specs = build_vector_trials(
            population_sizes=[64],
            runs_per_size=1,
            protocol="leader-terminating",
            params=FAST,
            base_seed=2,
            phase_count=PHASES,
        )
        assert len(specs) == 1
        assert specs[0].engine == "vector"
        record = run_trial(specs[0])
        assert record.converged
        assert record.extra["engine"] == "vector"
        assert record.extra["protocol"] == "leader-terminating"
        assert record.extra["interactions"] > 0
