"""Tests for the protocol variants: synthetic coin (App. B), leader-terminating
(Thm 3.13) and probability-1 upper bound (Sec. 3.3)."""

from __future__ import annotations

import math

import pytest

from repro.core.leader_terminating import (
    LeaderTerminatingSizeEstimation,
    all_agents_terminated,
    any_agent_terminated,
    termination_happened_after_convergence,
)
from repro.core.parameters import ProtocolParameters
from repro.core.probability_one import (
    ProbabilityOneUpperBoundProtocol,
    upper_bound_holds,
)
from repro.core.synthetic_coin import (
    CoinRole,
    SyntheticCoinLogSizeEstimation,
    all_agents_report,
    all_workers_done,
)
from repro.engine.simulator import Simulation
from repro.exceptions import ProtocolError


class TestSyntheticCoinVariant:
    @pytest.fixture(scope="class")
    def converged(self):
        protocol = SyntheticCoinLogSizeEstimation(ProtocolParameters.fast_test())
        simulation = Simulation(protocol, 96, seed=13)
        simulation.run_until(all_workers_done, max_parallel_time=50_000)
        simulation.run_parallel_time(50)  # let the output epidemic finish
        return simulation

    def test_identical_initial_states(self):
        protocol = SyntheticCoinLogSizeEstimation(ProtocolParameters.fast_test())
        assert protocol.initial_state(0) == protocol.initial_state(9)

    def test_roles_split_between_workers_and_coins(self, converged):
        workers = converged.count_where(lambda s: s.role is CoinRole.WORKER)
        coins = converged.count_where(lambda s: s.role is CoinRole.COIN)
        assert workers + coins == 96
        assert abs(workers - 48) < 25

    def test_workers_complete_all_epochs(self, converged):
        assert all_workers_done(converged)

    def test_estimate_accuracy(self, converged):
        target = math.log2(96)
        estimates = [
            state.output for state in converged.states if state.output is not None
        ]
        assert estimates
        assert max(abs(value - target) for value in estimates) < 4.5

    def test_every_agent_eventually_reports(self, converged):
        assert all_agents_report(converged)

    def test_transition_uses_no_explicit_randomness(self):
        """The transition is deterministic given the ordered pair of states.

        (All randomness comes from the scheduler's sender/receiver choice.)
        """
        protocol = SyntheticCoinLogSizeEstimation(ProtocolParameters.fast_test())
        from repro.rng import RandomSource

        first = protocol.initial_state(0)
        second = protocol.initial_state(1)
        results = {
            protocol.transition(first, second, RandomSource(seed=s))[0].signature()
            for s in range(5)
        }
        assert len(results) == 1


class TestLeaderTerminatingVariant:
    @pytest.fixture(scope="class")
    def terminated(self):
        protocol = LeaderTerminatingSizeEstimation(
            params=ProtocolParameters.fast_test(),
            phase_count=16,
            termination_rounds_factor=2,
        )
        simulation = Simulation(protocol, 48, seed=3)
        simulation.run_until(all_agents_terminated, max_parallel_time=100_000)
        return simulation

    def test_parameter_validation(self):
        with pytest.raises(ProtocolError):
            LeaderTerminatingSizeEstimation(termination_rounds_factor=0)

    def test_agent_zero_is_leader(self):
        protocol = LeaderTerminatingSizeEstimation(params=ProtocolParameters.fast_test())
        assert protocol.initial_state(0).is_leader
        assert not protocol.initial_state(1).is_leader

    def test_everyone_terminates(self, terminated):
        assert all_agents_terminated(terminated)
        assert any_agent_terminated(terminated)

    def test_termination_after_convergence(self, terminated):
        assert termination_happened_after_convergence(terminated)

    def test_announced_estimate_is_accurate(self, terminated):
        target = math.log2(48)
        values = {terminated.protocol.output(state) for state in terminated.states}
        assert all(value is not None for value in values)
        assert all(abs(value - target) < 4.5 for value in values)

    def test_termination_time_grows_with_population(self):
        """Termination is genuinely delayed as n grows (leader needed, Thm 4.1).

        Both the number of clock wraps (proportional to ``logSize2``) and the
        time per wrap (the new reading must spread before the leader can tick)
        grow with ``n``, so the leader-driven signal is produced later and
        later — in contrast with the flat curve of the uniform dense protocol
        measured in ``tests/termination``.
        """
        params = ProtocolParameters.fast_test()
        times = {}
        for n in (16, 256):
            protocol = LeaderTerminatingSizeEstimation(
                params=params, phase_count=8, termination_rounds_factor=1
            )
            simulation = Simulation(protocol, n, seed=5)
            times[n] = simulation.run_until(
                any_agent_terminated, max_parallel_time=100_000
            )
        assert times[256] > 1.5 * times[16]


class TestProbabilityOneUpperBound:
    def test_slack_validation(self):
        with pytest.raises(ValueError):
            ProbabilityOneUpperBoundProtocol(upper_bound_slack=-1)

    def test_output_defined_from_the_start(self):
        protocol = ProbabilityOneUpperBoundProtocol(params=ProtocolParameters.fast_test())
        assert protocol.output(protocol.initial_state(0)) == 1.0  # backup level 0 + 1

    def test_upper_bound_holds_after_stabilisation(self):
        protocol = ProbabilityOneUpperBoundProtocol(
            params=ProtocolParameters.fast_test(), upper_bound_slack=3.7
        )
        simulation = Simulation(protocol, 64, seed=9)
        # Run long enough for the slow backup to stabilise (O(n) time).
        simulation.run_parallel_time(3_000)
        assert upper_bound_holds(simulation)

    def test_upper_bound_not_absurdly_loose(self):
        protocol = ProbabilityOneUpperBoundProtocol(
            params=ProtocolParameters.fast_test(), upper_bound_slack=3.7
        )
        simulation = Simulation(protocol, 64, seed=10)
        simulation.run_parallel_time(3_000)
        target = math.log2(64)
        values = [protocol.output(state) for state in simulation.states]
        assert all(value <= target + 12 for value in values)

    def test_diagnostic_accessors(self):
        protocol = ProbabilityOneUpperBoundProtocol(params=ProtocolParameters.fast_test())
        state = protocol.initial_state(0)
        assert protocol.fast_output(state) is None
        assert protocol.backup_output(state) == 0
