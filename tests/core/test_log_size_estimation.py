"""Tests for the main protocol (Protocol 1, Theorem 3.1)."""

from __future__ import annotations

import math

import pytest

from repro.core.fields import Role
from repro.core.log_size_estimation import (
    LogSizeEstimationProtocol,
    all_agents_done,
    all_agents_have_output,
    estimate_error,
    estimation_within_tolerance,
    storage_count,
    worker_count,
)
from repro.core.parameters import ProtocolParameters
from repro.engine.simulator import Simulation


def _converged_simulation(n: int, seed: int, params: ProtocolParameters) -> Simulation:
    protocol = LogSizeEstimationProtocol(params)
    simulation = Simulation(protocol, n, seed=seed)
    simulation.run_until(all_agents_done, max_parallel_time=50_000)
    return simulation


class TestBasics:
    def test_leaderless_identical_initial_states(self):
        protocol = LogSizeEstimationProtocol(ProtocolParameters.fast_test())
        assert protocol.initial_state(0) == protocol.initial_state(41)
        assert protocol.is_uniform

    def test_transition_does_not_mutate_inputs(self, fast_params, rng):
        protocol = LogSizeEstimationProtocol(fast_params)
        receiver = protocol.initial_state(0)
        sender = protocol.initial_state(1)
        protocol.transition(receiver, sender, rng)
        assert receiver == protocol.initial_state(0)
        assert sender == protocol.initial_state(1)

    def test_first_interaction_assigns_roles(self, fast_params, rng):
        protocol = LogSizeEstimationProtocol(fast_params)
        receiver, sender = protocol.transition(
            protocol.initial_state(0), protocol.initial_state(1), rng
        )
        assert {receiver.role, sender.role} == {Role.WORKER, Role.STORAGE}

    def test_output_none_before_completion(self, fast_params):
        protocol = LogSizeEstimationProtocol(fast_params)
        assert protocol.output(protocol.initial_state(0)) is None

    def test_describe_mentions_constants(self, fast_params):
        assert "clock" in LogSizeEstimationProtocol(fast_params).describe()

    def test_predicate_validation(self):
        with pytest.raises(ValueError):
            estimation_within_tolerance(-1)


class TestConvergedRun:
    """One converged run, inspected from several angles (shared for speed)."""

    N = 96
    SEED = 11

    @pytest.fixture(scope="class")
    def converged(self):
        return _converged_simulation(self.N, self.SEED, ProtocolParameters.fast_test())

    def test_all_agents_done(self, converged):
        assert all_agents_done(converged)

    def test_every_agent_reports_an_estimate(self, converged):
        assert all_agents_have_output(converged)

    def test_all_agents_agree_on_single_value(self, converged):
        values = {converged.protocol.output(state) for state in converged.states}
        assert len(values) == 1

    def test_estimate_close_to_log2_n(self, converged):
        error = estimate_error(converged)
        # With the scaled-down test constants the averaging uses fewer samples
        # than the paper's K >= 4 log2 n, so the tolerance is looser than 5.7's
        # in-practice value of 2, but still a constant additive error.
        assert error["max_additive_error"] < 4.0

    def test_partition_roughly_balanced(self, converged):
        workers = worker_count(converged)
        storages = storage_count(converged)
        assert workers + storages == self.N
        # Lemma 3.2: deviation beyond sqrt(n ln n) ~ 21 is very unlikely.
        assert abs(workers - self.N / 2) < 25

    def test_log_size2_in_lemma_3_8_range(self, converged):
        log_size2_values = {state.log_size2 for state in converged.states}
        assert len(log_size2_values) == 1
        (value,) = log_size2_values
        n = self.N
        assert value >= math.log2(n) - math.log2(math.log(n)) - 1
        assert value <= 2 * math.log2(n) + 3

    def test_epoch_counts_consistent_with_parameters(self, converged):
        params = converged.protocol.params
        for state in converged.states:
            assert state.epoch >= params.total_epochs(state.log_size2)

    def test_estimation_within_tolerance_predicate(self, converged):
        assert estimation_within_tolerance(5.7)(converged)
        assert not estimation_within_tolerance(0.0)(converged)


class TestReproducibilityAndRobustness:
    def test_same_seed_same_outcome(self, fast_params):
        outputs = []
        for _ in range(2):
            simulation = _converged_simulation(48, 3, fast_params)
            outputs.append(simulation.protocol.output(simulation.states[0]))
        assert outputs[0] == outputs[1]

    def test_different_population_sizes_give_increasing_estimates(self, fast_params):
        estimates = {}
        for n in (32, 256):
            simulation = _converged_simulation(n, 5, fast_params)
            estimates[n] = simulation.protocol.output(simulation.states[0])
        assert estimates[256] > estimates[32]

    def test_estimate_error_raises_before_any_output(self, fast_params):
        protocol = LogSizeEstimationProtocol(fast_params)
        simulation = Simulation(protocol, 16, seed=1)
        with pytest.raises(ValueError):
            estimate_error(simulation)

    def test_moderate_parameters_accuracy(self, moderate_params):
        simulation = _converged_simulation(128, 7, moderate_params)
        assert estimate_error(simulation)["max_additive_error"] < 3.5
