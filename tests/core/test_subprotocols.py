"""Unit tests for Protocol 1's subroutines (repro.core.subprotocols)."""

from __future__ import annotations

import pytest

from repro.core import subprotocols as sub
from repro.core.fields import LogSizeAgentState, Role
from repro.core.parameters import ProtocolParameters


@pytest.fixture
def params() -> ProtocolParameters:
    return ProtocolParameters(clock_threshold_factor=10, epochs_factor=2)


def worker(**kwargs) -> LogSizeAgentState:
    return LogSizeAgentState(role=Role.WORKER, **kwargs)


def storage(**kwargs) -> LogSizeAgentState:
    return LogSizeAgentState(role=Role.STORAGE, **kwargs)


class TestPartition:
    def test_two_unassigned_split_into_worker_and_storage(self, rng, params):
        receiver, sender = LogSizeAgentState(), LogSizeAgentState()
        sub.partition_into_roles(receiver, sender, rng, params)
        assert sender.role is Role.WORKER
        assert receiver.role is Role.STORAGE
        assert sender.log_size2 >= 1 + params.log_size2_offset

    def test_unassigned_meets_worker_becomes_storage(self, rng, params):
        receiver, sender = LogSizeAgentState(), worker()
        sub.partition_into_roles(receiver, sender, rng, params)
        assert receiver.role is Role.STORAGE

    def test_unassigned_meets_storage_becomes_worker(self, rng, params):
        receiver, sender = LogSizeAgentState(), storage()
        sub.partition_into_roles(receiver, sender, rng, params)
        assert receiver.role is Role.WORKER
        assert receiver.log_size2 >= 1 + params.log_size2_offset

    def test_unassigned_sender_gets_opposite_role(self, rng, params):
        receiver, sender = worker(), LogSizeAgentState()
        sub.partition_into_roles(receiver, sender, rng, params)
        assert sender.role is Role.STORAGE

    def test_assigned_agents_unchanged(self, rng, params):
        receiver, sender = worker(log_size2=5), storage(log_size2=4)
        sub.partition_into_roles(receiver, sender, rng, params)
        assert receiver.role is Role.WORKER and sender.role is Role.STORAGE


class TestRestartAndMaxClock:
    def test_restart_resets_downstream_state(self, rng, params):
        agent = worker(
            time=9, total=20, epoch=3, gr=4, protocol_done=True, updated_sum=True, output=5.0
        )
        sub.restart(agent, rng, params)
        assert agent.time == 0 and agent.total == 0 and agent.epoch == 0
        assert not agent.protocol_done and not agent.updated_sum
        assert agent.output is None
        assert agent.gr >= 1

    def test_restart_keeps_log_size2(self, rng, params):
        agent = worker(log_size2=9)
        sub.restart(agent, rng, params)
        assert agent.log_size2 == 9

    def test_smaller_log_size2_adopts_and_restarts(self, rng, params):
        low = worker(log_size2=3, epoch=2, total=10)
        high = worker(log_size2=8, epoch=1)
        sub.propagate_max_clock_value(low, high, rng, params)
        assert low.log_size2 == 8
        assert low.epoch == 0 and low.total == 0
        assert high.log_size2 == 8 and high.epoch == 1

    def test_equal_log_size2_is_noop(self, rng, params):
        first = worker(log_size2=5, epoch=2)
        second = worker(log_size2=5, epoch=3)
        sub.propagate_max_clock_value(first, second, rng, params)
        assert first.epoch == 2 and second.epoch == 3


class TestMaxGrv:
    def test_same_epoch_takes_maximum(self):
        first, second = worker(epoch=1, gr=3), worker(epoch=1, gr=7)
        sub.propagate_max_grv(first, second)
        assert first.gr == 7 and second.gr == 7

    def test_different_epochs_do_not_mix(self):
        first, second = worker(epoch=1, gr=3), worker(epoch=2, gr=7)
        sub.propagate_max_grv(first, second)
        assert first.gr == 3 and second.gr == 7


class TestTimerAndEpoch:
    def test_timer_needs_threshold_and_deposit(self, rng, params):
        agent = worker(time=params.clock_threshold(3), log_size2=3, updated_sum=False)
        sub.check_timer_and_increment_epoch(agent, rng, params)
        assert agent.epoch == 0  # deposit missing

        agent.updated_sum = True
        sub.check_timer_and_increment_epoch(agent, rng, params)
        assert agent.epoch == 1
        assert agent.time == 0
        assert not agent.updated_sum

    def test_timer_below_threshold_does_nothing(self, rng, params):
        agent = worker(time=1, log_size2=3, updated_sum=True)
        sub.check_timer_and_increment_epoch(agent, rng, params)
        assert agent.epoch == 0

    def test_last_epoch_sets_protocol_done(self, rng, params):
        log_size2 = 3
        agent = worker(
            time=params.clock_threshold(log_size2),
            log_size2=log_size2,
            updated_sum=True,
            epoch=params.total_epochs(log_size2) - 1,
        )
        sub.check_timer_and_increment_epoch(agent, rng, params)
        assert agent.protocol_done

    def test_done_agent_is_inert(self, rng, params):
        agent = worker(time=1000, log_size2=3, updated_sum=True, protocol_done=True, epoch=6)
        sub.check_timer_and_increment_epoch(agent, rng, params)
        assert agent.epoch == 6


class TestPropagateEpoch:
    def test_lagging_worker_catches_up(self, rng, params):
        behind, ahead = worker(epoch=1, log_size2=4), worker(epoch=3, log_size2=4)
        sub.propagate_incremented_epoch(behind, ahead, rng, params)
        assert behind.epoch == 3
        assert behind.time == 0 and not behind.updated_sum

    def test_catching_up_to_final_epoch_marks_done(self, rng, params):
        log_size2 = 3
        behind = worker(epoch=0, log_size2=log_size2)
        ahead = worker(epoch=params.total_epochs(log_size2), log_size2=log_size2)
        sub.propagate_incremented_epoch(behind, ahead, rng, params)
        assert behind.protocol_done

    def test_storage_adopts_epoch_and_sum(self, rng, params):
        behind = storage(epoch=1, total=5, log_size2=4)
        ahead = storage(epoch=3, total=12, log_size2=4)
        sub.propagate_incremented_epoch(behind, ahead, rng, params)
        assert behind.epoch == 3 and behind.total == 12

    def test_storage_equal_epoch_takes_max_sum(self, rng, params):
        first = storage(epoch=2, total=5, log_size2=4)
        second = storage(epoch=2, total=9, log_size2=4)
        sub.propagate_incremented_epoch(first, second, rng, params)
        assert first.total == 9 and second.total == 9

    def test_storage_reaching_final_epoch_computes_output(self, rng, params):
        log_size2 = 3
        final_epoch = params.total_epochs(log_size2)
        behind = storage(epoch=final_epoch - 1, total=2, log_size2=log_size2)
        ahead = storage(epoch=final_epoch, total=18, log_size2=log_size2)
        sub.propagate_incremented_epoch(behind, ahead, rng, params)
        assert behind.protocol_done
        assert behind.output == pytest.approx(18 / final_epoch + params.output_offset)


class TestUpdateSum:
    def test_deposit_when_timer_expired_and_epochs_match(self, params):
        log_size2 = 3
        agent_worker = worker(
            epoch=2, gr=6, time=params.clock_threshold(log_size2), log_size2=log_size2
        )
        agent_storage = storage(epoch=2, total=10, log_size2=log_size2)
        sub.update_sum(agent_worker, agent_storage, params)
        assert agent_storage.epoch == 3
        assert agent_storage.total == 16
        assert agent_worker.updated_sum

    def test_no_deposit_before_timer(self, params):
        agent_worker = worker(epoch=2, gr=6, time=1, log_size2=3)
        agent_storage = storage(epoch=2, total=10, log_size2=3)
        sub.update_sum(agent_worker, agent_storage, params)
        assert agent_storage.total == 10
        assert not agent_worker.updated_sum

    def test_lagging_worker_marks_deposit_without_adding(self, params):
        agent_worker = worker(epoch=1, gr=6, time=0, log_size2=3)
        agent_storage = storage(epoch=4, total=10, log_size2=3)
        sub.update_sum(agent_worker, agent_storage, params)
        assert agent_storage.total == 10
        assert agent_worker.updated_sum

    def test_done_worker_never_deposits(self, params):
        agent_worker = worker(
            epoch=2, gr=6, time=100, log_size2=3, protocol_done=True
        )
        agent_storage = storage(epoch=2, total=10, log_size2=3)
        sub.update_sum(agent_worker, agent_storage, params)
        assert agent_storage.total == 10

    def test_two_workers_is_noop(self, params):
        first = worker(epoch=2, gr=6, time=100, log_size2=3)
        second = worker(epoch=2, gr=4, time=100, log_size2=3)
        sub.update_sum(first, second, params)
        assert first.total == 0 and second.total == 0

    def test_argument_order_does_not_matter(self, params):
        log_size2 = 3
        agent_storage = storage(epoch=2, total=1, log_size2=log_size2)
        agent_worker = worker(
            epoch=2, gr=5, time=params.clock_threshold(log_size2), log_size2=log_size2
        )
        sub.update_sum(agent_storage, agent_worker, params)
        assert agent_storage.total == 6


class TestPropagateOutput:
    def test_finished_storage_overwrites_worker_output(self):
        announcer = storage(protocol_done=True, epoch=4, total=16, output=5.0)
        listener = worker(output=3.0)
        sub.propagate_output(announcer, listener)
        assert listener.output == 5.0

    def test_secondhand_copy_only_fills_empty_output(self):
        announcer = worker(output=5.0, protocol_done=True)
        listener = worker(output=3.0)
        sub.propagate_output(announcer, listener)
        assert listener.output == 3.0
        empty = worker()
        sub.propagate_output(announcer, empty)
        assert empty.output == 5.0

    def test_finished_storage_keeps_its_own_output(self):
        first = storage(protocol_done=True, epoch=4, total=16, output=5.0)
        second = storage(protocol_done=True, epoch=4, total=20, output=6.0)
        sub.propagate_output(first, second)
        assert first.output == 5.0 and second.output == 6.0
