"""Tests for the parallel sweep driver, seed spawning and the result cache."""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.core.parameters import ProtocolParameters
from repro.exceptions import SimulationError
from repro.harness.cache import ResultCache, record_from_dict, record_to_dict
from repro.harness.experiment import (
    ExperimentSpec,
    run_array_experiment,
    run_finite_state_experiment,
    run_sequential_experiment,
)
from repro.harness.parallel import (
    KIND_FINITE_STATE,
    TrialSpec,
    build_finite_state_trials,
    build_vector_trials,
    get_workload,
    run_trial,
    run_trials,
)
from repro.harness.results import RunRecord, records_equal
from repro.protocols.epidemic import EpidemicProtocol, epidemic_completion_predicate
from repro.rng import spawn_seed
from repro.staticcheck.contracts import trial_spec_perturbations

FAST = ProtocolParameters.fast_test()


def epidemic_trials(sizes=(64, 128), runs=2, **overrides):
    options = dict(
        population_sizes=list(sizes),
        runs_per_size=runs,
        base_seed=5,
        engine="count",
        max_parallel_time=200.0,
        protocol_factory=EpidemicProtocol,
        predicate=epidemic_completion_predicate,
    )
    options.update(overrides)
    return build_finite_state_trials(**options)


class TestSpawnSeed:
    def test_deterministic(self):
        assert spawn_seed(7, 1, 2) == spawn_seed(7, 1, 2)

    def test_no_collisions_on_large_run_grid(self):
        # The old scheme (base + 1000 i + j) collides at runs_per_size >= 1000.
        seeds = {spawn_seed(0, i, j) for i in range(3) for j in range(1500)}
        assert len(seeds) == 3 * 1500

    def test_old_scheme_collision_pairs_are_distinct(self):
        assert spawn_seed(0, 1, 0) != spawn_seed(0, 0, 1000)
        # Sweeps whose base seeds differ by 1000 no longer overlap either.
        assert spawn_seed(1000, 0, 0) != spawn_seed(0, 1, 0)

    def test_key_length_separates_domains(self):
        assert spawn_seed(3, 1, 2) != spawn_seed(3, 1, 2, 0)

    def test_negative_base_seed_allowed(self):
        assert spawn_seed(-4, 0, 0) != spawn_seed(4, 0, 0)

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            spawn_seed(0, -1)


class TestExperimentSpecValidation:
    def test_empty_sizes_rejected(self):
        with pytest.raises(SimulationError):
            ExperimentSpec(population_sizes=[])

    def test_tiny_population_rejected(self):
        with pytest.raises(SimulationError):
            ExperimentSpec(population_sizes=[64, 1])

    def test_nonpositive_runs_rejected(self):
        with pytest.raises(SimulationError):
            ExperimentSpec(population_sizes=[64], runs_per_size=0)

    def test_nonpositive_budget_factor_rejected(self):
        with pytest.raises(SimulationError):
            ExperimentSpec(population_sizes=[64], time_budget_factor=0.0)

    def test_valid_spec_accepted(self):
        spec = ExperimentSpec(population_sizes=[64], runs_per_size=2, params=FAST)
        assert spec.seed_for(0, 0) != spec.seed_for(0, 1)


class TestTrialSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            TrialSpec(kind="warp", population_size=64, size_index=0, run_index=0)

    def test_small_population_rejected(self):
        with pytest.raises(SimulationError):
            epidemic_trials(sizes=[1])

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError):
            epidemic_trials(engine="warp")

    def test_missing_workload_rejected(self):
        with pytest.raises(SimulationError):
            TrialSpec(
                kind=KIND_FINITE_STATE,
                population_size=64,
                size_index=0,
                run_index=0,
            )

    def test_unknown_workload_name_raises_on_run(self):
        spec = TrialSpec(
            kind=KIND_FINITE_STATE,
            population_size=64,
            size_index=0,
            run_index=0,
            protocol="no-such-workload",
        )
        with pytest.raises(SimulationError):
            run_trial(spec)

    def test_empty_sweep_rejected(self):
        with pytest.raises(SimulationError):
            epidemic_trials(sizes=[])
        with pytest.raises(SimulationError):
            epidemic_trials(runs=0)

    def test_registered_workload_resolves(self):
        workload = get_workload("epidemic")
        assert workload.factory is EpidemicProtocol

    def test_explicit_predicate_overrides_workload(self):
        # A workload name fills in missing callables but never shadows
        # explicitly supplied ones.
        def never_converges(simulator) -> bool:
            return False

        spec = TrialSpec(
            kind=KIND_FINITE_STATE,
            population_size=64,
            size_index=0,
            run_index=0,
            protocol="epidemic",
            predicate=never_converges,
            max_parallel_time=5.0,
        )
        factory, predicate = spec.resolve_workload()
        assert factory is EpidemicProtocol
        assert predicate is never_converges
        assert not run_trial(spec).converged


class TestParallelMatchesSerial:
    def test_record_for_record_identical(self):
        specs = epidemic_trials()
        serial = run_trials(specs, workers=1)
        parallel = run_trials(specs, workers=4)
        assert serial.executed == parallel.executed == len(specs)
        assert len(parallel.records) == len(specs)
        for spec, left, right in zip(specs, serial.records, parallel.records):
            assert left.population_size == spec.population_size
            assert left.seed == spec.seed
            assert records_equal(left, right)

    @pytest.mark.parametrize("engine", ["agent", "count", "batched"])
    def test_runner_parallel_equals_serial_per_engine(self, engine):
        common = dict(
            protocol_factory=EpidemicProtocol,
            predicate=epidemic_completion_predicate,
            population_sizes=[64, 128],
            runs_per_size=2,
            max_parallel_time=200.0,
            engine=engine,
            base_seed=9,
        )
        serial = run_finite_state_experiment(**common, workers=1)
        parallel = run_finite_state_experiment(**common, workers=2)
        assert all(
            records_equal(left, right)
            for left, right in zip(serial.records, parallel.records)
        )

    def test_workload_by_name(self):
        sweep = run_finite_state_experiment(
            "epidemic",
            population_sizes=[64],
            runs_per_size=2,
            max_parallel_time=200.0,
            engine="count",
            workers=2,
        )
        assert len(sweep.records) == 2
        assert all(record.converged for record in sweep.records)

    def test_array_experiment_parallel(self):
        spec = ExperimentSpec(
            population_sizes=[48, 64], runs_per_size=2, params=FAST, base_seed=1
        )
        serial = run_array_experiment(spec)
        parallel = run_array_experiment(spec, workers=3)
        assert all(
            records_equal(left, right)
            for left, right in zip(serial.records, parallel.records)
        )

    def test_sequential_experiment_parallel(self):
        spec = ExperimentSpec(
            population_sizes=[48], runs_per_size=2, params=FAST, base_seed=2
        )
        serial = run_sequential_experiment(spec)
        parallel = run_sequential_experiment(spec, workers=2)
        assert all(
            records_equal(left, right)
            for left, right in zip(serial.records, parallel.records)
        )

    def test_invalid_worker_count(self):
        with pytest.raises(SimulationError):
            run_trials(epidemic_trials(), workers=0)


class TestResultCache:
    def test_round_trip_preserves_records(self, tmp_path):
        specs = epidemic_trials()
        cache = ResultCache(tmp_path)
        first = run_trials(specs, cache=cache)
        assert first.executed == len(specs)
        assert first.from_cache == 0

        reloaded = ResultCache(tmp_path)
        second = run_trials(specs, cache=reloaded)
        assert second.executed == 0
        assert second.from_cache == len(specs)
        assert all(
            records_equal(left, right)
            for left, right in zip(first.records, second.records)
        )

    def test_killed_sweep_resumes_from_cache(self, tmp_path):
        specs = epidemic_trials()
        cache = ResultCache(tmp_path)
        full = run_trials(specs, cache=cache)

        # Simulate a sweep killed after two finished trials: keep only the
        # first two cache lines (plus a torn partial third line).
        lines = cache.path.read_text(encoding="utf-8").splitlines()
        cache.path.write_text(
            "\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2],
            encoding="utf-8",
        )

        resumed_cache = ResultCache(tmp_path)
        assert len(resumed_cache) == 2
        resumed = run_trials(specs, cache=resumed_cache)
        assert resumed.from_cache == 2
        assert resumed.executed == len(specs) - 2
        assert all(
            records_equal(left, right)
            for left, right in zip(full.records, resumed.records)
        )

    def test_parallel_resume_matches_serial(self, tmp_path):
        specs = epidemic_trials()
        cache = ResultCache(tmp_path)
        run_trials(specs[:1], cache=cache)
        outcome = run_trials(specs, workers=4, cache=ResultCache(tmp_path))
        assert outcome.from_cache == 1
        assert outcome.executed == len(specs) - 1
        baseline = run_trials(specs)
        assert all(
            records_equal(left, right)
            for left, right in zip(baseline.records, outcome.records)
        )

    def test_record_serialisation_round_trip(self):
        import math

        record = RunRecord(
            population_size=64,
            seed=12,
            converged=False,
            convergence_time=None,
            max_additive_error=math.nan,
            extra={"engine": "count", "outputs": {"True": 64}},
        )
        clone = record_from_dict(json.loads(json.dumps(record_to_dict(record))))
        assert records_equal(record, clone)

    def test_caches_are_shareable_across_sweeps(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_trials(epidemic_trials(sizes=[64], runs=1), cache=cache)
        other = run_trials(
            epidemic_trials(sizes=[64], runs=1, engine="batched"), cache=cache
        )
        assert other.executed == 1  # different engine -> different key

    def test_clear_empties_store_and_file(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_trials(epidemic_trials(sizes=[64], runs=1), cache=cache)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert not cache.path.exists()


class TestCacheKeys:
    def test_key_is_stable(self):
        spec = epidemic_trials()[0]
        assert spec.cache_key() == spec.cache_key()
        assert spec.cache_key() == epidemic_trials()[0].cache_key()

    @pytest.mark.parametrize(
        "change",
        [
            {"population_size": 256},
            {"size_index": 7},
            {"run_index": 7},
            {"base_seed": 99},
            {"engine": "batched"},
            {"max_parallel_time": 123.0},
            {"check_interval": 32},
            {"protocol": "epidemic", "protocol_factory": None, "predicate": None},
            {"engine_options": (("batch_size", 16),)},
        ],
    )
    def test_key_changes_when_any_field_changes(self, change):
        base = epidemic_trials()[0]
        changed = dataclasses.replace(base, **change)
        assert changed.cache_key() != base.cache_key()

    def test_params_and_kind_affect_key(self):
        spec = ExperimentSpec(
            population_sizes=[48], runs_per_size=1, params=FAST, base_seed=3
        )
        array_trial = spec.trials("array", "array")[0]
        sequential_trial = spec.trials("sequential", "sequential")[0]
        assert array_trial.cache_key() != sequential_trial.cache_key()
        moderate = ExperimentSpec(
            population_sizes=[48],
            runs_per_size=1,
            params=ProtocolParameters.moderate(),
            base_seed=3,
        )
        assert (
            moderate.trials("array", "array")[0].cache_key()
            != array_trial.cache_key()
        )


def _reject_constant(text):
    raise AssertionError(f"non-strict JSON token in cache line: {text}")


class TestNonFiniteSerialisation:
    """Non-finite floats must never reach the persisted JSON (as the invalid
    literals ``Infinity`` / ``NaN``); they are canonicalised to ``null``."""

    def test_record_to_dict_canonicalises_nested_non_finites(self):
        record = RunRecord(
            population_size=8,
            seed=1,
            converged=False,
            convergence_time=None,
            max_additive_error=math.inf,
            extra={
                "a": math.nan,
                "b": [math.inf, 2.0],
                "c": {"d": -math.inf},
                "ok": 3,
            },
        )
        payload = record_to_dict(record)
        assert payload["max_additive_error"] is None
        assert payload["extra"]["a"] is None
        assert payload["extra"]["b"] == [None, 2.0]
        assert payload["extra"]["c"]["d"] is None
        assert payload["extra"]["ok"] == 3
        json.dumps(payload, allow_nan=False)  # must not raise

    def test_non_converged_array_trial_round_trips_strict_json(self, tmp_path):
        spec = TrialSpec(
            kind="array",
            population_size=64,
            size_index=0,
            run_index=0,
            base_seed=1,
            engine="array",
            max_parallel_time=0.5,  # far too small: the trial cannot converge
            params=FAST,
        )
        record = run_trial(spec)
        assert not record.converged
        # No agent reports an estimate: the in-memory error is +infinity and
        # the mean estimate is NaN — exactly the values that used to leak
        # into the cache file as invalid JSON.
        assert math.isinf(record.max_additive_error)
        assert math.isnan(record.extra["final_estimate_mean"])

        cache = ResultCache(tmp_path, name="nonfinite")
        cache.put(spec.cache_key(), record)
        text = cache.path.read_text(encoding="utf-8")
        assert "Infinity" not in text
        assert "NaN" not in text
        for line in text.splitlines():
            json.loads(line, parse_constant=_reject_constant)  # strict parse

        reloaded = ResultCache(tmp_path, name="nonfinite").get(spec.cache_key())
        assert reloaded is not None
        assert reloaded.converged is False
        assert math.isnan(reloaded.max_additive_error)
        assert reloaded.extra["final_estimate_mean"] is None


class TestVectorSweeps:
    def test_vector_trials_cache_and_resume(self, tmp_path):
        specs = build_vector_trials(
            [64], 2, protocol="figure2", params=FAST, base_seed=9
        )
        first = run_trials(specs, cache=ResultCache(tmp_path, name="vec"))
        assert first.executed == 2
        assert all(record.converged for record in first.records)
        second = run_trials(specs, cache=ResultCache(tmp_path, name="vec"))
        assert second.executed == 0
        assert second.from_cache == 2
        for live, cached in zip(first.records, second.records):
            assert records_equal(live, cached)

    def test_vector_parallel_matches_serial(self):
        specs = build_vector_trials(
            [64, 96], 1, protocol="figure2", params=FAST, base_seed=4
        )
        serial = run_trials(specs, workers=1)
        parallel = run_trials(specs, workers=2)
        for one, other in zip(serial.records, parallel.records):
            assert records_equal(one, other)

    def test_vector_spec_requires_workload_name(self):
        with pytest.raises(SimulationError):
            TrialSpec(
                kind="vector",
                population_size=64,
                size_index=0,
                run_index=0,
                params=FAST,
            )

    def test_vector_spec_requires_params(self):
        with pytest.raises(SimulationError):
            TrialSpec(
                kind="vector",
                population_size=64,
                size_index=0,
                run_index=0,
                protocol="figure2",
            )

    def test_unknown_vector_workload_raises_on_run(self):
        spec = TrialSpec(
            kind="vector",
            population_size=64,
            size_index=0,
            run_index=0,
            protocol="no-such-workload",
            params=FAST,
        )
        with pytest.raises(SimulationError):
            run_trial(spec)

    def test_unsupported_engine_options_rejected_at_build_time(self):
        # figure2's kernel takes no options: the sweep must fail up front
        # with a SimulationError, not a TypeError inside a worker mid-sweep.
        with pytest.raises(SimulationError, match="phase_count"):
            build_vector_trials(
                [64], 1, protocol="figure2", params=FAST, phase_count=8
            )

    def test_invalid_option_values_surface_as_protocol_errors(self):
        from repro.exceptions import ProtocolError

        with pytest.raises(ProtocolError):
            build_vector_trials(
                [64],
                1,
                protocol="leader-terminating",
                params=FAST,
                phase_count=2,  # below the clock's minimum of 3
            )

    def test_engine_options_reach_the_kernel_and_the_key(self):
        base = build_vector_trials(
            [64], 1, protocol="leader-terminating", params=FAST, phase_count=8
        )[0]
        other = build_vector_trials(
            [64], 1, protocol="leader-terminating", params=FAST, phase_count=16
        )[0]
        assert base.engine_options == (("phase_count", 8),)
        assert base.cache_key() != other.cache_key()


class TestSchedulerInSpecsAndCacheKeys:
    """TrialSpec.scheduler participates in validation and the cache key."""

    @pytest.mark.parametrize(
        "change",
        [
            {"scheduler": "matching"},
            {"scheduler": "quiescing"},
            {
                "scheduler": "weighted",
                "scheduler_options": (("lazy_rate", 0.5),),
            },
        ],
    )
    def test_key_changes_with_scheduler_fields(self, change):
        base = epidemic_trials(engine="agent")[0]
        changed = dataclasses.replace(base, **change)
        assert changed.cache_key() != base.cache_key()

    def test_scheduler_options_alone_change_the_key(self):
        mild = dataclasses.replace(
            epidemic_trials(engine="agent")[0],
            scheduler="weighted",
            scheduler_options=(("lazy_rate", 0.5),),
        )
        harsh = dataclasses.replace(mild, scheduler_options=(("lazy_rate", 0.1),))
        assert mild.cache_key() != harsh.cache_key()

    def test_cached_uniform_trial_not_served_for_nonuniform_sweep(self, tmp_path):
        """A cache warmed by a uniform-scheduler sweep must execute (not
        replay) every trial of the same sweep under a non-uniform scheduler."""
        uniform = epidemic_trials(sizes=[64], runs=2, engine="agent")
        cache = ResultCache(tmp_path)
        first = run_trials(uniform, cache=cache)
        assert first.executed == 2

        weighted = build_finite_state_trials(
            population_sizes=[64],
            runs_per_size=2,
            base_seed=5,
            engine="agent",
            max_parallel_time=200.0,
            protocol_factory=EpidemicProtocol,
            predicate=epidemic_completion_predicate,
            scheduler="weighted",
            scheduler_options={"lazy_fraction": 0.5, "lazy_rate": 0.2},
        )
        outcome = run_trials(weighted, cache=ResultCache(tmp_path))
        assert outcome.from_cache == 0
        assert outcome.executed == 2
        # And the non-uniform results themselves replay on a second pass.
        replay = run_trials(weighted, cache=ResultCache(tmp_path))
        assert replay.from_cache == 2
        for live, cached in zip(outcome.records, replay.records):
            assert records_equal(live, cached)

    def test_incompatible_scheduler_rejected_at_build_time(self):
        with pytest.raises(SimulationError):
            epidemic_trials(scheduler="weighted")  # count engine cannot run it
        with pytest.raises(SimulationError):
            build_vector_trials(
                [64], 1, protocol="figure2", params=FAST, scheduler="sequential"
            )

    def test_malformed_scheduler_options_rejected_at_build_time(self):
        with pytest.raises(SimulationError):
            epidemic_trials(
                engine="agent",
                scheduler="weighted",
                scheduler_options={"lazy_rate": 0.0},
            )

    def test_vector_trials_accept_round_schedulers(self):
        specs = build_vector_trials(
            [64],
            1,
            protocol="figure2",
            params=FAST,
            scheduler="two-block",
            scheduler_options={"intra": 0.8},
        )
        assert specs[0].scheduler == "two-block"
        record = run_trial(specs[0])
        assert record.converged

    def test_workload_registry_accepts_scheduler_variants(self):
        from repro.harness.parallel import (
            FiniteStateWorkload,
            WORKLOADS,
            register_workload,
        )
        from repro.protocols.epidemic import EpidemicProtocol as Epidemic

        variant = FiniteStateWorkload(
            name="epidemic-two-block",
            factory=Epidemic,
            predicate=epidemic_completion_predicate,
            description="epidemic inside a nearly-partitioned population",
            default_population=1_000,
            default_budget=lambda n: 400.0,
            scheduler="two-block",
            scheduler_options=(("intra", 0.95),),
        )
        register_workload(variant)
        try:
            specs = build_finite_state_trials(
                population_sizes=[64],
                runs_per_size=1,
                engine="agent",
                max_parallel_time=400.0,
                protocol="epidemic-two-block",
            )
            assert specs[0].scheduler == "two-block"
            assert specs[0].scheduler_options == (("intra", 0.95),)
            assert run_trial(specs[0]).converged
        finally:
            del WORKLOADS["epidemic-two-block"]


class TestSchedulerOptionPlumbing:
    """Regressions: workload-baked options and dangling scheduler options."""

    def test_workload_baked_options_survive_empty_cli_options(self):
        # The CLI always passes {} when no --scheduler-opt flag is given; a
        # workload's baked options must still apply.
        from repro.harness.parallel import (
            FiniteStateWorkload,
            WORKLOADS,
            register_workload,
        )

        register_workload(
            FiniteStateWorkload(
                name="epidemic-two-block-opts",
                factory=EpidemicProtocol,
                predicate=epidemic_completion_predicate,
                description="variant with baked scheduler options",
                default_population=1_000,
                default_budget=lambda n: 400.0,
                scheduler="two-block",
                scheduler_options=(("intra", 0.95),),
            )
        )
        try:
            specs = build_finite_state_trials(
                population_sizes=[64],
                runs_per_size=1,
                engine="agent",
                max_parallel_time=400.0,
                protocol="epidemic-two-block-opts",
                scheduler_options={},  # what the CLI passes
            )
            assert specs[0].scheduler == "two-block"
            assert specs[0].scheduler_options == (("intra", 0.95),)
        finally:
            del WORKLOADS["epidemic-two-block-opts"]

    def test_dangling_scheduler_options_rejected(self):
        with pytest.raises(SimulationError, match="without a scheduler"):
            TrialSpec(
                kind=KIND_FINITE_STATE,
                population_size=64,
                size_index=0,
                run_index=0,
                engine="agent",
                protocol="epidemic",
                scheduler_options=(("intra", 0.95),),
            )


class TestCacheKeyBackwardCompatibility:
    def test_default_scheduler_specs_hash_like_pre_scheduler_releases(self):
        """Regression: adding the scheduler fields must not invalidate caches
        written before schedulers became pluggable — a default-scheduler spec
        hashes over exactly the historical field set."""
        import hashlib

        spec = epidemic_trials()[0]
        legacy_payload = {
            "kind": spec.kind,
            "population_size": spec.population_size,
            "size_index": spec.size_index,
            "run_index": spec.run_index,
            "base_seed": spec.base_seed,
            "engine": spec.engine,
            "max_parallel_time": spec.max_parallel_time,
            "check_interval": spec.check_interval,
            "protocol": None,
            "protocol_factory": "repro.protocols.epidemic:EpidemicProtocol",
            "predicate": "repro.protocols.epidemic:epidemic_completion_predicate",
            "engine_options": [],
            "params": None,
            "track_states": False,
        }
        legacy_key = hashlib.sha256(
            json.dumps(legacy_payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
        assert spec.cache_key() == legacy_key


class TestCRNCacheKeys:
    """Key sensitivity of the ``kind="crn"`` spec fields (the CRN travels in
    the spec precisely so that a cached trial is never replayed for a
    modified network — in particular a different rate constant)."""

    @staticmethod
    def _leader_spec(rate=1.0, mode="uniform", engine="count", **overrides):
        from repro.crn import CRN
        from repro.crn.library import single_leader_predicate
        from repro.harness.parallel import KIND_CRN

        options = dict(
            kind=KIND_CRN,
            population_size=60,
            size_index=0,
            run_index=0,
            base_seed=7,
            engine=engine,
            max_parallel_time=500.0,
            crn=CRN.from_spec(
                [f"L + L -> L + F @ {rate}"], name="leader", fractions={"L": 1.0}
            ),
            crn_mode=mode,
            predicate=single_leader_predicate,
        )
        options.update(overrides)
        return TrialSpec(**options)

    def test_key_is_stable_across_identical_specs(self):
        assert self._leader_spec().cache_key() == self._leader_spec().cache_key()

    def test_rate_constant_changes_the_key(self):
        assert (
            self._leader_spec(rate=1.0).cache_key()
            != self._leader_spec(rate=2.0).cache_key()
        )

    def test_lowering_mode_changes_the_key(self):
        assert (
            self._leader_spec(mode="uniform").cache_key()
            != self._leader_spec(mode="thinned").cache_key()
        )

    def test_initial_condition_changes_the_key(self):
        from repro.crn import CRN

        seeded = CRN.from_spec(
            ["L + L -> L + F @ 1.0"],
            name="leader",
            seeds={"F": 1},
            fractions={"L": 1.0},
        )
        assert (
            self._leader_spec().cache_key()
            != self._leader_spec(crn=seeded).cache_key()
        )

    def test_network_structure_changes_the_key(self):
        from repro.crn import CRN

        reversed_products = CRN.from_spec(
            ["L + L -> F + L @ 1.0"], name="leader", fractions={"L": 1.0}
        )
        assert (
            self._leader_spec().cache_key()
            != self._leader_spec(crn=reversed_products).cache_key()
        )

    def test_cached_crn_trial_not_served_for_different_rate(self, tmp_path):
        """End to end through the ResultCache: a cached slow-network trial
        must be re-executed, not replayed, when the rate constant changes."""
        from repro.harness.parallel import build_crn_trials
        from repro.crn import CRN
        from repro.crn.library import single_leader_predicate

        def trials(rate):
            crn = CRN.from_spec(
                [f"L + L -> L + F @ {rate}"], name="leader", fractions={"L": 1.0}
            )
            return build_crn_trials(
                [60],
                2,
                crn,
                engine="count",
                predicate=single_leader_predicate,
                max_chemical_time=500.0,
            )

        cache = ResultCache(tmp_path, name="crn-rates")
        first = run_trials(trials(1.0), cache=cache)
        assert (first.executed, first.from_cache) == (2, 0)
        replay = run_trials(trials(1.0), cache=cache)
        assert (replay.executed, replay.from_cache) == (0, 2)
        changed = run_trials(trials(2.0), cache=cache)
        assert (changed.executed, changed.from_cache) == (2, 0)
        # The single duel reaction normalises to per-interaction probability
        # 1 under either rate constant, so the parallel-time trajectory is
        # seed-identical — but the rate scale doubles, so chemical time
        # halves.  A replayed stale record would report the old value.
        for slow, fast in zip(replay.records, changed.records):
            assert fast.extra["chemical_time"] == pytest.approx(
                slow.extra["chemical_time"] / 2.0
            )

    def test_crn_records_round_trip_through_the_cache_file(self, tmp_path):
        cache = ResultCache(tmp_path, name="crn-roundtrip")
        spec = self._leader_spec()
        record = run_trial(spec)
        cache.put(spec.cache_key(), record)
        reloaded = ResultCache(tmp_path, name="crn-roundtrip")
        cached = reloaded.get(spec.cache_key())
        assert records_equal(cached, record)
        assert cached.extra["counts"] == {"F": 59, "L": 1}


class TestCacheKeySensitivity:
    """Every TrialSpec field must flip the cache key when it changes.

    Parametrized from the staticcheck audit table so the regression test and
    `repro check --only contracts` can never drift apart: a new field added
    to TrialSpec without a perturbation fails the contract check, and a
    perturbation that stops changing the key fails here.
    """

    @pytest.mark.parametrize(
        "perturbation",
        [
            pytest.param(p, id=p.field)
            for p in trial_spec_perturbations()[1]
        ],
    )
    def test_field_participates_in_cache_key(self, perturbation):
        baseline, _ = trial_spec_perturbations()
        kwargs = dict(baseline)
        kwargs.update(perturbation.base)
        base_spec = TrialSpec(**kwargs)
        variant_kwargs = dict(kwargs)
        variant_kwargs[perturbation.field] = perturbation.variant
        variant_spec = TrialSpec(**variant_kwargs)
        assert base_spec.cache_key() != variant_spec.cache_key(), (
            f"field {perturbation.field!r} does not affect the cache key"
        )

    def test_audit_table_covers_every_field(self):
        _, perturbations = trial_spec_perturbations()
        audited = {p.field for p in perturbations}
        declared = {f.name for f in dataclasses.fields(TrialSpec) if f.init}
        assert audited == declared
