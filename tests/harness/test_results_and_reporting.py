"""Tests for result records, summaries and the text renderers."""

from __future__ import annotations

import math

import pytest

from repro.harness.reporting import (
    format_cell,
    format_key_values,
    format_table,
    render_ascii_series,
)
from repro.harness.results import RunRecord, SeriesSummary, SweepResult, summarize


def _record(n: int, seed: int, time: float | None, error: float = 1.0) -> RunRecord:
    return RunRecord(
        population_size=n,
        seed=seed,
        converged=time is not None,
        convergence_time=time,
        max_additive_error=error,
    )


class TestSeriesSummary:
    def test_from_values(self):
        summary = SeriesSummary.from_values([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0

    def test_single_value_has_zero_stdev(self):
        assert SeriesSummary.from_values([5.0]).stdev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SeriesSummary.from_values([])

    def test_summarize_wrapper(self):
        assert summarize([2.0, 4.0]).mean == pytest.approx(3.0)


class TestSweepResult:
    def _sweep(self) -> SweepResult:
        sweep = SweepResult(name="demo")
        sweep.add(_record(100, 0, 10.0, error=1.0))
        sweep.add(_record(100, 1, 12.0, error=2.0))
        sweep.add(_record(100, 2, None, error=math.nan))
        sweep.add(_record(200, 0, 20.0, error=0.5))
        return sweep

    def test_population_sizes_sorted(self):
        assert self._sweep().population_sizes() == [100, 200]

    def test_convergence_times_exclude_failures(self):
        assert self._sweep().convergence_times(100) == [10.0, 12.0]

    def test_summary_by_size(self):
        summaries = self._sweep().summary_by_size()
        assert summaries[100].mean == pytest.approx(11.0)
        assert summaries[200].count == 1

    def test_error_summary_skips_nan(self):
        errors = self._sweep().error_summary_by_size()
        assert errors[100].maximum == 2.0

    def test_convergence_rate(self):
        sweep = self._sweep()
        assert sweep.convergence_rate(100) == pytest.approx(2 / 3)
        assert sweep.convergence_rate(999) == 0.0


class TestReporting:
    def test_format_cell_variants(self):
        assert format_cell(None) == "-"
        assert format_cell(float("nan")) == "nan"
        assert format_cell(0.0) == "0"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(123456.0) == "1.23e+05"
        assert format_cell("text") == "text"

    def test_format_table_alignment_and_content(self):
        table = format_table(["n", "time"], [[100, 1.5], [10_000, 22.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "n" in lines[0] and "time" in lines[0]
        assert "10000" in lines[3]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_render_ascii_series_shape(self):
        text = render_ascii_series(
            [100, 1_000, 10_000], [10.0, 20.0, 30.0], width=30, height=6, log_x=True
        )
        lines = text.splitlines()
        assert len(lines) == 6 + 3  # header + grid + axis line + label line
        assert any("*" in line for line in lines)
        assert "log scale" in lines[-1]

    def test_render_ascii_series_validation(self):
        with pytest.raises(ValueError):
            render_ascii_series([], [], width=30, height=6)
        with pytest.raises(ValueError):
            render_ascii_series([1], [1.0], width=5, height=2)

    def test_format_key_values(self):
        text = format_key_values({"alpha": 1.5, "beta": None})
        assert "alpha" in text and "1.500" in text and "-" in text
        assert format_key_values({}) == "(empty)"
