"""Tests for the experiment runners, the Figure 2 builder and the tables."""

from __future__ import annotations

import math

import pytest

from repro.core.parameters import ProtocolParameters
from repro.harness.experiment import (
    ExperimentSpec,
    run_array_experiment,
    run_finite_state_experiment,
    run_sequential_experiment,
)
from repro.protocols.epidemic import EpidemicProtocol, epidemic_completion_predicate
from repro.harness.figures import figure2_from_sweep, reproduce_figure2
from repro.harness.tables import (
    accuracy_table,
    baseline_comparison_table,
    state_complexity_table,
)


FAST = ProtocolParameters.fast_test()


class TestExperimentSpec:
    def test_seed_derivation_is_distinct(self):
        spec = ExperimentSpec(population_sizes=[16, 32], runs_per_size=3, base_seed=5)
        seeds = {
            spec.seed_for(size_index, run_index)
            for size_index in range(2)
            for run_index in range(3)
        }
        assert len(seeds) == 6

    def test_budget_grows_with_population(self):
        spec = ExperimentSpec(population_sizes=[16], params=FAST)
        assert spec.budget_for(4_096) > spec.budget_for(64)


class TestRunners:
    def test_array_experiment_produces_records(self):
        spec = ExperimentSpec(
            population_sizes=[64, 128], runs_per_size=2, params=FAST, base_seed=1
        )
        sweep = run_array_experiment(spec)
        assert len(sweep.records) == 4
        assert sweep.population_sizes() == [64, 128]
        assert all(record.converged for record in sweep.records)
        assert all(record.extra["engine"] == "array" for record in sweep.records)

    def test_sequential_experiment_produces_records(self):
        spec = ExperimentSpec(
            population_sizes=[48], runs_per_size=2, params=FAST, base_seed=2
        )
        sweep = run_sequential_experiment(spec)
        assert len(sweep.records) == 2
        assert all(record.converged for record in sweep.records)
        assert all(record.max_additive_error < 5.7 for record in sweep.records)


class TestFiniteStateExperiment:
    @pytest.mark.parametrize("engine", ["agent", "count", "batched"])
    def test_runs_on_every_engine(self, engine):
        sweep = run_finite_state_experiment(
            protocol_factory=EpidemicProtocol,
            predicate=epidemic_completion_predicate,
            population_sizes=[64, 128],
            runs_per_size=2,
            max_parallel_time=200.0,
            engine=engine,
            base_seed=9,
        )
        assert len(sweep.records) == 4
        assert all(record.converged for record in sweep.records)
        assert all(record.extra["engine"] == engine for record in sweep.records)
        assert all(record.extra["outputs"] == {"True": record.population_size}
                   for record in sweep.records)

    def test_engine_options_forwarded_to_batched(self):
        sweep = run_finite_state_experiment(
            protocol_factory=EpidemicProtocol,
            predicate=epidemic_completion_predicate,
            population_sizes=[100],
            runs_per_size=1,
            engine="batched",
            batch_size=5,
        )
        assert sweep.records[0].converged

    def test_unknown_engine_raises(self):
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError):
            run_finite_state_experiment(
                protocol_factory=EpidemicProtocol,
                predicate=epidemic_completion_predicate,
                population_sizes=[32],
                engine="warp",
            )


class TestFigure2:
    @pytest.fixture(scope="class")
    def figure(self):
        return reproduce_figure2(
            population_sizes=[64, 128, 256],
            runs_per_size=2,
            params=FAST,
            base_seed=3,
        )

    def test_all_runs_converged(self, figure):
        assert figure.non_converged_runs == 0
        assert len(figure.points) == 6

    def test_sizes_and_mean_times(self, figure):
        assert figure.sizes() == [64, 128, 256]
        means = figure.mean_times()
        assert len(means) == 3
        assert means[-1] > means[0]  # convergence time grows with n

    def test_errors_bounded(self, figure):
        assert figure.max_error_observed() < 5.0

    def test_table_and_plot_render(self, figure):
        assert "mean time" in figure.table()
        assert "*" in figure.ascii_plot()

    def test_csv_export(self, figure):
        csv = figure.to_csv()
        lines = csv.splitlines()
        assert lines[0].startswith("population_size,")
        assert len(lines) == 1 + len(figure.points)

    def test_growth_exponent_positive(self, figure):
        slope = figure.growth_exponent()
        assert slope is not None
        assert slope > 0

    def test_figure2_from_sweep_counts_failures(self):
        spec = ExperimentSpec(population_sizes=[64], runs_per_size=1, params=FAST)
        sweep = run_array_experiment(spec)
        sweep.records[0] = type(sweep.records[0])(
            population_size=64,
            seed=0,
            converged=False,
            convergence_time=None,
        )
        result = figure2_from_sweep(sweep, FAST)
        assert result.non_converged_runs == 1

    def test_non_converged_runs_reported_per_size_not_dropped(self):
        """Regression: non-converged runs used to silently shrink the table's
        ``runs`` column below the requested runs_per_size."""
        spec = ExperimentSpec(population_sizes=[64, 96], runs_per_size=2, params=FAST)
        sweep = run_array_experiment(spec)
        # Mark one of the two n=96 runs as budget-exhausted.
        failed_index = next(
            index
            for index, record in enumerate(sweep.records)
            if record.population_size == 96
        )
        sweep.records[failed_index] = type(sweep.records[failed_index])(
            population_size=96,
            seed=sweep.records[failed_index].seed,
            converged=False,
            convergence_time=None,
            max_additive_error=float("inf"),
        )
        result = figure2_from_sweep(sweep, FAST)
        assert result.non_converged_by_size() == {64: 0, 96: 1}
        assert len(result.non_converged_points) == 1
        assert result.sizes() == [64, 96]
        table = result.table()
        assert "non-conv" in table
        csv_lines = result.to_csv().splitlines()
        assert csv_lines[0] == (
            "population_size,seed,converged,convergence_time,max_additive_error"
        )
        # Every requested run appears in the export, converged or not.
        assert len(csv_lines) == 1 + 4
        failed_rows = [line for line in csv_lines[1:] if ",False," in line]
        assert len(failed_rows) == 1
        assert failed_rows[0].startswith("96,")
        # The inf error is exported as an empty cell, not a bare "inf".
        assert failed_rows[0].endswith(",")

    def test_all_runs_failed_at_a_size_keeps_the_size_visible(self):
        spec = ExperimentSpec(population_sizes=[64], runs_per_size=1, params=FAST)
        sweep = run_array_experiment(spec)
        sweep.records[0] = type(sweep.records[0])(
            population_size=64,
            seed=0,
            converged=False,
            convergence_time=None,
        )
        result = figure2_from_sweep(sweep, FAST)
        assert result.sizes() == [64]
        assert math.isnan(result.mean_times()[0])
        assert "non-conv" in result.table()
        assert "no converged runs" in result.ascii_plot()

    def test_growth_exponent_skips_sizes_with_no_converged_runs(self):
        spec = ExperimentSpec(population_sizes=[64, 96], runs_per_size=1, params=FAST)
        sweep = run_array_experiment(spec)
        failed_index = next(
            index
            for index, record in enumerate(sweep.records)
            if record.population_size == 96
        )
        sweep.records[failed_index] = type(sweep.records[failed_index])(
            population_size=96,
            seed=sweep.records[failed_index].seed,
            converged=False,
            convergence_time=None,
        )
        result = figure2_from_sweep(sweep, FAST)
        # Only one size has converged runs: no slope, but no crash either.
        assert result.growth_exponent() is None


class TestTables:
    def test_accuracy_table(self):
        table = accuracy_table([64, 128], runs_per_size=1, params=FAST, base_seed=4)
        assert table.headers[0] == "n"
        assert len(table.rows) == 2
        assert all(row[3] < 5.7 for row in table.rows)  # max |err| below the claim
        assert "claimed bound" in table.text

    def test_state_complexity_table(self):
        table = state_complexity_table([64, 128], params=FAST, base_seed=5)
        assert len(table.rows) == 2
        # The realised state bound should be monotone-ish and positive.
        assert all(row[5] > 0 for row in table.rows)

    def test_baseline_comparison_table(self):
        table = baseline_comparison_table(
            [64], runs_per_size=1, params=FAST, base_seed=6, baseline_budget=100.0
        )
        assert len(table.rows) == 1
        row = table.rows[0]
        assert row[0] == 64
        assert row[4] == 5.7


class TestTimingBreakdown:
    """Satellite of the telemetry PR: per-phase time in tables and CSV."""

    def _points(self):
        from repro.harness.figures import Figure2Point

        timing = {
            "scheduler.draw_round": 0.4,
            "engine.apply_round": 0.3,
            "engine.convergence_check": 0.1,
            "total": 0.9,
        }
        return [
            Figure2Point(64, 1, 5.0, 0.5, timing=timing),
            Figure2Point(64, 2, 6.0, 0.4),  # telemetry-less run in same sweep
        ]

    def test_phase_breakdown_maps_recorder_timers(self):
        from repro.harness.reporting import mean_phase_breakdown, phase_breakdown

        assert phase_breakdown(
            {"scheduler.draw_round": 0.4, "engine.convergence_check": 0.1, "total": 1.0}
        ) == {"draw": 0.4, "check": 0.1, "total": 1.0}
        # Count engines report one fused engine.step: it feeds "apply".
        assert phase_breakdown({"engine.step": 0.7, "total": 0.8}) == {
            "apply": 0.7,
            "total": 0.8,
        }
        assert phase_breakdown(None) == {}
        means = mean_phase_breakdown(
            [{"engine.step": 0.6, "total": 1.0}, {"engine.step": 0.2, "total": 2.0}]
        )
        assert means == {"apply": 0.4, "total": 1.5}

    def test_csv_without_telemetry_keeps_the_historical_header(self):
        from repro.harness.figures import Figure2Point, Figure2Result

        result = Figure2Result(
            points=[Figure2Point(64, 2, 6.0, 0.4)],
            summaries={},
            params=FAST,
            non_converged_runs=0,
        )
        header = result.to_csv().splitlines()[0]
        assert header == (
            "population_size,seed,converged,convergence_time,max_additive_error"
        )

    def test_csv_with_telemetry_appends_phase_columns(self):
        from repro.harness.figures import Figure2Result

        result = Figure2Result(
            points=self._points(), summaries={}, params=FAST, non_converged_runs=0
        )
        lines = result.to_csv().splitlines()
        assert lines[0].endswith(
            ",draw_seconds,apply_seconds,check_seconds,total_seconds"
        )
        assert lines[1].endswith(",0.400000000,0.300000000,0.100000000,0.900000000")
        assert lines[2].endswith(",0.4,,,,")  # no telemetry: empty phase cells

    def test_table_with_telemetry_gains_mean_phase_columns(self):
        from repro.harness.figures import Figure2Result
        from repro.harness.results import SeriesSummary

        summary = SeriesSummary.from_values([5.0, 6.0])
        result = Figure2Result(
            points=self._points(),
            summaries={64: summary},
            params=FAST,
            non_converged_runs=0,
        )
        table = result.table()
        assert "mean draw s" in table
        assert "mean check s" in table

    def test_figure2_from_sweep_extracts_manifest_timing(self):
        from repro.harness.figures import figure2_from_sweep
        from repro.harness.results import RunRecord, SweepResult

        record = RunRecord(
            population_size=64,
            seed=3,
            converged=True,
            convergence_time=4.0,
            max_additive_error=0.3,
            extra={"telemetry": {"timing": {"engine.step": 0.5, "total": 0.6}}},
        )
        sweep = SweepResult(name="t", records=[record])
        result = figure2_from_sweep(sweep, FAST)
        assert result.points[0].timing == {"engine.step": 0.5, "total": 0.6}
        assert result.timing_phases() == ["apply", "total"]
