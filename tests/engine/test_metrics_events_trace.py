"""Tests for metrics, event logging and execution traces."""

from __future__ import annotations

import pytest

from repro.engine.configuration import Configuration
from repro.engine.events import EventLog, InteractionEvent, PeriodicProbe
from repro.engine.metrics import SimulationMetrics, StateUsageTracker
from repro.engine.simulator import Simulation
from repro.engine.trace import ExecutionTrace, TraceRecorder
from repro.protocols.epidemic import EpidemicProtocol, EpidemicState


class TestStateUsageTracker:
    def test_counts_distinct_signatures(self):
        tracker = StateUsageTracker()
        tracker.observe("a")
        tracker.observe("a")
        tracker.observe("b")
        tracker.observe_many(["c", "b"])
        assert tracker.distinct_states == 3


class TestSimulationMetrics:
    def test_records_interactions_and_nulls(self):
        metrics = SimulationMetrics(population_size=10)
        metrics.record_interaction(changed=True)
        metrics.record_interaction(changed=False)
        metrics.record_interaction(changed=False)
        assert metrics.interactions == 3
        assert metrics.null_interactions == 2
        assert metrics.parallel_time == pytest.approx(0.3)

    def test_convergence_time_property(self):
        metrics = SimulationMetrics(population_size=10)
        assert metrics.convergence_time is None
        metrics.convergence_interaction = 25
        assert metrics.convergence_time == pytest.approx(2.5)

    def test_summary_is_json_friendly(self):
        metrics = SimulationMetrics(population_size=4)
        metrics.record_interaction(changed=True)
        summary = metrics.summary()
        assert summary["population_size"] == 4
        assert summary["interactions"] == 1
        assert summary["distinct_states"] is None


class TestEvents:
    def test_interaction_event_changed_flag(self):
        event = InteractionEvent(
            index=1,
            receiver=0,
            sender=1,
            receiver_before="a",
            sender_before="b",
            receiver_after="a",
            sender_after="b",
        )
        assert not event.changed
        changed = InteractionEvent(
            index=2,
            receiver=0,
            sender=1,
            receiver_before="a",
            sender_before="b",
            receiver_after="c",
            sender_after="b",
        )
        assert changed.changed

    def test_event_log_capacity(self):
        log = EventLog(capacity=2)
        for index in range(5):
            log.append(
                InteractionEvent(
                    index=index,
                    receiver=0,
                    sender=1,
                    receiver_before="a",
                    sender_before="b",
                    receiver_after="a",
                    sender_after="b",
                )
            )
        assert len(log) == 2
        assert [event.index for event in log] == [3, 4]

    def test_periodic_probe_interval_resolution(self):
        probe = PeriodicProbe(callback=lambda sim: None)
        assert probe.resolve_interval(population_size=42) == 42
        explicit = PeriodicProbe(callback=lambda sim: None, interval=7)
        assert explicit.resolve_interval(population_size=42) == 7

    def test_periodic_probe_rejects_bad_interval(self):
        probe = PeriodicProbe(callback=lambda sim: None, interval=0)
        with pytest.raises(ValueError):
            probe.resolve_interval(10)

    def test_simulation_event_log(self):
        simulation = Simulation(
            EpidemicProtocol().as_agent_protocol(), 6, seed=1, event_log_capacity=100
        )
        simulation.run_interactions(20)
        assert simulation.event_log is not None
        assert len(simulation.event_log) == 20
        assert all(isinstance(event, InteractionEvent) for event in simulation.event_log)
        assert len(simulation.event_log.changed_events()) <= 20


class TestExecutionTrace:
    def _sample_trace(self) -> ExecutionTrace:
        trace = ExecutionTrace(population_size=10)
        trace.append(0, Configuration({"a": 10}))
        trace.append(10, Configuration({"a": 7, "b": 3}))
        trace.append(20, Configuration({"a": 2, "b": 8}))
        return trace

    def test_counts_and_times(self):
        trace = self._sample_trace()
        assert trace.times() == [0.0, 1.0, 2.0]
        assert trace.counts_of("b") == [0, 3, 8]
        assert trace.states_seen() == frozenset({"a", "b"})

    def test_first_time_reaching(self):
        trace = self._sample_trace()
        assert trace.first_time_reaching("b", 3) == pytest.approx(1.0)
        assert trace.first_time_reaching("b", 9) is None

    def test_final_configuration(self):
        trace = self._sample_trace()
        assert trace.final_configuration().count("b") == 8
        with pytest.raises(ValueError):
            ExecutionTrace(population_size=5).final_configuration()

    def test_trace_recorder_probe_with_simulation(self):
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 20, seed=2)
        recorder = TraceRecorder.for_simulation(simulation)
        simulation.add_probe(recorder, interval=20)
        simulation.run_interactions(100)
        assert len(recorder.trace) == 6  # initial point + 5 probe firings
        infected = recorder.trace.counts_of(EpidemicState.INFECTED)
        assert infected[0] == 1
        assert all(later >= earlier for earlier, later in zip(infected, infected[1:]))
