"""Tests for repro.engine.configuration."""

from __future__ import annotations

import pytest

from repro.engine.configuration import Configuration
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_from_states(self):
        config = Configuration.from_states(["a", "b", "a", "a"])
        assert config.count("a") == 3
        assert config.count("b") == 1
        assert config.size == 4

    def test_uniform(self):
        config = Configuration.uniform("x", 10)
        assert config.count("x") == 10
        assert config.states_present() == frozenset({"x"})

    def test_uniform_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            Configuration.uniform("x", 0)

    def test_zero_counts_dropped(self):
        config = Configuration({"a": 3, "b": 0})
        assert "b" not in config.states_present()
        assert len(config) == 1

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration({"a": -1})

    def test_non_integer_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration({"a": 1.5})


class TestDensity:
    def test_all_identical_is_one_dense(self):
        config = Configuration.uniform("x", 100)
        assert config.is_alpha_dense(1.0)
        assert config.density_floor() == 1.0

    def test_leader_configuration_is_not_dense(self):
        config = Configuration({"leader": 1, "follower": 99})
        assert not config.is_alpha_dense(0.1)
        assert config.density_floor() == pytest.approx(0.01)

    def test_balanced_split_is_half_dense(self):
        config = Configuration({"a": 50, "b": 50})
        assert config.is_alpha_dense(0.5)
        assert not config.is_alpha_dense(0.51)

    def test_invalid_alpha_rejected(self):
        config = Configuration.uniform("x", 10)
        with pytest.raises(ConfigurationError):
            config.is_alpha_dense(0.0)
        with pytest.raises(ConfigurationError):
            config.is_alpha_dense(1.5)

    def test_density_floor_of_empty_configuration(self):
        with pytest.raises(ConfigurationError):
            Configuration({}).density_floor()


class TestOrderingAndArithmetic:
    def test_pointwise_le(self):
        small = Configuration({"a": 2, "b": 1})
        large = Configuration({"a": 5, "b": 1, "c": 3})
        assert small <= large
        assert not (large <= small)

    def test_addition(self):
        total = Configuration({"a": 2}) + Configuration({"a": 1, "b": 4})
        assert total.count("a") == 3
        assert total.count("b") == 4

    def test_scale(self):
        scaled = Configuration({"a": 2, "b": 3}).scale(4)
        assert scaled.count("a") == 8
        assert scaled.count("b") == 12
        assert scaled.size == 20

    def test_scale_rejects_nonpositive_factor(self):
        with pytest.raises(ConfigurationError):
            Configuration({"a": 1}).scale(0)

    def test_scaling_preserves_density(self):
        config = Configuration({"a": 3, "b": 7})
        assert config.density_floor() == pytest.approx(
            config.scale(13).density_floor()
        )


class TestTransitions:
    def test_apply_transition_moves_counts(self):
        config = Configuration({"a": 2, "b": 1})
        updated = config.apply_transition("a", "b", "c", "c")
        assert updated.count("a") == 1
        assert updated.count("b") == 0
        assert updated.count("c") == 2
        assert updated.size == config.size

    def test_apply_transition_same_state_needs_two_copies(self):
        config = Configuration({"a": 1})
        with pytest.raises(ConfigurationError):
            config.apply_transition("a", "a", "b", "b")

    def test_apply_transition_missing_state(self):
        config = Configuration({"a": 1, "b": 1})
        with pytest.raises(ConfigurationError):
            config.apply_transition("a", "c", "a", "a")

    def test_original_configuration_unchanged(self):
        config = Configuration({"a": 2})
        config.apply_transition("a", "a", "b", "b")
        assert config.count("a") == 2
