"""Tests for the batched configuration-level engine."""

from __future__ import annotations

import math

import pytest

from repro.engine.batched_simulator import BatchedCountSimulator
from repro.engine.configuration import Configuration
from repro.exceptions import ConvergenceError, SimulationError
from repro.protocols.base import FunctionalFiniteStateProtocol
from repro.protocols.epidemic import (
    EpidemicProtocol,
    EpidemicState,
    epidemic_completion_predicate,
)
from repro.protocols.leader_election import (
    FiniteStatePairwiseElimination,
    unique_leader_predicate,
)
from repro.protocols.majority import (
    ApproximateMajorityProtocol,
    majority_consensus_predicate,
)


class TestConstruction:
    def test_initial_counts_from_protocol(self):
        simulator = BatchedCountSimulator(EpidemicProtocol(), 100, seed=1)
        assert simulator.count(EpidemicState.INFECTED) == 1
        assert simulator.count(EpidemicState.SUSCEPTIBLE) == 99

    def test_explicit_initial_configuration(self):
        configuration = Configuration(
            {EpidemicState.INFECTED: 10, EpidemicState.SUSCEPTIBLE: 90}
        )
        simulator = BatchedCountSimulator(
            EpidemicProtocol(), 100, seed=1, initial_configuration=configuration
        )
        assert simulator.count(EpidemicState.INFECTED) == 10

    def test_initial_configuration_size_checked(self):
        configuration = Configuration({EpidemicState.INFECTED: 5})
        with pytest.raises(SimulationError):
            BatchedCountSimulator(
                EpidemicProtocol(), 100, initial_configuration=configuration
            )

    def test_initial_configuration_state_set_checked(self):
        configuration = Configuration({EpidemicState.INFECTED: 50, "ghost": 50})
        with pytest.raises(SimulationError, match="outside"):
            BatchedCountSimulator(
                EpidemicProtocol(), 100, initial_configuration=configuration
            )

    def test_rejects_tiny_population(self):
        with pytest.raises(SimulationError):
            BatchedCountSimulator(EpidemicProtocol(), 1)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(SimulationError):
            BatchedCountSimulator(EpidemicProtocol(), 100, batch_size=0)

    def test_default_batch_size_is_sqrt_n(self):
        simulator = BatchedCountSimulator(EpidemicProtocol(), 10_000, seed=1)
        assert simulator.batch_size == 100

    def test_unknown_state_counts_as_zero(self):
        simulator = BatchedCountSimulator(EpidemicProtocol(), 100, seed=1)
        assert simulator.count("never-a-state") == 0


class TestDynamics:
    def test_population_size_is_conserved(self):
        simulator = BatchedCountSimulator(ApproximateMajorityProtocol(), 5_000, seed=2)
        simulator.run_parallel_time(5)
        assert simulator.configuration().size == 5_000

    def test_interaction_accounting_is_exact(self):
        simulator = BatchedCountSimulator(EpidemicProtocol(), 1_000, seed=3)
        simulator.run_interactions(12_345)
        assert simulator.interactions == 12_345
        assert simulator.parallel_time == pytest.approx(12.345)

    def test_negative_interactions_rejected(self):
        simulator = BatchedCountSimulator(EpidemicProtocol(), 100, seed=3)
        with pytest.raises(SimulationError):
            simulator.run_interactions(-1)

    def test_epidemic_completes_in_logarithmic_time(self):
        simulator = BatchedCountSimulator(EpidemicProtocol(), 50_000, seed=4)
        elapsed = simulator.run_until(
            epidemic_completion_predicate, max_parallel_time=50 * math.log(50_000)
        )
        assert simulator.count(EpidemicState.SUSCEPTIBLE) == 0
        assert elapsed < 24 * math.log(50_000)

    def test_majority_reaches_consensus_on_initial_majority(self):
        simulator = BatchedCountSimulator(
            ApproximateMajorityProtocol(x_fraction=0.8), 20_000, seed=5
        )
        simulator.run_until(majority_consensus_predicate, max_parallel_time=300)
        assert simulator.count(ApproximateMajorityProtocol.OPINION_Y) == 0

    def test_leader_election_terminates_with_single_leader(self):
        # Small n so the Theta(n)-time tail stays cheap; exercises the
        # small-count exact fallback in the endgame.
        simulator = BatchedCountSimulator(FiniteStatePairwiseElimination(), 300, seed=6)
        simulator.run_until(unique_leader_predicate, max_parallel_time=3_000)
        assert simulator.count(FiniteStatePairwiseElimination.LEADER) == 1
        assert simulator.fallback_batches + simulator.batched_batches > 0

    def test_run_until_budget_exhaustion_raises(self):
        simulator = BatchedCountSimulator(EpidemicProtocol(), 10_000, seed=7)
        with pytest.raises(ConvergenceError):
            simulator.run_until(
                lambda sim: sim.count(EpidemicState.INFECTED) < 0,
                max_parallel_time=1.0,
            )

    def test_reproducibility(self):
        runs = []
        for _ in range(2):
            simulator = BatchedCountSimulator(ApproximateMajorityProtocol(), 2_000, seed=42)
            simulator.run_parallel_time(5)
            runs.append(simulator.configuration())
        assert runs[0] == runs[1]

    def test_states_seen_accumulates(self):
        simulator = BatchedCountSimulator(
            ApproximateMajorityProtocol(x_fraction=0.5), 2_000, seed=8
        )
        simulator.run_parallel_time(3)
        assert ApproximateMajorityProtocol.BLANK in simulator.states_seen()

    def test_outputs_histogram_sums_to_population(self):
        simulator = BatchedCountSimulator(ApproximateMajorityProtocol(0.5), 3_000, seed=9)
        simulator.run_parallel_time(2)
        assert sum(simulator.outputs().values()) == 3_000


class TestSmallCountFallback:
    def test_tiny_population_runs_exactly(self):
        simulator = BatchedCountSimulator(
            FiniteStatePairwiseElimination(), 6, seed=10, small_count_threshold=8
        )
        simulator.run_interactions(500)
        # The leader state stays present (count 1) and is the only reactive
        # state, so every batch at this tiny n takes the exact path; the two
        # counters must account for every batch either way.
        assert simulator.fallback_batches > 0
        total_batches = -(-500 // simulator.batch_size)
        assert simulator.fallback_batches + simulator.batched_batches == total_batches
        assert simulator.configuration().size == 6
        assert simulator.count(FiniteStatePairwiseElimination.LEADER) == 1

    def test_fallback_can_be_disabled(self):
        simulator = BatchedCountSimulator(
            EpidemicProtocol(), 1_000, seed=11, small_count_threshold=0
        )
        simulator.run_parallel_time(30)
        assert simulator.count(EpidemicState.SUSCEPTIBLE) == 0

    def test_consumption_guard_never_goes_negative(self):
        # An aggressive protocol where every pair reacts: a,b -> b,a swaps
        # plus b,b -> a,a; tiny counts stress the guard.
        protocol = FunctionalFiniteStateProtocol(
            state_set=("a", "b"),
            transition_map={
                ("a", "a"): [("a", "b", 1.0)],
                ("b", "b"): [("a", "a", 1.0)],
            },
            initial=lambda agent_id: "a" if agent_id % 2 else "b",
        )
        simulator = BatchedCountSimulator(
            protocol, 40, seed=12, batch_size=30, small_count_threshold=0
        )
        for _ in range(50):
            simulator.run_interactions(30)
            configuration = simulator.configuration()
            assert configuration.size == 40
            assert all(count >= 0 for _, count in configuration.items())


class TestTracing:
    def test_run_with_trace_exact_sample_count(self):
        simulator = BatchedCountSimulator(EpidemicProtocol(), 500, seed=13)
        trace = simulator.run_with_trace(total_parallel_time=5, samples=7)
        assert len(trace) == 8  # initial point + exactly 7 checkpoints
        assert trace[0].parallel_time == 0.0
        assert trace[-1].interaction == 2_500
        assert all(point.configuration.size == 500 for point in trace)

    def test_trace_counts_are_monotone_for_epidemic(self):
        simulator = BatchedCountSimulator(EpidemicProtocol(), 500, seed=14)
        trace = simulator.run_with_trace(total_parallel_time=10, samples=20)
        infected = [point.configuration.count(EpidemicState.INFECTED) for point in trace]
        assert all(later >= earlier for earlier, later in zip(infected, infected[1:]))

    def test_run_with_trace_rejects_bad_samples(self):
        simulator = BatchedCountSimulator(EpidemicProtocol(), 100, seed=15)
        with pytest.raises(SimulationError):
            simulator.run_with_trace(total_parallel_time=1, samples=0)


class TestBatchedSchedulerPolicies:
    def test_per_agent_scheduler_rejected(self):
        from repro.protocols.epidemic import EpidemicProtocol

        with pytest.raises(SimulationError):
            BatchedCountSimulator(EpidemicProtocol(), 1000, scheduler="two-block")

    def test_zero_rate_state_is_frozen_in_batches_and_fallback(self):
        from repro.engine.scheduler import SchedulerSpec
        from repro.protocols.epidemic import EpidemicProtocol

        spec = SchedulerSpec("state-weighted", (("rates", (("I", 0.0),)),))
        # Large n exercises the multinomial path, tiny batch the fallback.
        simulator = BatchedCountSimulator(
            EpidemicProtocol(), 2_000, seed=3, scheduler=spec
        )
        simulator.run_parallel_time(20)
        assert simulator.count("I") == 1

    def test_state_weighted_slows_the_epidemic(self):
        from repro.engine.scheduler import SchedulerSpec
        from repro.protocols.epidemic import EpidemicProtocol
        from repro.protocols.epidemic import epidemic_completion_predicate

        spec = SchedulerSpec("state-weighted", (("rates", (("I", 0.25),)),))
        times = {}
        for label, scheduler in (("uniform", None), ("weighted", spec)):
            samples = []
            for run_index in range(5):
                simulator = BatchedCountSimulator(
                    EpidemicProtocol(), 1_000, seed=100 + run_index,
                    scheduler=scheduler,
                )
                samples.append(
                    simulator.run_until(
                        epidemic_completion_predicate, max_parallel_time=500
                    )
                )
            times[label] = sum(samples) / len(samples)
        assert times["weighted"] > 1.5 * times["uniform"], times
