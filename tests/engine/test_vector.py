"""Tests for the vector engine: fields registry, generic kernel, selection."""

from __future__ import annotations

import math

import pytest

from repro.engine.configuration import Configuration
from repro.engine.scheduler import SchedulerSpec
from repro.engine.selection import ENGINE_NAMES, build_engine
from repro.engine.vector import (
    FiniteStateVectorProtocol,
    VectorFields,
    VectorFiniteStateSimulator,
    VectorSimulator,
)
from repro.exceptions import ConvergenceError, SimulationError
from repro.protocols.base import FiniteStateProtocol, RandomizedTransition
from repro.protocols.epidemic import (
    EpidemicProtocol,
    EpidemicState,
    epidemic_completion_predicate,
)
from repro.protocols.majority import ApproximateMajorityProtocol


class CoinFlipProtocol(FiniteStateProtocol):
    """Undecided pairs flip a fair coin: (U, U) -> (H, H) or (T, T)."""

    def states(self):
        return ("U", "H", "T")

    def initial_state(self, agent_id):
        return "U"

    def transitions(self, receiver, sender):
        if receiver == "U" and sender == "U":
            return (
                RandomizedTransition("H", "H", probability=0.5),
                RandomizedTransition("T", "T", probability=0.5),
            )
        return ()

    def output(self, state):
        return state

    def describe(self):
        return "CoinFlip"


class TestVectorFields:
    def test_rejects_tiny_population(self):
        with pytest.raises(SimulationError):
            VectorFields(1)

    def test_add_and_lookup(self):
        fields = VectorFields(10)
        array = fields.add("x", int, fill=3)
        assert (fields["x"] == 3).all()
        assert array is fields["x"]
        assert "x" in fields
        assert fields.names() == ("x",)

    def test_duplicate_field_rejected(self):
        fields = VectorFields(4)
        fields.add("x", int)
        with pytest.raises(SimulationError):
            fields.add("x", int)

    def test_tracking_unregistered_field_rejected(self):
        fields = VectorFields(4)
        with pytest.raises(SimulationError):
            fields.track("missing")

    def test_range_sampling_takes_running_maximum(self):
        fields = VectorFields(4)
        array = fields.add("x", int)
        fields.track("x")
        array[:] = [1, 5, 2, 0]
        fields.sample_ranges()
        array[:] = 0
        fields.sample_ranges()
        assert fields.max_observed("x") == 5


class TestFiniteStateKernel:
    def test_epidemic_completes(self):
        simulator = VectorFiniteStateSimulator(EpidemicProtocol(), 500, seed=2)
        elapsed = simulator.run_until(
            epidemic_completion_predicate, max_parallel_time=100
        )
        assert 0 < elapsed < 100
        assert simulator.count(EpidemicState.INFECTED) == 500
        assert simulator.count(EpidemicState.SUSCEPTIBLE) == 0
        assert simulator.outputs() == {True: 500}

    def test_randomized_transitions_split_roughly_evenly(self):
        simulator = VectorFiniteStateSimulator(CoinFlipProtocol(), 2_000, seed=4)
        simulator.run_until(
            lambda sim: sim.count("U") <= 1, max_parallel_time=500
        )
        heads = simulator.count("H")
        tails = simulator.count("T")
        assert heads + tails >= 1_999
        # Each decided pair is an independent fair coin: ~n/2 +- noise.
        assert 0.4 < heads / (heads + tails) < 0.6

    def test_reproducible_per_seed(self):
        outcomes = []
        for _ in range(2):
            simulator = VectorFiniteStateSimulator(EpidemicProtocol(), 300, seed=9)
            outcomes.append(
                simulator.run_until(
                    epidemic_completion_predicate, max_parallel_time=100
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_initial_configuration_respected(self):
        configuration = Configuration({"I": 150, "S": 150})
        simulator = VectorFiniteStateSimulator(
            EpidemicProtocol(), 300, seed=1, initial_configuration=configuration
        )
        assert simulator.count("I") == 150
        simulator.run_round()
        assert simulator.count("I") >= 150

    def test_initial_configuration_size_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            VectorFiniteStateSimulator(
                EpidemicProtocol(), 300, initial_configuration=Configuration({"I": 5})
            )

    def test_run_until_timeout_raises(self):
        simulator = VectorFiniteStateSimulator(EpidemicProtocol(), 400, seed=3)
        with pytest.raises(ConvergenceError):
            simulator.run_until(
                epidemic_completion_predicate, max_parallel_time=0.5
            )

    def test_round_accounting(self):
        simulator = VectorFiniteStateSimulator(EpidemicProtocol(), 101, seed=1)
        simulator.run_interactions(120)
        # Whole rounds of floor(101/2) = 50 interactions: 3 rounds = 150.
        assert simulator.rounds == 3
        assert simulator.interactions == 150
        assert simulator.parallel_time == pytest.approx(150 / 101)

    def test_run_with_trace_snapshots(self):
        simulator = VectorFiniteStateSimulator(EpidemicProtocol(), 200, seed=6)
        trace = simulator.run_with_trace(total_parallel_time=4.0, samples=4)
        assert len(trace) == 5
        assert trace[0].interaction == 0
        sizes = [point.configuration.size for point in trace]
        assert all(size == 200 for size in sizes)
        infected = [
            point.configuration.counts.get(EpidemicState.INFECTED, 0)
            for point in trace
        ]
        assert infected == sorted(infected)  # the epidemic only grows

    def test_run_with_trace_does_not_compound_round_overshoot(self):
        # Rounds of floor(101/2)=50 interactions never divide the 101-per-
        # time-unit boundaries: each snapshot must land on the first round
        # boundary at or after its exact boundary, not accumulate drift.
        simulator = VectorFiniteStateSimulator(EpidemicProtocol(), 101, seed=6)
        trace = simulator.run_with_trace(total_parallel_time=4.0, samples=4)
        boundaries = [101, 202, 303, 404]
        for point, boundary in zip(trace[1:], boundaries):
            assert boundary <= point.interaction < boundary + 50, (
                point.interaction,
                boundary,
            )
        assert simulator.interactions == trace[-1].interaction

    def test_majority_conserves_population(self):
        simulator = VectorFiniteStateSimulator(
            ApproximateMajorityProtocol(x_fraction=0.7), 301, seed=8
        )
        simulator.run_parallel_time(10)
        assert simulator.configuration().size == 301


class TestEngineSelection:
    def test_vector_listed(self):
        assert "vector" in ENGINE_NAMES

    def test_build_engine_returns_vector_simulator(self):
        simulator = build_engine("vector", EpidemicProtocol(), 64, seed=0)
        assert isinstance(simulator, VectorFiniteStateSimulator)
        assert simulator.population_size == 64

    def test_vector_rejects_engine_options(self):
        with pytest.raises(SimulationError):
            build_engine("vector", EpidemicProtocol(), 64, batch_size=32)

    def test_vector_accepts_initial_configuration(self):
        configuration = Configuration({"I": 10, "S": 54})
        simulator = build_engine(
            "vector", EpidemicProtocol(), 64, seed=0,
            initial_configuration=configuration,
        )
        assert simulator.count("I") == 10


class TestVectorSimulatorDriver:
    def test_check_every_rounds_validated(self):
        kernel = FiniteStateVectorProtocol(EpidemicProtocol())
        simulator = VectorSimulator(kernel, 50, seed=0)
        with pytest.raises(SimulationError):
            simulator.run_until_done(max_parallel_time=1.0, check_every_rounds=0)

    def test_generic_result_for_predicate_free_kernel(self):
        # A finite-state kernel has no intrinsic done condition: the run
        # exhausts its budget and reports a generic non-converged result.
        kernel = FiniteStateVectorProtocol(EpidemicProtocol())
        simulator = VectorSimulator(kernel, 50, seed=0)
        result = simulator.run_until_done(max_parallel_time=2.0)
        assert not result.converged
        assert result.convergence_time is None
        assert result.interactions == result.rounds * 25
        with pytest.raises(ConvergenceError):
            VectorSimulator(
                FiniteStateVectorProtocol(EpidemicProtocol()), 50, seed=0
            ).run_until_done(max_parallel_time=2.0, raise_on_timeout=True)

    def test_result_as_dict(self):
        kernel = FiniteStateVectorProtocol(EpidemicProtocol())
        simulator = VectorSimulator(kernel, 50, seed=0)
        result = simulator.run_until_done(max_parallel_time=1.0)
        data = result.as_dict()
        assert data["population_size"] == 50
        assert data["converged"] is False
        assert math.isfinite(data["interactions"])


class TestVectorSchedulers:
    """Pluggable round schedulers on the vector engine."""

    def test_quiescing_starves_the_epidemic_source(self):
        # Agent 0 is the epidemic source and sits in the starved prefix, so
        # the infection cannot move while the window is open.
        simulator = VectorFiniteStateSimulator(
            EpidemicProtocol(),
            100,
            seed=4,
            scheduler=SchedulerSpec(
                "quiescing",
                (("duration", 5.0), ("fraction", 0.2), ("start", 0.0)),
            ),
        )
        simulator.run_parallel_time(4.0)
        assert simulator.count("I") == 1
        simulator.run_until(
            epidemic_completion_predicate, max_parallel_time=200
        )
        assert simulator.count("S") == 0

    def test_weighted_rounds_emit_fewer_interactions(self):
        simulator = VectorFiniteStateSimulator(
            EpidemicProtocol(),
            200,
            seed=5,
            scheduler=SchedulerSpec(
                "weighted", (("lazy_fraction", 0.5), ("lazy_rate", 0.1))
            ),
        )
        for _ in range(50):
            simulator.run_round()
        # ~55% of the agents are available per round on average, so the
        # emitted interactions stay well under the full 100 per round...
        assert simulator.interactions < 50 * 90
        # ...but the clock still ticks a full nominal round each time: idle
        # agents cost parallel time (lazy populations converge later).
        assert simulator.parallel_time == pytest.approx(50 * 100 / 200)

    def test_two_block_converges_and_conserves_population(self):
        simulator = VectorFiniteStateSimulator(
            EpidemicProtocol(),
            150,
            seed=6,
            scheduler=SchedulerSpec("two-block", (("intra", 0.95),)),
        )
        elapsed = simulator.run_until(
            epidemic_completion_predicate, max_parallel_time=500
        )
        assert elapsed > 0
        assert simulator.configuration().size == 150

    def test_prebuilt_round_scheduler_accepted_and_validated(self):
        from repro.engine.scheduler import MatchingRoundScheduler

        kernel = FiniteStateVectorProtocol(EpidemicProtocol())
        simulator = VectorSimulator(
            kernel, 60, seed=0, scheduler=MatchingRoundScheduler(60)
        )
        simulator.run_round()
        assert simulator.interactions == 30
        with pytest.raises(SimulationError):
            VectorSimulator(
                FiniteStateVectorProtocol(EpidemicProtocol()),
                60,
                scheduler=MatchingRoundScheduler(59),
            )

    def test_default_scheduler_stream_unchanged(self):
        # The refactor must not move the default matching engine off its
        # historical RNG stream: same seed, same trajectory as a manually
        # driven simulator without any scheduler argument.
        default = VectorFiniteStateSimulator(EpidemicProtocol(), 101, seed=9)
        explicit = VectorFiniteStateSimulator(
            EpidemicProtocol(), 101, seed=9, scheduler="matching"
        )
        for simulator in (default, explicit):
            simulator.run_interactions(500)
        assert default.configuration() == explicit.configuration()


class TestRunUntilBudgetExact:
    def test_check_interval_does_not_extend_the_budget(self):
        """Regression: with a coarse check_interval the run must still stop
        at the round that crosses the budget (historically exactly
        int(t*n/half)+1 rounds), not run whole extra check chunks."""
        simulator = VectorFiniteStateSimulator(EpidemicProtocol(), 100, seed=1)
        with pytest.raises(ConvergenceError):
            simulator.run_until(
                lambda sim: False, max_parallel_time=10.0, check_interval=500
            )
        assert simulator.rounds == int(10.0 * 100 / 50) + 1


class TestNominalTimeSemantics:
    def test_thinned_rounds_still_cost_full_time(self):
        """Regression: a lazy population must converge *later* in parallel
        time, not earlier — rate-thinned rounds used to advance the clock
        only by the pairs they executed, making laziness look like a
        speed-up."""
        import statistics

        def mean_time(scheduler):
            times = []
            for run_index in range(8):
                simulator = VectorFiniteStateSimulator(
                    EpidemicProtocol(), 200, seed=7_000 + run_index,
                    scheduler=scheduler,
                )
                times.append(
                    simulator.run_until(
                        epidemic_completion_predicate, max_parallel_time=400
                    )
                )
            return statistics.fmean(times)

        uniform = mean_time(None)
        lazy = mean_time(
            SchedulerSpec("weighted", (("lazy_fraction", 0.5), ("lazy_rate", 0.1)))
        )
        assert lazy > uniform, (lazy, uniform)
