"""Tests for convergence predicates and the detector probe."""

from __future__ import annotations

import pytest

from repro.engine.convergence import (
    ConvergenceDetector,
    all_agents_satisfy,
    output_within_tolerance,
    stable_for,
)
from repro.engine.simulator import Simulation
from repro.protocols.max_propagation import MaxPropagationProtocol


class _FakeMetrics:
    def __init__(self, interactions):
        self.interactions = interactions


class _FakeSimulation:
    """Minimal stand-in exposing the attributes the predicates consume."""

    def __init__(self, states, population_size=None, protocol=None, interactions=0):
        self.states = states
        self.population_size = population_size or len(states)
        self.protocol = protocol
        self.metrics = _FakeMetrics(interactions)


class _IdentityProtocol:
    @staticmethod
    def output(state):
        return state


class TestPredicates:
    def test_all_agents_satisfy(self):
        predicate = all_agents_satisfy(lambda state: state > 0)
        assert predicate(_FakeSimulation([1, 2, 3]))
        assert not predicate(_FakeSimulation([1, 0, 3]))

    def test_output_within_tolerance_accepts_close_outputs(self):
        predicate = output_within_tolerance(1.0)
        simulation = _FakeSimulation(
            states=[3.0, 3.5], population_size=8, protocol=_IdentityProtocol()
        )
        assert predicate(simulation)  # log2(8) = 3

    def test_output_within_tolerance_rejects_far_outputs(self):
        predicate = output_within_tolerance(0.2)
        simulation = _FakeSimulation(
            states=[3.0, 4.0], population_size=8, protocol=_IdentityProtocol()
        )
        assert not predicate(simulation)

    def test_output_within_tolerance_rejects_none(self):
        predicate = output_within_tolerance(5.0)
        simulation = _FakeSimulation(
            states=[3.0, None], population_size=8, protocol=_IdentityProtocol()
        )
        assert not predicate(simulation)

    def test_output_within_tolerance_rejects_non_numeric(self):
        predicate = output_within_tolerance(5.0)
        simulation = _FakeSimulation(
            states=["not-a-number"], population_size=8, protocol=_IdentityProtocol()
        )
        assert not predicate(simulation)

    def test_output_within_tolerance_validates_argument(self):
        with pytest.raises(ValueError):
            output_within_tolerance(-1)

    def test_stable_for_requires_consecutive_successes(self):
        base_results = iter([True, True, False, True, True, True])
        predicate = stable_for(lambda sim: next(base_results), consecutive_checks=3)
        simulation = _FakeSimulation([0])
        observed = [predicate(simulation) for _ in range(6)]
        assert observed == [False, False, False, False, False, True]

    def test_stable_for_validates_argument(self):
        with pytest.raises(ValueError):
            stable_for(lambda sim: True, consecutive_checks=0)


class TestConvergenceDetector:
    def test_records_first_interaction_of_current_streak(self):
        detector = ConvergenceDetector(predicate=lambda sim: sim.states[0] >= 5)
        simulation = _FakeSimulation([0], interactions=10)
        detector(simulation)
        assert not detector.converged

        simulation.states[0] = 7
        simulation.metrics.interactions = 20
        detector(simulation)
        assert detector.converged
        assert detector.convergence_interaction == 20

        # A later failure clears the tentative convergence point.
        simulation.states[0] = 0
        simulation.metrics.interactions = 30
        detector(simulation)
        assert not detector.converged
        assert detector.convergence_interaction is None

    def test_convergence_time_conversion(self):
        detector = ConvergenceDetector(predicate=lambda sim: True)
        simulation = _FakeSimulation([0], interactions=50)
        detector(simulation)
        assert detector.convergence_time(25) == pytest.approx(2.0)

    def test_integration_with_simulation(self):
        protocol = MaxPropagationProtocol(initial_value=lambda agent_id: agent_id)
        simulation = Simulation(protocol, 20, seed=1)
        detector = simulation.add_convergence_detector(
            all_agents_satisfy(lambda value: value == 19)
        )
        simulation.run_parallel_time(100)
        assert detector.converged
