"""Tests for the interaction schedulers and the scheduler-policy layer."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.engine.scheduler import (
    MatchingRoundScheduler,
    QuiescingPairScheduler,
    QuiescingRoundScheduler,
    RandomMatchingScheduler,
    SchedulerSpec,
    SequentialScheduler,
    TwoBlockPairScheduler,
    TwoBlockRoundScheduler,
    WeightedMatchingRoundScheduler,
    WeightedPairScheduler,
    draw_matching_arrays,
    get_scheduler_policy,
    scheduler_names,
)
from repro.exceptions import SimulationError
from repro.rng import RandomSource


class TestSequentialScheduler:
    def test_pairs_are_valid(self):
        scheduler = SequentialScheduler(8, RandomSource(seed=1))
        for _ in range(1000):
            pair = scheduler.next_pair()
            assert pair.receiver != pair.sender
            assert 0 <= pair.receiver < 8
            assert 0 <= pair.sender < 8

    def test_interaction_count_and_parallel_time(self):
        scheduler = SequentialScheduler(10, RandomSource(seed=2))
        for _ in range(25):
            scheduler.next_pair()
        assert scheduler.interactions_emitted == 25
        assert scheduler.parallel_time_elapsed == pytest.approx(2.5)

    def test_all_ordered_pairs_reachable(self):
        scheduler = SequentialScheduler(4, RandomSource(seed=3))
        seen = {scheduler.next_pair().as_tuple() for _ in range(3000)}
        assert len(seen) == 12  # 4 * 3 ordered pairs

    def test_roughly_uniform_over_agents(self):
        scheduler = SequentialScheduler(5, RandomSource(seed=4))
        participation = Counter()
        for _ in range(5000):
            pair = scheduler.next_pair()
            participation[pair.receiver] += 1
            participation[pair.sender] += 1
        expected = 2 * 5000 / 5
        for agent in range(5):
            assert abs(participation[agent] - expected) < 0.15 * expected

    def test_rejects_population_below_two(self):
        with pytest.raises(SimulationError):
            SequentialScheduler(1, RandomSource(seed=5))


class TestRandomMatchingScheduler:
    def test_each_round_touches_every_agent_once_even_n(self):
        n = 8
        scheduler = RandomMatchingScheduler(n, RandomSource(seed=1))
        agents = []
        for _ in range(n // 2):
            pair = scheduler.next_pair()
            agents.extend(pair.as_tuple())
        assert sorted(agents) == list(range(n))
        assert scheduler.rounds_completed == 1

    def test_odd_population_leaves_one_agent_idle_per_round(self):
        n = 7
        scheduler = RandomMatchingScheduler(n, RandomSource(seed=2))
        agents = []
        for _ in range(n // 2):
            pair = scheduler.next_pair()
            agents.extend(pair.as_tuple())
        assert len(agents) == 6
        assert len(set(agents)) == 6

    def test_pairs_are_valid_across_rounds(self):
        scheduler = RandomMatchingScheduler(10, RandomSource(seed=3))
        for _ in range(500):
            pair = scheduler.next_pair()
            assert pair.receiver != pair.sender

    def test_orientation_is_roughly_balanced(self):
        scheduler = RandomMatchingScheduler(2, RandomSource(seed=4))
        receiver_zero = sum(
            scheduler.next_pair().receiver == 0 for _ in range(2000)
        )
        assert 800 < receiver_zero < 1200

    def test_interactions_emitted_tracks_pairs(self):
        scheduler = RandomMatchingScheduler(6, RandomSource(seed=5))
        for _ in range(9):  # three full rounds of 3 pairs
            scheduler.next_pair()
        assert scheduler.interactions_emitted == 9
        assert scheduler.rounds_completed == 3


class TestSharedMatchingImplementation:
    """Regression: both matching code paths draw from one implementation.

    ``engine/vector.py`` used to re-implement the random-matching round
    independently of :class:`RandomMatchingScheduler`.  Both now call
    :func:`draw_matching_arrays`; the same numpy seed must yield the
    identical matching sequence through either path.
    """

    @pytest.mark.parametrize("n", [8, 9, 50, 51])
    def test_same_seed_same_matchings_across_both_code_paths(self, n):
        seed = 12345
        round_scheduler = MatchingRoundScheduler(n)
        round_rng = np.random.default_rng(seed)
        pair_scheduler = RandomMatchingScheduler(
            n, RandomSource(seed=0), matching_rng=np.random.default_rng(seed)
        )
        for _ in range(5):  # five full rounds
            receivers, senders = round_scheduler.draw_round(round_rng, 0.0)
            emitted = [pair_scheduler.next_pair() for _ in range(n // 2)]
            assert [pair.receiver for pair in emitted] == receivers.tolist()
            assert [pair.sender for pair in emitted] == senders.tolist()

    def test_round_scheduler_is_the_shared_draw(self):
        rec_direct, sen_direct = draw_matching_arrays(20, np.random.default_rng(7))
        rec_round, sen_round = MatchingRoundScheduler(20).draw_round(
            np.random.default_rng(7), 0.0
        )
        assert rec_direct.tolist() == rec_round.tolist()
        assert sen_direct.tolist() == sen_round.tolist()

    def test_subset_matching_only_touches_members(self):
        members = np.array([3, 5, 8, 13, 21])
        receivers, senders = draw_matching_arrays(members, np.random.default_rng(1))
        touched = set(receivers.tolist()) | set(senders.tolist())
        assert touched <= set(members.tolist())
        assert len(touched) == 4  # floor(5/2) disjoint pairs, one member idle


class TestWeightedPairScheduler:
    def test_lazy_agents_participate_proportionally_less(self):
        n, lazy_rate = 40, 0.1
        scheduler = WeightedPairScheduler(
            n, RandomSource(seed=3), lazy_fraction=0.5, lazy_rate=lazy_rate
        )
        participation = Counter()
        draws = 40_000
        for _ in range(draws):
            pair = scheduler.next_pair()
            assert pair.receiver != pair.sender
            participation[pair.receiver] += 1
            participation[pair.sender] += 1
        lazy = sum(participation[agent] for agent in range(n // 2))
        busy = sum(participation[agent] for agent in range(n // 2, n))
        # Expected ratio of per-agent participation is lazy_rate = 0.1.
        ratio = lazy / busy
        assert 0.05 < ratio < 0.2, ratio

    def test_rejects_degenerate_rates(self):
        with pytest.raises(SimulationError):
            WeightedPairScheduler(4, RandomSource(0), lazy_fraction=1.0, lazy_rate=0.0)


class TestTwoBlockPairScheduler:
    def test_cross_block_fraction_matches_intra(self):
        n, intra = 40, 0.8
        scheduler = TwoBlockPairScheduler(n, RandomSource(seed=5), intra=intra)
        boundary = scheduler.block_boundary
        cross = 0
        draws = 20_000
        for _ in range(draws):
            pair = scheduler.next_pair()
            assert pair.receiver != pair.sender
            if (pair.receiver < boundary) != (pair.sender < boundary):
                cross += 1
        assert cross / draws == pytest.approx(1 - intra, abs=0.03)

    def test_singleton_block_always_crosses(self):
        scheduler = TwoBlockPairScheduler(
            10, RandomSource(seed=6), intra=1.0, split=0.05
        )
        assert scheduler.block_boundary == 1
        for _ in range(200):
            pair = scheduler.next_pair()
            if 0 in (pair.receiver, pair.sender):
                # The lone block-A agent can only interact across.
                assert {pair.receiver, pair.sender} != {0}

    def test_option_validation(self):
        with pytest.raises(SimulationError):
            TwoBlockPairScheduler(10, RandomSource(0), intra=1.5)
        with pytest.raises(SimulationError):
            TwoBlockPairScheduler(10, RandomSource(0), split=0.0)


class TestQuiescingPairScheduler:
    def test_starved_agents_frozen_inside_window_only(self):
        n = 20
        scheduler = QuiescingPairScheduler(
            n, RandomSource(seed=7), fraction=0.25, start=0.0, duration=2.0
        )
        starved = set(range(scheduler.starved_count))
        assert starved == {0, 1, 2, 3, 4}
        in_window = [scheduler.next_pair() for _ in range(2 * n)]  # t < 2
        for pair in in_window:
            assert pair.receiver not in starved
            assert pair.sender not in starved
        after = [scheduler.next_pair() for _ in range(200 * n)]
        touched = {pair.receiver for pair in after} | {pair.sender for pair in after}
        assert starved <= touched  # the window has ended

    def test_rejects_starving_almost_everyone(self):
        with pytest.raises(SimulationError):
            QuiescingPairScheduler(4, RandomSource(0), fraction=0.9)


class TestRoundSchedulers:
    def test_weighted_round_thins_lazy_agents(self):
        n = 60
        scheduler = WeightedMatchingRoundScheduler(n, lazy_fraction=0.5, lazy_rate=0.1)
        rng = np.random.default_rng(11)
        lazy_hits = busy_hits = total_pairs = 0
        for _ in range(400):
            receivers, senders = scheduler.draw_round(rng, 0.0)
            assert receivers.size == senders.size
            agents = np.concatenate([receivers, senders])
            assert len(set(agents.tolist())) == agents.size  # disjoint pairs
            lazy_hits += int((agents < n // 2).sum())
            busy_hits += int((agents >= n // 2).sum())
            total_pairs += receivers.size
        assert total_pairs < 400 * (n // 2)  # rate-thinned rounds
        assert lazy_hits / max(1, busy_hits) < 0.25

    def test_two_block_round_structure(self):
        scheduler = TwoBlockRoundScheduler(30, intra=0.5, split=0.5)
        rng = np.random.default_rng(13)
        saw_intra = saw_cross = False
        for _ in range(100):
            receivers, senders = scheduler.draw_round(rng, 0.0)
            agents = np.concatenate([receivers, senders])
            assert len(set(agents.tolist())) == agents.size
            cross = (receivers < 15) != (senders < 15)
            if cross.all() and cross.size:
                saw_cross = True
            if (~cross).all() and cross.size:
                saw_intra = True
        assert saw_intra and saw_cross

    def test_quiescing_round_respects_window(self):
        scheduler = QuiescingRoundScheduler(20, fraction=0.25, start=1.0, duration=5.0)
        rng = np.random.default_rng(17)
        receivers, senders = scheduler.draw_round(rng, 3.0)  # inside the window
        agents = set(receivers.tolist()) | set(senders.tolist())
        assert agents.isdisjoint(range(5))
        assert receivers.size == (20 - 5) // 2
        receivers, senders = scheduler.draw_round(rng, 10.0)  # after the window
        assert receivers.size == 10


class TestSchedulerSpecAndRegistry:
    def test_known_names_registered(self):
        names = scheduler_names()
        for expected in (
            "sequential",
            "matching",
            "weighted",
            "two-block",
            "quiescing",
            "state-weighted",
        ):
            assert expected in names

    def test_unknown_name_rejected_at_spec_construction(self):
        with pytest.raises(SimulationError):
            SchedulerSpec(name="warp-drive")

    def test_unknown_option_rejected(self):
        with pytest.raises(SimulationError):
            SchedulerSpec("two-block", (("warp", 9),)).build_policy()

    def test_invalid_option_value_rejected(self):
        with pytest.raises(SimulationError):
            SchedulerSpec("weighted", (("lazy_rate", 0.0),)).build_policy()

    def test_coerce_forms(self):
        assert SchedulerSpec.coerce(None, default="matching").name == "matching"
        assert SchedulerSpec.coerce("weighted").name == "weighted"
        spec = SchedulerSpec("two-block", (("intra", 0.95),))
        assert SchedulerSpec.coerce(spec) is spec
        with pytest.raises(SimulationError):
            SchedulerSpec.coerce(spec, options={"intra": 0.5})

    def test_capability_errors_are_informative(self):
        with pytest.raises(SimulationError, match="per-pair"):
            SchedulerSpec("state-weighted").build_policy().make_pair_scheduler(
                8, RandomSource(0)
            )
        with pytest.raises(SimulationError, match="count-compressed"):
            SchedulerSpec("two-block").build_policy().state_rate_function()
        with pytest.raises(SimulationError, match="round"):
            SchedulerSpec("sequential").build_policy().make_round_scheduler(8)

    def test_label_and_cache_payload(self):
        spec = SchedulerSpec("two-block", (("intra", 0.95),))
        assert spec.label() == "two-block(intra=0.95)"
        payload = spec.cache_payload()
        assert payload["name"] == "two-block"
        assert payload["options"] == [("intra", "0.95")]

    def test_state_weighted_rates(self):
        policy = get_scheduler_policy("state-weighted")(
            rates=(("I", 0.5),), default_rate=1.0
        )
        rate_of = policy.state_rate_function()
        assert rate_of("I") == 0.5
        assert rate_of("S") == 1.0
        rates = policy.state_rates(["I", "S"])
        assert rates.tolist() == [0.5, 1.0]


class TestOptionCoercion:
    """Typed option validation at resolve time (no raw strings reach the
    policy constructors, no bare ValueError escapes)."""

    def test_resolve_coerces_string_values_to_floats(self):
        from repro.engine.selection import resolve_scheduler_spec

        spec = resolve_scheduler_spec("agent", "two-block", {"intra": "0.95"})
        assert spec.options == (("intra", 0.95),)
        assert isinstance(spec.options[0][1], float)

    def test_resolve_rejects_uncoercible_values_with_clear_error(self):
        from repro.engine.selection import resolve_scheduler_spec

        with pytest.raises(SimulationError, match="'lazy_rate'.*must be a float"):
            resolve_scheduler_spec("agent", "weighted", {"lazy_rate": "abc"})

    def test_resolve_rejects_unknown_option_keys(self):
        from repro.engine.selection import resolve_scheduler_spec

        with pytest.raises(SimulationError, match="does not accept option 'bogus'"):
            resolve_scheduler_spec("agent", "weighted", {"bogus": 1})
        with pytest.raises(SimulationError, match="allowed: none"):
            resolve_scheduler_spec("count", "sequential", {"bogus": 1})

    def test_coerced_spec_is_canonical_for_cache_identity(self):
        string_spec = SchedulerSpec("two-block", (("intra", "0.95"),)).coerced()
        float_spec = SchedulerSpec("two-block", (("intra", 0.95),)).coerced()
        assert string_spec == float_spec
        assert string_spec.cache_payload() == float_spec.cache_payload()

    def test_coerced_is_identity_for_already_typed_options(self):
        spec = SchedulerSpec("two-block", (("intra", 0.95),))
        assert spec.coerced() is spec

    def test_build_policy_applies_coercion(self):
        policy = SchedulerSpec("weighted", (("lazy_rate", "0.25"),)).build_policy()
        assert policy.lazy_rate == 0.25
        with pytest.raises(SimulationError, match="must be a float"):
            SchedulerSpec("weighted", (("lazy_rate", "abc"),)).build_policy()

    def test_state_weighted_structured_rates_pass_through(self):
        from repro.engine.selection import resolve_scheduler_spec

        spec = resolve_scheduler_spec(
            "count", "state-weighted", {"rates": "I:0.5", "default_rate": "2"}
        )
        options = spec.options_dict()
        assert options["rates"] == "I:0.5"  # parsed by the policy itself
        assert options["default_rate"] == 2.0

    def test_trial_spec_surfaces_bad_option_values_at_build_time(self):
        from repro.harness.parallel import build_finite_state_trials

        with pytest.raises(SimulationError, match="must be a float"):
            build_finite_state_trials(
                [64],
                1,
                protocol="epidemic",
                engine="agent",
                scheduler="two-block",
                scheduler_options={"intra": "wide"},
            )

    def test_trial_cache_key_is_canonical_across_option_types(self):
        # Regression: a string "0.95" and the float 0.95 (or the int 1 the
        # CLI parses vs a library caller's 1.0) must name the same trial —
        # otherwise a resumed sweep re-executes every cached trial.
        from repro.harness.parallel import build_finite_state_trials

        def key(value):
            (spec,) = build_finite_state_trials(
                [64],
                1,
                protocol="epidemic",
                engine="agent",
                scheduler="two-block",
                scheduler_options={"intra": value},
            )
            return spec.cache_key()

        assert key("0.95") == key(0.95)
        assert key(1) == key(1.0)
        assert key(0.95) != key(0.9)
