"""Tests for the interaction schedulers."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.engine.scheduler import RandomMatchingScheduler, SequentialScheduler
from repro.exceptions import SimulationError
from repro.rng import RandomSource


class TestSequentialScheduler:
    def test_pairs_are_valid(self):
        scheduler = SequentialScheduler(8, RandomSource(seed=1))
        for _ in range(1000):
            pair = scheduler.next_pair()
            assert pair.receiver != pair.sender
            assert 0 <= pair.receiver < 8
            assert 0 <= pair.sender < 8

    def test_interaction_count_and_parallel_time(self):
        scheduler = SequentialScheduler(10, RandomSource(seed=2))
        for _ in range(25):
            scheduler.next_pair()
        assert scheduler.interactions_emitted == 25
        assert scheduler.parallel_time_elapsed == pytest.approx(2.5)

    def test_all_ordered_pairs_reachable(self):
        scheduler = SequentialScheduler(4, RandomSource(seed=3))
        seen = {scheduler.next_pair().as_tuple() for _ in range(3000)}
        assert len(seen) == 12  # 4 * 3 ordered pairs

    def test_roughly_uniform_over_agents(self):
        scheduler = SequentialScheduler(5, RandomSource(seed=4))
        participation = Counter()
        for _ in range(5000):
            pair = scheduler.next_pair()
            participation[pair.receiver] += 1
            participation[pair.sender] += 1
        expected = 2 * 5000 / 5
        for agent in range(5):
            assert abs(participation[agent] - expected) < 0.15 * expected

    def test_rejects_population_below_two(self):
        with pytest.raises(SimulationError):
            SequentialScheduler(1, RandomSource(seed=5))


class TestRandomMatchingScheduler:
    def test_each_round_touches_every_agent_once_even_n(self):
        n = 8
        scheduler = RandomMatchingScheduler(n, RandomSource(seed=1))
        agents = []
        for _ in range(n // 2):
            pair = scheduler.next_pair()
            agents.extend(pair.as_tuple())
        assert sorted(agents) == list(range(n))
        assert scheduler.rounds_completed == 1

    def test_odd_population_leaves_one_agent_idle_per_round(self):
        n = 7
        scheduler = RandomMatchingScheduler(n, RandomSource(seed=2))
        agents = []
        for _ in range(n // 2):
            pair = scheduler.next_pair()
            agents.extend(pair.as_tuple())
        assert len(agents) == 6
        assert len(set(agents)) == 6

    def test_pairs_are_valid_across_rounds(self):
        scheduler = RandomMatchingScheduler(10, RandomSource(seed=3))
        for _ in range(500):
            pair = scheduler.next_pair()
            assert pair.receiver != pair.sender

    def test_orientation_is_roughly_balanced(self):
        scheduler = RandomMatchingScheduler(2, RandomSource(seed=4))
        receiver_zero = sum(
            scheduler.next_pair().receiver == 0 for _ in range(2000)
        )
        assert 800 < receiver_zero < 1200

    def test_interactions_emitted_tracks_pairs(self):
        scheduler = RandomMatchingScheduler(6, RandomSource(seed=5))
        for _ in range(9):  # three full rounds of 3 pairs
            scheduler.next_pair()
        assert scheduler.interactions_emitted == 9
        assert scheduler.rounds_completed == 3
