"""Tests for the configuration-level (count-based) engine."""

from __future__ import annotations

import math

import pytest

from repro.engine.configuration import Configuration
from repro.engine.count_simulator import CountSimulator
from repro.exceptions import ConvergenceError, SimulationError
from repro.protocols.base import FiniteStateProtocol
from repro.protocols.epidemic import (
    EpidemicProtocol,
    EpidemicState,
    epidemic_completion_predicate,
)
from repro.protocols.majority import (
    ApproximateMajorityProtocol,
    majority_consensus_predicate,
)


class TestConstruction:
    def test_initial_counts_from_protocol(self):
        simulator = CountSimulator(EpidemicProtocol(), 100, seed=1)
        assert simulator.count(EpidemicState.INFECTED) == 1
        assert simulator.count(EpidemicState.SUSCEPTIBLE) == 99

    def test_explicit_initial_configuration(self):
        configuration = Configuration({EpidemicState.INFECTED: 10, EpidemicState.SUSCEPTIBLE: 90})
        simulator = CountSimulator(
            EpidemicProtocol(), 100, seed=1, initial_configuration=configuration
        )
        assert simulator.count(EpidemicState.INFECTED) == 10

    def test_initial_configuration_size_checked(self):
        configuration = Configuration({EpidemicState.INFECTED: 5})
        with pytest.raises(SimulationError):
            CountSimulator(EpidemicProtocol(), 100, initial_configuration=configuration)

    def test_rejects_tiny_population(self):
        with pytest.raises(SimulationError):
            CountSimulator(EpidemicProtocol(), 1)


class TestDynamics:
    def test_population_size_is_conserved(self):
        simulator = CountSimulator(ApproximateMajorityProtocol(), 500, seed=2)
        simulator.run_parallel_time(5)
        assert simulator.configuration().size == 500

    def test_epidemic_completes_in_logarithmic_time(self):
        simulator = CountSimulator(EpidemicProtocol(), 10_000, seed=3)
        elapsed = simulator.run_until(epidemic_completion_predicate, max_parallel_time=200)
        # Lemma A.1: expectation ~ ln n ~ 9.2; allow generous slack.
        assert elapsed < 5 * math.log(10_000)
        assert simulator.count(EpidemicState.SUSCEPTIBLE) == 0

    def test_majority_reaches_consensus_on_initial_majority(self):
        simulator = CountSimulator(ApproximateMajorityProtocol(0.7), 2_000, seed=4)
        simulator.run_until(majority_consensus_predicate, max_parallel_time=300)
        assert simulator.count(ApproximateMajorityProtocol.OPINION_Y) == 0
        assert simulator.count(ApproximateMajorityProtocol.OPINION_X) > 0

    def test_run_until_budget_exhaustion_raises(self):
        simulator = CountSimulator(EpidemicProtocol(), 1_000, seed=5)
        with pytest.raises(ConvergenceError):
            simulator.run_until(epidemic_completion_predicate, max_parallel_time=0.01)

    def test_reproducibility(self):
        elapsed = []
        for _ in range(2):
            simulator = CountSimulator(EpidemicProtocol(), 2_000, seed=6)
            elapsed.append(
                simulator.run_until(epidemic_completion_predicate, max_parallel_time=200)
            )
        assert elapsed[0] == elapsed[1]

    def test_states_seen_accumulates(self):
        simulator = CountSimulator(ApproximateMajorityProtocol(0.5), 200, seed=7)
        simulator.run_parallel_time(10)
        assert ApproximateMajorityProtocol.BLANK in simulator.states_seen()

    def test_outputs_histogram_sums_to_population(self):
        simulator = CountSimulator(ApproximateMajorityProtocol(0.5), 300, seed=8)
        simulator.run_parallel_time(2)
        assert sum(simulator.outputs().values()) == 300


class TestSamplingCache:
    def test_sampling_matches_pre_cache_linear_scan(self):
        """The bisect cache must be draw-for-draw identical to a linear scan."""

        from bisect import bisect_right

        def linear_scan(counts, threshold, exclude):
            cumulative = 0
            for state, count in counts.items():
                weight = count - 1 if state == exclude else count
                cumulative += weight
                if threshold < cumulative:
                    return state
            raise AssertionError("inconsistent counts")

        simulator = CountSimulator(ApproximateMajorityProtocol(0.5), 400, seed=21)
        for _ in range(200):
            simulator.step()
            counts = dict(simulator._counts)
            population = simulator.population_size
            for exclude in [None, *counts]:
                total = population if exclude is None else population - 1
                for threshold in (0, total // 2, total - 1):
                    expected = linear_scan(counts, threshold, exclude)
                    # Drive the cached path with a deterministic threshold.
                    if simulator._cum_dirty:
                        simulator._rebuild_cumulative()
                    shifted = threshold
                    if exclude is not None and shifted >= (
                        simulator._cum_prefix[exclude] + counts[exclude] - 1
                    ):
                        shifted += 1
                    position = bisect_right(simulator._cum_weights, shifted)
                    assert simulator._cum_states[position] == expected

    def test_cache_invalidated_after_count_change(self):
        simulator = CountSimulator(EpidemicProtocol(), 200, seed=22)
        simulator.run_until(epidemic_completion_predicate, max_parallel_time=200)
        # All agents infected: sampling must only ever return INFECTED now.
        for _ in range(50):
            assert simulator._sample_state_weighted(None) == EpidemicState.INFECTED

    def test_long_run_conserves_distribution_shape(self):
        # Statistical sanity: at 50/50 majority the first sampled state is
        # near-uniform over opinions across seeds.
        hits = 0
        trials = 200
        for seed in range(trials):
            simulator = CountSimulator(ApproximateMajorityProtocol(0.5), 100, seed=seed)
            if simulator._sample_state_weighted(None) == ApproximateMajorityProtocol.OPINION_X:
                hits += 1
        assert 0.35 < hits / trials < 0.65


class TestTracing:
    def test_run_with_trace_has_requested_granularity(self):
        simulator = CountSimulator(EpidemicProtocol(), 500, seed=9)
        trace = simulator.run_with_trace(total_parallel_time=5, samples=10)
        assert len(trace) >= 10
        assert trace[0].parallel_time == 0.0
        assert trace[-1].parallel_time >= 5.0
        assert all(point.configuration.size == 500 for point in trace)

    def test_run_with_trace_exact_sample_count_non_divisible(self):
        """Regression: chunk = total // samples over- or under-sampled.

        With n = 100, t = 1 (100 interactions) and samples = 7, the old
        chunking produced floor(100/14)-ish chunks -> 8+ snapshots; the exact
        boundaries give precisely 7 checkpoints after the initial point.
        """
        simulator = CountSimulator(EpidemicProtocol(), 100, seed=30)
        trace = simulator.run_with_trace(total_parallel_time=1, samples=7)
        assert len(trace) == 8
        assert trace[-1].interaction == 100
        interactions = [point.interaction for point in trace]
        assert interactions == sorted(set(interactions))

    def test_run_with_trace_short_run_fewer_samples(self):
        # 2 interactions cannot yield 5 distinct checkpoints; no duplicates.
        simulator = CountSimulator(EpidemicProtocol(), 100, seed=31)
        trace = simulator.run_with_trace(total_parallel_time=0.02, samples=5)
        assert [point.interaction for point in trace] == [0, 1, 2]

    def test_run_with_trace_many_samples_regression(self):
        # Old behaviour: total=150, samples=4 -> chunk=37 -> 5 checkpoints
        # (and the last one short); now exactly 4, evenly spaced.
        simulator = CountSimulator(EpidemicProtocol(), 100, seed=32)
        trace = simulator.run_with_trace(total_parallel_time=1.5, samples=4)
        assert [point.interaction for point in trace] == [0, 37, 75, 112, 150]

    def test_trace_counts_are_monotone_for_epidemic(self):
        simulator = CountSimulator(EpidemicProtocol(), 500, seed=10)
        trace = simulator.run_with_trace(total_parallel_time=10, samples=20)
        infected = [point.configuration.count(EpidemicState.INFECTED) for point in trace]
        assert all(later >= earlier for earlier, later in zip(infected, infected[1:]))

    def test_run_with_trace_rejects_bad_samples(self):
        simulator = CountSimulator(EpidemicProtocol(), 100, seed=11)
        with pytest.raises(SimulationError):
            simulator.run_with_trace(total_parallel_time=1, samples=0)


class TestCountSchedulerPolicies:
    def test_per_agent_scheduler_rejected(self):
        from repro.protocols.epidemic import EpidemicProtocol

        with pytest.raises(SimulationError):
            CountSimulator(EpidemicProtocol(), 64, scheduler="weighted")

    def test_zero_rate_state_is_frozen(self):
        from repro.engine.scheduler import SchedulerSpec
        from repro.protocols.epidemic import EpidemicProtocol

        simulator = CountSimulator(
            EpidemicProtocol(),
            64,
            seed=1,
            scheduler=SchedulerSpec("state-weighted", (("rates", (("I", 0.0),)),)),
        )
        simulator.run_parallel_time(50)
        # Infected agents never participate, so the epidemic cannot spread.
        assert simulator.count("I") == 1

    def test_state_weighted_run_is_reproducible(self):
        from repro.engine.scheduler import SchedulerSpec
        from repro.protocols.epidemic import EpidemicProtocol

        spec = SchedulerSpec("state-weighted", (("rates", (("I", 0.5),)),))
        outcomes = []
        for _ in range(2):
            simulator = CountSimulator(EpidemicProtocol(), 128, seed=7, scheduler=spec)
            simulator.run_parallel_time(10)
            outcomes.append(simulator.configuration())
        assert outcomes[0] == outcomes[1]


class _InertTwoState(FiniteStateProtocol):
    """Two states, no transitions — pair sampling leaves counts untouched."""

    def states(self):
        return ("A", "B")

    def initial_state(self, agent_id):
        return "A" if agent_id == 0 else "B"

    def transitions(self, receiver, sender):
        return ()

    def output(self, state):
        return state

    def describe(self):
        return "InertTwoState"


class TestStateWeightedJointDistribution:
    def test_pair_distribution_matches_the_batched_multinomial_model(self):
        """Regression: the per-interaction sampler must draw the ordered pair
        with probability ~ (r_i c_i)(r_j c_j) — the joint product-of-rates
        model of the batched engine's multinomial — not the biased
        receiver-then-remaining scheme it previously used.

        With rates {A: 10, B: 1} and counts {A: 1, B: 10} the joint model
        gives P(receiver=A, sender=B) = 100/290 ~ 0.345, whereas the old
        two-draw scheme gave 0.5.
        """
        from repro.engine.scheduler import SchedulerSpec

        simulator = CountSimulator(
            _InertTwoState(),
            11,
            seed=42,
            scheduler=SchedulerSpec("state-weighted", (("rates", (("A", 10.0), ("B", 1.0))),)),
        )
        draws = 30_000
        hits = sum(
            1
            for _ in range(draws)
            if simulator._sample_ordered_state_pair() == ("A", "B")
        )
        assert hits / draws == pytest.approx(100 / 290, abs=0.02)

    def test_single_positive_rate_agent_rejected(self):
        from repro.engine.scheduler import SchedulerSpec

        simulator = CountSimulator(
            _InertTwoState(),
            11,
            seed=1,
            scheduler=SchedulerSpec("state-weighted", (("rates", (("B", 0.0),)),)),
        )
        with pytest.raises(SimulationError, match="fewer than two"):
            simulator.step()
