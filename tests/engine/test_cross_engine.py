"""Cross-engine equivalence: agent, count, batched and vector engines agree.

The three *sequential* engines implement the same stochastic process (uniform
ordered pairs, protocol transition distributions), so on identical workloads
their *statistics* must agree — completion-time quantiles, correctness rates,
fixed-time configuration levels — even though their random streams differ.
These tests run modest populations over many seeds and compare across
engines with tolerances sized by the sampling noise.

The vector engine substitutes synchronous random-matching rounds for the
sequential scheduler (every agent interacts exactly once per round), which
preserves behaviour only up to constant factors in *time* while leaving
*correctness* statistics intact (see ``DESIGN.md``, Schedulers).  Its
completion times are therefore compared within a constant-factor band rather
than the tight relative tolerances of the sequential engines.
"""

from __future__ import annotations

import math
import statistics

import pytest

from repro.engine.selection import (
    ENGINE_NAMES,
    SEQUENTIAL_ENGINE_NAMES,
    build_engine,
)
from repro.protocols.epidemic import (
    EpidemicProtocol,
    EpidemicState,
    epidemic_completion_predicate,
)
from repro.protocols.majority import (
    ApproximateMajorityProtocol,
    majority_consensus_predicate,
)

EPIDEMIC_N = 256
EPIDEMIC_RUNS = 30
MAJORITY_N = 300
MAJORITY_RUNS = 20


def _epidemic_completion_times(engine: str) -> list[float]:
    times = []
    for run_index in range(EPIDEMIC_RUNS):
        simulator = build_engine(
            engine, EpidemicProtocol(), EPIDEMIC_N, seed=1_000 + run_index
        )
        times.append(
            simulator.run_until(
                epidemic_completion_predicate,
                max_parallel_time=60 * math.log(EPIDEMIC_N),
                check_interval=max(EPIDEMIC_N // 8, 16),
            )
        )
    return times


@pytest.fixture(scope="module")
def epidemic_times() -> dict[str, list[float]]:
    return {engine: _epidemic_completion_times(engine) for engine in ENGINE_NAMES}


class TestEpidemicEquivalence:
    def test_all_engines_complete_every_run(self, epidemic_times):
        for engine in ENGINE_NAMES:
            assert len(epidemic_times[engine]) == EPIDEMIC_RUNS, engine

    def test_mean_completion_times_agree(self, epidemic_times):
        means = {
            engine: statistics.fmean(epidemic_times[engine])
            for engine in SEQUENTIAL_ENGINE_NAMES
        }
        reference = means["agent"]
        for engine, mean in means.items():
            # Epidemic completion concentrates near ln n; 25% covers the
            # Monte-Carlo noise of 30 runs with margin.
            assert mean == pytest.approx(reference, rel=0.25), means

    def test_median_completion_times_agree(self, epidemic_times):
        medians = {
            engine: statistics.median(epidemic_times[engine])
            for engine in SEQUENTIAL_ENGINE_NAMES
        }
        reference = medians["agent"]
        for engine, median in medians.items():
            assert median == pytest.approx(reference, rel=0.3), medians

    def test_completion_times_within_theory_budget(self, epidemic_times):
        budget = 24 * math.log(EPIDEMIC_N)
        for engine, times in epidemic_times.items():
            assert statistics.fmean(times) < budget, engine

    def test_vector_engine_within_constant_factor(self, epidemic_times):
        """Matching rounds complete the epidemic in ~0.5 log2 n time vs ~ln n.

        The ratio to the sequential engines is a scheduler constant, not a
        free parameter: it must stay within a fixed band across runs.
        """
        reference = statistics.fmean(epidemic_times["agent"])
        vector = statistics.fmean(epidemic_times["vector"])
        assert 0.3 * reference < vector < 1.5 * reference, (vector, reference)


class TestFixedTimeConfiguration:
    @staticmethod
    def _mean_infected_fraction(engine: str) -> float:
        level = []
        for run_index in range(EPIDEMIC_RUNS):
            simulator = build_engine(
                engine, EpidemicProtocol(), EPIDEMIC_N, seed=2_000 + run_index
            )
            simulator.run_parallel_time(4)
            level.append(simulator.count(EpidemicState.INFECTED) / EPIDEMIC_N)
        return statistics.fmean(level)

    def test_mean_infected_fraction_after_fixed_time(self):
        """After t=4 units the sequential engines report similar infection levels."""
        fractions = {
            engine: self._mean_infected_fraction(engine)
            for engine in SEQUENTIAL_ENGINE_NAMES
        }
        reference = fractions["agent"]
        assert 0.0 < reference < 1.0  # mid-epidemic: the comparison is informative
        for engine, fraction in fractions.items():
            assert fraction == pytest.approx(reference, abs=0.12), fractions

    def test_vector_fixed_time_fraction_sane(self):
        """The vector engine's mid-epidemic level differs by a bounded factor.

        Matching rounds double the infected set once per round (``2^{2t}``
        growth at two interactions per agent per time unit) where the
        sequential scheduler grows like ``e^{2t}``, so the vector epidemic
        runs somewhat behind at a fixed mid-epidemic time — by a scheduler
        constant, not unboundedly.
        """
        reference = self._mean_infected_fraction("agent")
        vector = self._mean_infected_fraction("vector")
        assert reference * 0.5 <= vector <= min(1.0, reference * 1.2), (
            vector,
            reference,
        )


class TestMajorityEquivalence:
    @staticmethod
    def _majority_stats(engine: str) -> tuple[float, float]:
        correct = 0
        consensus_times = []
        for run_index in range(MAJORITY_RUNS):
            simulator = build_engine(
                engine,
                ApproximateMajorityProtocol(x_fraction=0.7),
                MAJORITY_N,
                seed=3_000 + run_index,
            )
            consensus_times.append(
                simulator.run_until(
                    majority_consensus_predicate,
                    max_parallel_time=500,
                    check_interval=max(MAJORITY_N // 8, 16),
                )
            )
            if simulator.count(ApproximateMajorityProtocol.OPINION_Y) == 0:
                correct += 1
        return correct / MAJORITY_RUNS, statistics.fmean(consensus_times)

    def test_majority_correctness_rate_agrees(self):
        """A 70/30 split must be won by the initial majority on every engine."""
        rates = {}
        times = {}
        for engine in ENGINE_NAMES:
            rates[engine], times[engine] = self._majority_stats(engine)
        for engine, rate in rates.items():
            # Correctness is scheduler-independent: the vector engine is held
            # to the same bar as the sequential ones.
            assert rate >= 0.9, rates
        reference = times["agent"]
        for engine in SEQUENTIAL_ENGINE_NAMES:
            assert times[engine] == pytest.approx(reference, rel=0.35), times
        # The vector engine's consensus time differs by a scheduler constant.
        assert 0.3 * reference < times["vector"] < 1.5 * reference, times


# ---------------------------------------------------------------------------
# Engine x scheduler: the pluggable-scheduler equivalence grid
# ---------------------------------------------------------------------------

SCHED_N = 128
SCHED_RUNS = 12


def _epidemic_mean_time(
    engine: str, scheduler: str | None, options: dict, backend=None
) -> float:
    times = []
    for run_index in range(SCHED_RUNS):
        simulator = build_engine(
            engine,
            EpidemicProtocol(),
            SCHED_N,
            seed=5_000 + run_index,
            scheduler=scheduler,
            scheduler_options=options,
            backend=backend,
        )
        times.append(
            simulator.run_until(
                epidemic_completion_predicate,
                max_parallel_time=120 * math.log(SCHED_N),
                check_interval=max(SCHED_N // 8, 16),
            )
        )
    return statistics.fmean(times)


class TestEngineSchedulerGrid:
    """Cross-engine agreement parametrised over (engine, scheduler) pairs."""

    def test_agent_matching_equals_vector_matching(self):
        """Under the *same* scheduler the agent and vector engines run the
        same stochastic process, so completion times agree tightly — not
        just within the sequential-vs-matching constant-factor band."""
        agent = _epidemic_mean_time("agent", "matching", {})
        vector = _epidemic_mean_time("vector", "matching", {})
        assert agent == pytest.approx(vector, rel=0.2), (agent, vector)

    @pytest.mark.parametrize("engine", ["agent", "vector"])
    def test_matching_engines_within_band_of_sequential(self, engine):
        reference = _epidemic_mean_time("agent", "sequential", {})
        matching = _epidemic_mean_time(engine, "matching", {})
        assert 0.3 * reference < matching < 1.5 * reference, (matching, reference)

    @pytest.mark.parametrize(
        "scheduler,options,band",
        [
            ("weighted", {"lazy_fraction": 0.5, "lazy_rate": 0.2}, (0.2, 5.0)),
            ("two-block", {"intra": 0.9}, (0.2, 5.0)),
            ("quiescing", {"fraction": 0.25, "start": 0.0, "duration": 2.0}, (0.2, 5.0)),
        ],
    )
    def test_agent_and_vector_agree_under_nonuniform_schedulers(
        self, scheduler, options, band
    ):
        """The per-pair and round-based realisations of each scenario are
        analogous models, not identical processes; their epidemic completion
        times must stay within a constant factor of each other."""
        agent = _epidemic_mean_time("agent", scheduler, dict(options))
        vector = _epidemic_mean_time("vector", scheduler, dict(options))
        assert band[0] * agent < vector < band[1] * agent, (agent, vector)

    def test_state_weighted_agrees_between_count_and_batched(self):
        """The two count-level engines run the identical state-weighted
        distribution (batched via the multinomial, count per interaction)."""
        options = {"rates": (("I", 0.3),)}
        count = _epidemic_mean_time("count", "state-weighted", dict(options))
        batched = _epidemic_mean_time("batched", "state-weighted", dict(options))
        uniform = _epidemic_mean_time("count", "sequential", {})
        assert count == pytest.approx(batched, rel=0.3), (count, batched)
        # Throttling the infected agents must slow the epidemic down.
        assert count > 1.2 * uniform, (count, uniform)

    def test_incompatible_pairs_rejected(self):
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError):
            build_engine("count", EpidemicProtocol(), 64, scheduler="weighted")
        with pytest.raises(SimulationError):
            build_engine("vector", EpidemicProtocol(), 64, scheduler="sequential")
        with pytest.raises(SimulationError):
            build_engine("agent", EpidemicProtocol(), 64, scheduler="state-weighted")


# ---------------------------------------------------------------------------
# Engine x scheduler x backend: the array-backend seam joins the grid
# ---------------------------------------------------------------------------


def _grid_backends() -> list:
    """Non-reference array backends runnable here (numba runs interpreted
    without the JIT installed; native needs a C toolchain)."""
    from repro.backend.native_backend import NativeBackend
    from repro.backend.numba_backend import NumbaBackend

    backends = [pytest.param(NumbaBackend(), id="numba")]
    if NativeBackend.available():
        backends.append(pytest.param(NativeBackend(), id="native"))
    return backends


class TestEngineSchedulerBackendGrid:
    """Every (engine, scheduler, backend) cell runs the same process.

    The numpy backend is bitwise-pinned by ``tests/backend``; here the JIT
    backends — which draw from their own RNG streams — are held to the same
    statistical-agreement bar the engines hold each other to.
    """

    @pytest.mark.parametrize("backend", _grid_backends())
    @pytest.mark.parametrize(
        "engine,scheduler,options",
        [
            ("batched", None, {}),
            ("batched", "state-weighted", {"rates": (("I", 0.3),)}),
            ("vector", None, {}),
            ("vector", "weighted", {"lazy_fraction": 0.5, "lazy_rate": 0.2}),
        ],
    )
    def test_backend_agrees_with_numpy_reference(
        self, backend, engine, scheduler, options
    ):
        reference = _epidemic_mean_time(engine, scheduler, dict(options))
        observed = _epidemic_mean_time(
            engine, scheduler, dict(options), backend=backend
        )
        assert observed == pytest.approx(reference, rel=0.35), (
            engine,
            scheduler,
            backend.name,
            observed,
            reference,
        )


# ---------------------------------------------------------------------------
# Coverage declaration: the grid's cells, as machine-readable literals
# ---------------------------------------------------------------------------

# `repro check` (rules M501/M502) and `repro engines --verify` cross-check
# these constants against the capability matrix without importing this
# module: every declared (engine, scheduler) and (array-engine, backend)
# cell must be listed here, and TestDeclaredCellCoverage below actually runs
# each listed cell.  Keep the literals in sync with any new scheduler policy,
# backend or engine — a mismatch fails the static-analysis CI job.

EXERCISED_CELLS = (
    ("agent", "sequential"),
    ("agent", "matching"),
    ("agent", "weighted"),
    ("agent", "two-block"),
    ("agent", "quiescing"),
    ("count", "sequential"),
    ("count", "state-weighted"),
    ("batched", "sequential"),
    ("batched", "state-weighted"),
    ("vector", "matching"),
    ("vector", "weighted"),
    ("vector", "two-block"),
    ("vector", "quiescing"),
    ("multiscale", "sequential"),
)

EXERCISED_BACKEND_CELLS = (
    ("batched", "numpy"),
    ("batched", "numba"),
    ("batched", "native"),
    ("vector", "numpy"),
    ("vector", "numba"),
    ("vector", "native"),
    ("multiscale", "numpy"),
    ("multiscale", "numba"),
    ("multiscale", "native"),
)

#: Valid options for the policies that require (or deserve) non-defaults.
_CELL_OPTIONS = {
    "weighted": {"lazy_fraction": 0.5, "lazy_rate": 0.2},
    "two-block": {"intra": 0.9},
    "quiescing": {"fraction": 0.25, "start": 0.0, "duration": 2.0},
    "state-weighted": {"rates": (("I", 0.5),)},
}


class TestDeclaredCellCoverage:
    """Every declared capability cell runs; the literals match the matrix."""

    def test_declaration_matches_capability_matrix(self):
        from repro.staticcheck.contracts import (
            declared_backend_cells,
            declared_scheduler_cells,
        )

        assert set(EXERCISED_CELLS) == declared_scheduler_cells()
        assert set(EXERCISED_BACKEND_CELLS) == declared_backend_cells()

    @pytest.mark.parametrize("engine,scheduler", EXERCISED_CELLS)
    def test_scheduler_cell_runs(self, engine, scheduler):
        simulator = build_engine(
            engine,
            EpidemicProtocol(),
            32,
            seed=9,
            scheduler=scheduler,
            scheduler_options=dict(_CELL_OPTIONS.get(scheduler, {})),
        )
        elapsed = simulator.run_until(
            epidemic_completion_predicate, max_parallel_time=400, check_interval=8
        )
        assert elapsed > 0

    @pytest.mark.parametrize("engine,backend_name", EXERCISED_BACKEND_CELLS)
    def test_backend_cell_runs(self, engine, backend_name):
        from repro.backend import get_backend

        backend = get_backend(backend_name)
        if backend_name == "native" and not backend.available():
            pytest.skip(backend.unavailable_reason() or "native backend unavailable")
        # The numba backend runs interpreted when the JIT is not installed,
        # so it exercises the same kernel code either way.
        simulator = build_engine(
            engine, EpidemicProtocol(), 32, seed=9, backend=backend
        )
        elapsed = simulator.run_until(
            epidemic_completion_predicate, max_parallel_time=400, check_interval=8
        )
        assert elapsed > 0
