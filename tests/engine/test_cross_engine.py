"""Cross-engine equivalence: agent, count and batched engines agree.

The three engines implement the same stochastic process (uniform ordered
pairs, protocol transition distributions), so on identical workloads their
*statistics* must agree — completion-time quantiles, correctness rates,
fixed-time configuration levels — even though their random streams differ.
These tests run modest populations over many seeds and compare across
engines with tolerances sized by the sampling noise.
"""

from __future__ import annotations

import math
import statistics

import pytest

from repro.engine.selection import ENGINE_NAMES, build_engine
from repro.protocols.epidemic import (
    EpidemicProtocol,
    EpidemicState,
    epidemic_completion_predicate,
)
from repro.protocols.majority import (
    ApproximateMajorityProtocol,
    majority_consensus_predicate,
)

EPIDEMIC_N = 256
EPIDEMIC_RUNS = 30
MAJORITY_N = 300
MAJORITY_RUNS = 20


def _epidemic_completion_times(engine: str) -> list[float]:
    times = []
    for run_index in range(EPIDEMIC_RUNS):
        simulator = build_engine(
            engine, EpidemicProtocol(), EPIDEMIC_N, seed=1_000 + run_index
        )
        times.append(
            simulator.run_until(
                epidemic_completion_predicate,
                max_parallel_time=60 * math.log(EPIDEMIC_N),
                check_interval=max(EPIDEMIC_N // 8, 16),
            )
        )
    return times


@pytest.fixture(scope="module")
def epidemic_times() -> dict[str, list[float]]:
    return {engine: _epidemic_completion_times(engine) for engine in ENGINE_NAMES}


class TestEpidemicEquivalence:
    def test_all_engines_complete_every_run(self, epidemic_times):
        for engine, times in epidemic_times.items():
            assert len(times) == EPIDEMIC_RUNS, engine

    def test_mean_completion_times_agree(self, epidemic_times):
        means = {
            engine: statistics.fmean(times) for engine, times in epidemic_times.items()
        }
        reference = means["agent"]
        for engine, mean in means.items():
            # Epidemic completion concentrates near ln n; 25% covers the
            # Monte-Carlo noise of 30 runs with margin.
            assert mean == pytest.approx(reference, rel=0.25), means

    def test_median_completion_times_agree(self, epidemic_times):
        medians = {
            engine: statistics.median(times) for engine, times in epidemic_times.items()
        }
        reference = medians["agent"]
        for engine, median in medians.items():
            assert median == pytest.approx(reference, rel=0.3), medians

    def test_completion_times_within_theory_budget(self, epidemic_times):
        budget = 24 * math.log(EPIDEMIC_N)
        for engine, times in epidemic_times.items():
            assert statistics.fmean(times) < budget, engine


class TestFixedTimeConfiguration:
    def test_mean_infected_fraction_after_fixed_time(self):
        """After t=4 units the three engines report similar infection levels."""
        fractions = {}
        for engine in ENGINE_NAMES:
            level = []
            for run_index in range(EPIDEMIC_RUNS):
                simulator = build_engine(
                    engine, EpidemicProtocol(), EPIDEMIC_N, seed=2_000 + run_index
                )
                simulator.run_parallel_time(4)
                level.append(simulator.count(EpidemicState.INFECTED) / EPIDEMIC_N)
            fractions[engine] = statistics.fmean(level)
        reference = fractions["agent"]
        assert 0.0 < reference < 1.0  # mid-epidemic: the comparison is informative
        for engine, fraction in fractions.items():
            assert fraction == pytest.approx(reference, abs=0.12), fractions


class TestMajorityEquivalence:
    def test_majority_correctness_rate_agrees(self):
        """A 70/30 split must be won by the initial majority on every engine."""
        rates = {}
        times = {}
        for engine in ENGINE_NAMES:
            correct = 0
            consensus_times = []
            for run_index in range(MAJORITY_RUNS):
                simulator = build_engine(
                    engine,
                    ApproximateMajorityProtocol(x_fraction=0.7),
                    MAJORITY_N,
                    seed=3_000 + run_index,
                )
                consensus_times.append(
                    simulator.run_until(
                        majority_consensus_predicate,
                        max_parallel_time=500,
                        check_interval=max(MAJORITY_N // 8, 16),
                    )
                )
                if simulator.count(ApproximateMajorityProtocol.OPINION_Y) == 0:
                    correct += 1
            rates[engine] = correct / MAJORITY_RUNS
            times[engine] = statistics.fmean(consensus_times)
        for engine, rate in rates.items():
            assert rate >= 0.9, rates
        reference = times["agent"]
        for engine, mean_time in times.items():
            assert mean_time == pytest.approx(reference, rel=0.35), times
