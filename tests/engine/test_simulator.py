"""Tests for the agent-level simulation engine."""

from __future__ import annotations

import pytest

from repro.engine.simulator import Simulation, run_protocol
from repro.exceptions import ConvergenceError, SimulationError
from repro.protocols.epidemic import EpidemicProtocol, EpidemicState
from repro.protocols.max_propagation import MaxPropagationProtocol


def everyone_infected(simulation: Simulation) -> bool:
    return all(simulation.protocol.output(state) for state in simulation.states)


class TestConstruction:
    def test_initial_states_from_protocol(self):
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 10, seed=1)
        assert simulation.count_where(lambda s: s == EpidemicState.INFECTED) == 1
        assert simulation.count_where(lambda s: s == EpidemicState.SUSCEPTIBLE) == 9


class TestEventFreeFastPath:
    def test_fast_path_matches_stepped_run(self):
        """run_interactions without an event log reproduces step()-by-step runs."""
        protocol = EpidemicProtocol().as_agent_protocol()
        fast = Simulation(protocol, 64, seed=99)
        fast.run_interactions(500)
        stepped = Simulation(EpidemicProtocol().as_agent_protocol(), 64, seed=99)
        for _ in range(500):
            stepped.step()
        assert fast.states == stepped.states
        assert fast.metrics.interactions == stepped.metrics.interactions
        assert fast.metrics.null_interactions == stepped.metrics.null_interactions

    def test_fast_path_still_fires_probes(self):
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 32, seed=5)
        fired = []
        simulation.add_probe(lambda sim: fired.append(sim.metrics.interactions), interval=10)
        simulation.run_interactions(100)
        assert fired == list(range(10, 101, 10))

    def test_event_log_path_still_records(self):
        simulation = Simulation(
            EpidemicProtocol().as_agent_protocol(), 32, seed=6, event_log_capacity=16
        )
        simulation.run_interactions(40)
        assert len(simulation.event_log) == 16
        indices = [event.index for event in simulation.event_log]
        assert indices == list(range(25, 41))

    def test_explicit_initial_states(self):
        protocol = EpidemicProtocol().as_agent_protocol()
        states = [EpidemicState.INFECTED] * 3 + [EpidemicState.SUSCEPTIBLE] * 2
        simulation = Simulation(protocol, 5, seed=1, initial_states=states)
        assert simulation.count_where(lambda s: s == EpidemicState.INFECTED) == 3

    def test_explicit_initial_states_length_checked(self):
        protocol = EpidemicProtocol().as_agent_protocol()
        with pytest.raises(SimulationError):
            Simulation(protocol, 5, seed=1, initial_states=[EpidemicState.INFECTED])

    def test_rejects_tiny_population(self):
        with pytest.raises(SimulationError):
            Simulation(EpidemicProtocol().as_agent_protocol(), 1, seed=1)


class TestStepping:
    def test_step_counts_interactions(self):
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 6, seed=2)
        for _ in range(30):
            simulation.step()
        assert simulation.metrics.interactions == 30
        assert simulation.metrics.parallel_time == pytest.approx(5.0)

    def test_run_parallel_time(self):
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 6, seed=2)
        simulation.run_parallel_time(3.0)
        assert simulation.metrics.interactions == 18

    def test_run_interactions_rejects_negative(self):
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 6, seed=2)
        with pytest.raises(SimulationError):
            simulation.run_interactions(-1)

    def test_epidemic_eventually_infects_everyone(self):
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 50, seed=3)
        elapsed = simulation.run_until(everyone_infected, max_parallel_time=200)
        assert elapsed > 0
        assert everyone_infected(simulation)

    def test_run_until_raises_on_budget_exhaustion(self):
        # With zero budget the epidemic cannot possibly finish from one source.
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 50, seed=3)
        with pytest.raises(ConvergenceError):
            simulation.run_until(everyone_infected, max_parallel_time=0.02)

    def test_run_until_immediate_predicate(self):
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 10, seed=4)
        elapsed = simulation.run_until(lambda sim: True, max_parallel_time=1)
        assert elapsed == 0.0

    def test_reproducibility_same_seed(self):
        runs = []
        for _ in range(2):
            simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 30, seed=7)
            elapsed = simulation.run_until(everyone_infected, max_parallel_time=200)
            runs.append(elapsed)
        assert runs[0] == runs[1]


class TestMaxPropagation:
    def test_maximum_spreads_to_everyone(self):
        protocol = MaxPropagationProtocol(initial_value=lambda agent_id: agent_id)
        simulation = Simulation(protocol, 40, seed=5)
        simulation.run_until(
            lambda sim: all(state == 39 for state in sim.states),
            max_parallel_time=200,
        )
        assert set(simulation.states) == {39}

    def test_count_where(self):
        protocol = MaxPropagationProtocol(initial_value=lambda agent_id: agent_id % 2)
        simulation = Simulation(protocol, 10, seed=6)
        assert simulation.count_where(lambda value: value == 1) == 5


class TestInspection:
    def test_configuration_snapshot(self):
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 12, seed=8)
        configuration = simulation.configuration()
        assert configuration.size == 12
        assert configuration.count(EpidemicState.INFECTED) == 1

    def test_agent_state_bounds_checked(self):
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 5, seed=8)
        assert simulation.agent_state(0) == EpidemicState.INFECTED
        with pytest.raises(SimulationError):
            simulation.agent_state(5)

    def test_outputs_uses_protocol_output(self):
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 4, seed=9)
        outputs = simulation.outputs()
        assert outputs.count(True) == 1
        assert outputs.count(False) == 3

    def test_state_tracking_counts_distinct_states(self):
        protocol = MaxPropagationProtocol(initial_value=lambda agent_id: agent_id)
        simulation = Simulation(protocol, 10, seed=10, track_states=True)
        simulation.run_parallel_time(20)
        assert simulation.metrics.distinct_states is not None
        assert 1 <= simulation.metrics.distinct_states <= 10

    def test_report_contains_outputs_and_metrics(self):
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 10, seed=11)
        detector = simulation.add_convergence_detector(everyone_infected)
        simulation.run_until(everyone_infected, max_parallel_time=200)
        report = simulation.report(detector)
        assert report.population_size == 10
        assert len(report.outputs) == 10
        assert report.interactions == simulation.metrics.interactions
        assert report.as_dict()["population_size"] == 10


class TestProbes:
    def test_probe_fires_on_interval(self):
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 10, seed=12)
        calls = []
        simulation.add_probe(lambda sim: calls.append(sim.metrics.interactions), interval=5)
        simulation.run_interactions(23)
        assert calls == [5, 10, 15, 20]

    def test_convergence_detector_records_first_holding_point(self):
        simulation = Simulation(EpidemicProtocol().as_agent_protocol(), 20, seed=13)
        detector = simulation.add_convergence_detector(everyone_infected, interval=5)
        simulation.run_parallel_time(100)
        assert detector.converged
        assert detector.convergence_interaction is not None
        assert detector.convergence_time(20) == pytest.approx(
            detector.convergence_interaction / 20
        )


class TestRunProtocolHelper:
    def test_run_protocol_returns_simulation_and_time(self):
        simulation, elapsed = run_protocol(
            EpidemicProtocol().as_agent_protocol(),
            population_size=20,
            predicate=everyone_infected,
            max_parallel_time=200,
            seed=14,
        )
        assert elapsed > 0
        assert everyone_infected(simulation)
