"""Tests for the CRN model: reactions, parsing, validation, initial counts."""

from __future__ import annotations

import pickle

import pytest

from repro.crn import CRN, Reaction, parse_reaction, parse_reactions
from repro.exceptions import SimulationError


class TestReaction:
    def test_parse_bimolecular_with_rate(self):
        reaction = parse_reaction("L + F -> L + L @ 2.0")
        assert reaction.reactants == ("L", "F")
        assert reaction.products == ("L", "L")
        assert reaction.rate == 2.0
        assert not reaction.is_unimolecular

    def test_parse_unimolecular_default_rate(self):
        reaction = parse_reaction("I -> R")
        assert reaction.reactants == ("I",)
        assert reaction.products == ("R",)
        assert reaction.rate == 1.0
        assert reaction.is_unimolecular

    def test_text_round_trips(self):
        reaction = parse_reaction("A + B -> B + U @ 0.5")
        assert parse_reaction(reaction.text()) == reaction

    @pytest.mark.parametrize(
        "text",
        [
            "A + B",  # no arrow
            "A + -> B + C",  # empty species
            "A + B -> C",  # arity mismatch (not conserving)
            "A + B + C -> A + B + C",  # trimolecular
            "A -> A",  # no-op
            "A + B -> A + B",  # no-op
            "A + B -> B + A",  # no-op: the swap changes no species count
            "A + B -> A + C @ nope",  # malformed rate
            "A + B -> A + C @ -1",  # non-positive rate
            "A + B -> A + C @ 0",  # zero rate
            "A B -> A C",  # species with whitespace
        ],
    )
    def test_malformed_reactions_rejected(self, text):
        with pytest.raises(SimulationError):
            parse_reaction(text)

    def test_non_numeric_rate_raises_simulation_error_not_value_error(self):
        # Regression: the arity/no-op error messages format the rate, so a
        # bad rate type must be rejected (as SimulationError) before any of
        # them renders — not crash with a ValueError from ':g' formatting.
        with pytest.raises(SimulationError, match="must be a number"):
            Reaction(("A",), ("B",), rate="abc")
        with pytest.raises(SimulationError, match="conserve"):
            Reaction(("A", "B"), ("A",), rate="1.0")

    def test_parse_block_skips_comments_and_blanks(self):
        reactions = parse_reactions(
            """
            S + I -> I + I @ 2.0   # infection
            ;
            I -> R                 # recovery
            """
        )
        assert [r.text() for r in reactions] == [
            "S + I -> I + I @ 2",
            "I -> R @ 1",
        ]

    def test_empty_block_rejected(self):
        with pytest.raises(SimulationError):
            parse_reactions("# nothing but a comment")


class TestCRN:
    def test_from_spec_and_species_order(self):
        crn = CRN.from_spec(
            ["S + I -> I + I", "I -> R"],
            name="sir",
            seeds={"I": 1},
            fractions={"S": 1.0},
        )
        assert crn.species() == ("S", "I", "R")
        assert crn.seeds == (("I", 1),)

    def test_duplicate_reaction_rejected(self):
        with pytest.raises(SimulationError, match="twice"):
            CRN.from_spec(
                ["A + B -> A + U @ 1", "A + B -> A + U @ 2"],
                fractions={"A": 1.0},
            )

    def test_needs_a_fraction_species(self):
        with pytest.raises(SimulationError, match="initial fraction"):
            CRN.from_spec(["A + B -> B + B"], seeds={"A": 3})

    def test_bad_fraction_rejected(self):
        with pytest.raises(SimulationError):
            CRN.from_spec(["A + B -> B + B"], fractions={"A": -0.5})

    def test_bad_seed_rejected(self):
        with pytest.raises(SimulationError):
            CRN.from_spec(
                ["A + B -> B + B"], seeds={"A": 1.5}, fractions={"B": 1.0}
            )

    def test_initial_counts_sum_to_population(self):
        crn = CRN.from_spec(
            ["A + B -> A + U", "A + U -> A + A", "B + U -> B + B"],
            fractions={"A": 0.52, "B": 0.48},
        )
        for n in (2, 7, 100, 12345):
            counts = crn.initial_counts(n)
            assert sum(counts.values()) == n
        counts = crn.initial_counts(10_000)
        assert counts == {"A": 5200, "B": 4800}

    def test_initial_counts_seeds_first(self):
        crn = CRN.from_spec(
            ["I + S -> I + I"], seeds={"I": 3}, fractions={"S": 1.0}
        )
        assert crn.initial_counts(100) == {"I": 3, "S": 97}
        with pytest.raises(SimulationError, match="seeds"):
            crn.initial_counts(2)

    def test_is_conserved(self):
        sir = CRN.from_spec(
            ["S + I -> I + I @ 2", "I -> R"],
            seeds={"I": 1},
            fractions={"S": 1.0},
        )
        assert sir.is_conserved({"S": 1, "I": 1, "R": 1})
        assert not sir.is_conserved({"S": 1, "I": 1})  # R breaks the invariant

    def test_canonical_is_sensitive_to_rates_and_init(self):
        base = CRN.from_spec(["L + L -> L + F @ 1"], fractions={"L": 1.0})
        faster = CRN.from_spec(["L + L -> L + F @ 2"], fractions={"L": 1.0})
        seeded = CRN.from_spec(
            ["L + L -> L + F @ 1"], seeds={"F": 1}, fractions={"L": 1.0}
        )
        assert base.canonical() != faster.canonical()
        assert base.canonical() != seeded.canonical()
        same = CRN.from_spec(["L + L -> L + F @ 1"], fractions={"L": 1.0})
        assert base.canonical() == same.canonical()

    def test_picklable_and_hashable(self):
        crn = CRN.from_spec(
            ["S + I -> I + I @ 2", "I -> R"], seeds={"I": 1}, fractions={"S": 1}
        )
        assert pickle.loads(pickle.dumps(crn)) == crn
        assert isinstance(hash(crn), int)
