"""Tests for the exact Gillespie SSA reference."""

from __future__ import annotations

import pytest

from repro.crn import CRN, simulate_ssa
from repro.exceptions import SimulationError


def leader() -> CRN:
    return CRN.from_spec(["L + L -> L + F"], name="leader", fractions={"L": 1.0})


class TestSimulateSSA:
    def test_leader_absorbs_at_one_leader(self):
        result = simulate_ssa(leader(), 60, sample_times=[1e6], seed=0)
        assert result.absorbed
        assert result.at(0) == {"L": 1, "F": 59}
        # Exactly n - 1 duels absorb the all-leader configuration.
        assert result.reactions_fired == 59

    def test_counts_conserve_population(self):
        crn = CRN.from_spec(
            ["S + I -> I + I @ 2", "I -> R"], seeds={"I": 2}, fractions={"S": 1}
        )
        result = simulate_ssa(crn, 80, sample_times=[0.5, 2.0, 8.0, 64.0], seed=3)
        for position in range(4):
            assert sum(result.at(position).values()) == 80

    def test_sampling_is_monotone_for_one_way_epidemic(self):
        crn = CRN.from_spec(["I + S -> I + I"], seeds={"I": 1}, fractions={"S": 1})
        result = simulate_ssa(crn, 100, sample_times=[1, 2, 4, 8, 32], seed=7)
        infected = result.counts["I"]
        assert list(infected) == sorted(infected)
        assert infected[-1] == 100  # epidemic complete well before t = 32

    def test_reproducible_per_seed(self):
        crn = CRN.from_spec(
            ["S + I -> I + I @ 2", "I -> R"], seeds={"I": 1}, fractions={"S": 1}
        )
        first = simulate_ssa(crn, 50, sample_times=[1.0, 5.0], seed=11)
        second = simulate_ssa(crn, 50, sample_times=[1.0, 5.0], seed=11)
        assert first.counts == second.counts
        assert first.reactions_fired == second.reactions_fired

    def test_invalid_sample_times_rejected(self):
        for times in ([], [2.0, 1.0], [-1.0]):
            with pytest.raises(SimulationError):
                simulate_ssa(leader(), 10, sample_times=times, seed=0)
