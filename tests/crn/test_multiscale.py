"""Multiscale engine: regime switching, clamping, conservation, distribution.

The engine trades exactness for count-bound cost, so its tests target the
places the approximation can go wrong rather than bitwise trajectories:

- the :class:`RegimeController` must not thrash at thresholds (hysteresis),
- binomial clamping must keep counts non-negative under a stiff network,
- the exact <-> tau-leap <-> ODE handoffs must conserve the population,
- and tau-leap statistics must match the exact SSA reference in
  distribution at overlapping sizes (the same moment z-score methodology as
  ``benchmarks/bench_multiscale.py``, at test-sized budgets).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.crn import CRN, compile_crn, simulate_ssa
from repro.crn.multiscale import (
    DEFAULT_CRITICAL_THRESHOLD,
    DEFAULT_ODE_THRESHOLD,
    MultiscaleSimulator,
    RegimeController,
    integer_counts,
)
from repro.engine.selection import build_engine
from repro.exceptions import SimulationError
from repro.protocols.epidemic import EpidemicProtocol, EpidemicState

SIR = CRN.from_spec(
    ["S + I -> I + I @ 2.0", "I -> R @ 1.0"],
    name="sir",
    seeds={"I": 2},
    fractions={"S": 1.0},
)

#: Stiff fixture: the fast reaction burns B four orders of magnitude faster
#: than A is replenished, so naive Poisson leaps would overdraw B.
STIFF = CRN.from_spec(
    ["A + B -> C + C @ 1e4", "C + C -> A + B @ 1.0"],
    name="stiff",
    fractions={"A": 0.5, "B": 0.5},
)


class TestIntegerCounts:
    def test_preserves_total_with_fractional_parts(self):
        values = np.array([1.6, 2.7, 0.7])
        rounded = integer_counts(values, 5)
        assert rounded.sum() == 5
        # Largest remainders (.7, .7) win the two missing agents over .6.
        assert list(rounded) == [1.0, 3.0, 1.0]

    def test_reclaims_when_drift_pushes_sum_high(self):
        values = np.array([3.0, 3.0, 0.2])
        rounded = integer_counts(values, 5)
        assert rounded.sum() == 5
        assert rounded.min() >= 0

    def test_clips_negative_drift(self):
        values = np.array([-1e-9, 4.3, 0.7])
        rounded = integer_counts(values, 5)
        assert rounded.sum() == 5
        assert rounded.min() >= 0


class TestRegimeController:
    def test_threshold_validation(self):
        with pytest.raises(SimulationError):
            RegimeController(2, critical=0.0)
        with pytest.raises(SimulationError):
            RegimeController(2, critical=50.0, ode=50.0)
        with pytest.raises(SimulationError):
            RegimeController(2, hysteresis=0.5)

    def test_critical_flag_does_not_thrash_inside_the_band(self):
        # Oscillating between 15 and 25 around critical=20 with hysteresis 2:
        # recovery needs >= 40, so once critical the flag must stick.
        controller = RegimeController(1, critical=20.0, ode=1e5, hysteresis=2.0)
        active = np.array([True])
        flags = []
        for count in [15.0, 25.0] * 20:
            _, critical = controller.classify(np.array([count]), active)
            flags.append(bool(critical[0]))
        assert all(flags)

    def test_critical_flag_clears_past_the_hysteresis_band(self):
        controller = RegimeController(1, critical=20.0, ode=1e5, hysteresis=2.0)
        active = np.array([True])
        controller.classify(np.array([10.0]), active)
        assert controller.critical_mask()[0]
        _, critical = controller.classify(np.array([45.0]), active)
        assert not critical[0]

    def test_ode_flag_does_not_thrash_inside_the_band(self):
        # Oscillating between 0.9e5 and 1.5e5 around ode=1e5 with hysteresis
        # 2: exit needs < 5e4, so after entering, the regime must stick.
        controller = RegimeController(1, critical=20.0, ode=1e5, hysteresis=2.0)
        active = np.array([True])
        controller.classify(np.array([1.5e5]), active)
        assert controller.in_ode
        switches_after_entry = controller.switches
        for count in [0.9e5, 1.5e5] * 20:
            regime, _ = controller.classify(np.array([count]), active)
            assert regime == "ode"
        assert controller.switches == switches_after_entry

    def test_ode_exit_below_the_band(self):
        controller = RegimeController(1, critical=20.0, ode=1e5, hysteresis=2.0)
        active = np.array([True])
        controller.classify(np.array([2e5]), active)
        regime, _ = controller.classify(np.array([4e4]), active)
        assert regime == "stochastic" and not controller.in_ode
        assert controller.switches == 2

    def test_critical_channel_blocks_ode_entry(self):
        controller = RegimeController(2, critical=20.0, ode=1e5)
        active = np.array([True, True])
        regime, _ = controller.classify(np.array([2e5, 5.0]), active)
        assert regime == "stochastic"


class TestConstruction:
    def test_rejects_non_uniform_scheduler(self):
        # Through the selection seam: the capability matrix rejects first.
        with pytest.raises(SimulationError, match="not compatible"):
            build_engine(
                "multiscale", EpidemicProtocol(), 64, seed=0,
                scheduler="state-weighted",
            )
        # Direct construction: the engine explains *why* (mean-field model).
        with pytest.raises(SimulationError, match="uniform mixing"):
            MultiscaleSimulator(
                EpidemicProtocol(), 64, seed=0, scheduler="state-weighted"
            )

    def test_accepts_explicit_sequential_scheduler(self):
        engine = build_engine(
            "multiscale", EpidemicProtocol(), 64, seed=0, scheduler="sequential"
        )
        assert engine.regime == "stochastic"

    def test_leap_eps_bounds(self):
        for bad in (0.0, -0.1, 0.6):
            with pytest.raises(SimulationError, match="leap_eps"):
                MultiscaleSimulator(EpidemicProtocol(), 64, seed=0, leap_eps=bad)

    def test_regime_thresholds_validation(self):
        with pytest.raises(SimulationError, match="regime_thresholds"):
            MultiscaleSimulator(
                EpidemicProtocol(), 64, seed=0, regime_thresholds="nope"
            )
        with pytest.raises(SimulationError):
            MultiscaleSimulator(
                EpidemicProtocol(), 64, seed=0, regime_thresholds=(100.0, 50.0)
            )

    def test_unknown_engine_option_rejected(self):
        with pytest.raises(SimulationError, match="multiscale"):
            build_engine(
                "multiscale", EpidemicProtocol(), 64, seed=0, batch_size=32
            )


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        runs = []
        for _ in range(2):
            engine = compile_crn(SIR).build("multiscale", 5000, seed=21)
            trace = engine.run_with_trace(4.0, samples=8)
            runs.append([dict(point.configuration.items()) for point in trace])
        assert runs[0] == runs[1]

    def test_leap_eps_changes_the_leap_schedule(self):
        # A tighter tolerance must take shorter leaps (and hence more of
        # them) over the same horizon.
        leaps = []
        for eps in (0.05, 0.01):
            engine = compile_crn(SIR).build(
                "multiscale", 50_000, seed=21, leap_eps=eps
            )
            engine.run_parallel_time(8.0)
            leaps.append(engine.regime_stats()["leaps"])
        assert leaps[1] > leaps[0]


class TestStiffClamping:
    """Counts must never go negative when leaps press against headroom."""

    def test_counts_stay_non_negative_and_conserved(self):
        n = 4000
        # critical=1 disables the exact fallback almost everywhere, forcing
        # the binomial clamp / halve-and-redraw path to do the work.
        engine = compile_crn(STIFF).build(
            "multiscale", n, seed=5, regime_thresholds=(1.0, 1e7)
        )
        for _ in range(50):
            engine.run_parallel_time(0.02)
            counts = dict(engine.configuration().items())
            assert all(count >= 0 for count in counts.values())
            assert sum(counts.values()) == n

    def test_aggressive_eps_still_clamps(self):
        n = 2000
        engine = compile_crn(STIFF).build(
            "multiscale", n, seed=9, leap_eps=0.5, regime_thresholds=(1.0, 1e7)
        )
        engine.run_parallel_time(1.0)
        counts = dict(engine.configuration().items())
        assert all(count >= 0 for count in counts.values())
        assert sum(counts.values()) == n


class TestRegimeHandoffs:
    """Exact <-> tau-leap <-> ODE transitions preserve the population."""

    def test_epidemic_crosses_all_regimes_and_conserves_n(self):
        n = 2_000_000
        engine = build_engine(
            "multiscale", EpidemicProtocol(), n, seed=3,
            regime_thresholds=(DEFAULT_CRITICAL_THRESHOLD, 1e4),
        )
        for _ in range(40):
            engine.run_parallel_time(1.0)
            assert sum(count for _, count in engine.configuration().items()) == n
        stats = engine.regime_stats()
        # One infected seed -> exact; growth -> leaps; bulk -> ODE; and the
        # S-exhaustion endgame must hand control back out of the ODE.
        assert stats["exact_events"] > 0
        assert stats["leaps"] > 0
        assert stats["ode_steps"] > 0
        assert stats["regime_switches"] >= 2
        assert engine.count(EpidemicState.INFECTED) == n

    def test_interactions_reports_effective_work(self):
        engine = build_engine("multiscale", EpidemicProtocol(), 1000, seed=0)
        engine.run_interactions(2500)
        assert engine.interactions == 2500
        assert engine.parallel_time == pytest.approx(2.5)

    def test_absorbed_system_jumps_the_clock(self):
        engine = build_engine("multiscale", EpidemicProtocol(), 500, seed=1)
        time = engine.run_until(
            lambda e: e.count(EpidemicState.INFECTED) == 500,
            max_parallel_time=200.0,
        )
        engine.run_parallel_time(100.0)
        assert engine.parallel_time == pytest.approx(time + 100.0)
        assert engine.count(EpidemicState.INFECTED) == 500


class TestDistributionVsSSA:
    """Tau-leap moments must match the exact SSA at overlapping sizes."""

    @staticmethod
    def _z(sample_a, sample_b):
        mean_a, mean_b = np.mean(sample_a), np.mean(sample_b)
        var_a = np.var(sample_a, ddof=1) / len(sample_a)
        var_b = np.var(sample_b, ddof=1) / len(sample_b)
        return abs(mean_a - mean_b) / math.sqrt(var_a + var_b)

    def test_sir_infected_moments_match(self):
        n, chem_time, runs = 2000, 2.0, 25
        compiled = compile_crn(SIR)
        horizon = compiled.rate_scale * chem_time
        leap_counts = []
        for seed in range(runs):
            engine = compiled.build("multiscale", n, seed=seed)
            engine.run_parallel_time(horizon)
            leap_counts.append(engine.count("I"))
        ssa_counts = [
            simulate_ssa(SIR, n, [chem_time], seed=1000 + seed).counts["I"][0]
            for seed in range(runs)
        ]
        assert self._z(leap_counts, ssa_counts) < 4.0

    def test_ode_means_match_tau_leap_at_large_n(self):
        # As n grows the ODE limit must reproduce tau-leap means: run the
        # same epidemic with the ODE regime enabled vs disabled and compare
        # the infected fraction at a fixed time.
        n, horizon = 1_000_000, 12.0
        fractions = []
        for ode_threshold in (1e4, 1e12):
            engine = build_engine(
                "multiscale", EpidemicProtocol(), n, seed=2,
                regime_thresholds=(DEFAULT_CRITICAL_THRESHOLD, ode_threshold),
            )
            engine.run_parallel_time(horizon)
            fractions.append(engine.count(EpidemicState.INFECTED) / n)
        assert abs(fractions[0] - fractions[1]) < 0.05

    def test_default_ode_threshold_exceeds_critical(self):
        assert DEFAULT_ODE_THRESHOLD > DEFAULT_CRITICAL_THRESHOLD
