"""Tests for the CRN workload library and its harness integration."""

from __future__ import annotations

import pytest

from repro.crn import CRN, CRN_WORKLOADS, compile_crn, get_crn_workload
from repro.crn.library import single_leader_predicate
from repro.exceptions import SimulationError
from repro.harness.parallel import (
    KIND_CRN,
    TrialSpec,
    build_crn_trials,
    run_trial,
    run_trials,
)


class TestLibrary:
    def test_expected_networks_registered(self):
        assert {
            "approximate-majority",
            "epidemic",
            "sir",
            "predator-prey",
            "leader",
        } <= set(CRN_WORKLOADS)

    def test_unknown_workload_rejected(self):
        with pytest.raises(SimulationError, match="unknown CRN workload"):
            get_crn_workload("nope")

    @pytest.mark.parametrize("name", sorted(CRN_WORKLOADS))
    def test_every_workload_compiles_in_both_modes(self, name):
        workload = get_crn_workload(name)
        for mode in ("uniform", "thinned"):
            compiled = compile_crn(workload.crn, mode=mode)
            compiled.protocol.validate()
        assert workload.crn.is_conserved(
            {species: 1 for species in workload.crn.species()}
        )
        assert workload.default_chemical_budget(workload.default_population) > 0

    @pytest.mark.parametrize("name", ["approximate-majority", "epidemic", "leader"])
    def test_workloads_converge_at_small_n(self, name):
        workload = get_crn_workload(name)
        compiled = compile_crn(workload.crn)
        simulator = compiled.build("count", 100, seed=4)
        simulator.run_until(
            workload.predicate,
            max_parallel_time=compiled.to_parallel_time(
                workload.default_chemical_budget(100)
            ),
        )
        assert workload.predicate(simulator)

    def test_predator_prey_conserves_and_oscillates(self):
        workload = get_crn_workload("predator-prey")
        compiled = compile_crn(workload.crn)
        simulator = compiled.build("batched", 3_000, seed=1)
        simulator.run_parallel_time(compiled.to_parallel_time(10.0))
        assert simulator.configuration().size == 3_000
        # Well before any extinction at this n, all three species coexist.
        assert all(simulator.count(s) > 0 for s in ("G", "R", "F"))


class TestCRNTrials:
    def test_build_and_run_registered_workload(self):
        specs = build_crn_trials([80, 120], 2, "epidemic", engine="count", base_seed=3)
        assert len(specs) == 4
        assert all(spec.kind == KIND_CRN for spec in specs)
        outcome = run_trials(specs, workers=1)
        assert all(record.converged for record in outcome.records)
        record = outcome.records[0]
        assert record.extra["crn"] == "epidemic"
        assert record.extra["crn_mode"] == "uniform"
        assert record.extra["counts"] == {"I": 80}
        assert record.extra["chemical_time"] == pytest.approx(
            record.convergence_time, rel=1e-9
        )  # epidemic rate scale is 1

    def test_parallel_workers_match_serial(self):
        specs = build_crn_trials([60], 4, "approximate-majority", engine="batched")
        serial = run_trials(specs, workers=1).records
        parallel = run_trials(specs, workers=2).records
        assert [r.convergence_time for r in serial] == [
            r.convergence_time for r in parallel
        ]

    def test_adhoc_network_needs_predicate_and_budget(self):
        crn = CRN.from_spec(["L + L -> L + F"], fractions={"L": 1.0})
        with pytest.raises(SimulationError, match="predicate"):
            build_crn_trials([50], 1, crn)
        with pytest.raises(SimulationError, match="budget"):
            build_crn_trials([50], 1, crn, predicate=single_leader_predicate)
        specs = build_crn_trials(
            [50],
            1,
            crn,
            predicate=single_leader_predicate,
            max_chemical_time=500.0,
        )
        record = run_trial(specs[0])
        assert record.converged
        assert record.extra["counts"]["L"] == 1

    def test_thinned_mode_flows_through(self):
        specs = build_crn_trials([60], 1, "leader", engine="count", mode="thinned")
        record = run_trial(specs[0])
        assert record.converged
        assert record.extra["crn_mode"] == "thinned"
        assert "chemical_time" not in record.extra

    def test_spec_validation(self):
        crn = CRN.from_spec(["L + L -> L + F"], fractions={"L": 1.0})
        common = dict(
            kind=KIND_CRN,
            population_size=50,
            size_index=0,
            run_index=0,
            crn=crn,
            predicate=single_leader_predicate,
        )
        with pytest.raises(SimulationError, match="thinned"):
            TrialSpec(**{**common, "crn_mode": "thinned", "engine": "vector"})
        with pytest.raises(SimulationError, match="lowering mode"):
            TrialSpec(**{**common, "crn_mode": "warp"})
        with pytest.raises(SimulationError, match="scheduler"):
            TrialSpec(**{**common, "scheduler": "sequential"})
        with pytest.raises(SimulationError, match="network itself"):
            TrialSpec(**{**common, "crn": "leader"})
        with pytest.raises(SimulationError, match="predicate"):
            TrialSpec(**{k: v for k, v in common.items() if k != "predicate"})
        with pytest.raises(SimulationError, match="kind='crn'"):
            TrialSpec(
                kind="finite-state",
                population_size=50,
                size_index=0,
                run_index=0,
                protocol="epidemic",
                crn=crn,
            )
