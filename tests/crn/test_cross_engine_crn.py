"""Cross-validation: engine lowerings vs the exact SSA, in distribution.

The acceptance test of the CRN front-end: at small ``n``, trajectory
statistics of the count/batched engines running a lowered 3-species CRN
must match the exact Gillespie reference — the uniform lowering in *time*
(sampling an engine at parallel time ``Gamma * t`` is sampling the chain at
chemical time ``t``) and the thinned lowering in its *jump chain*
(absorption statistics such as the SIR final size are clock-independent).

Everything is deterministic per seed, so the z-score comparisons are exact
regression tests, not flaky statistical ones.
"""

from __future__ import annotations

import math

import pytest

from repro.crn import CRN, compile_crn, simulate_ssa
from repro.crn.library import epidemic_extinct_predicate

#: The 3-species network under test: SIR with unimolecular recovery.
SIR = CRN.from_spec(
    ["S + I -> I + I @ 2.0", "I -> R @ 1.0"],
    name="sir",
    seeds={"I": 2},
    fractions={"S": 1.0},
)
POPULATION = 60
SAMPLE_TIMES = (2.0, 6.0, 12.0)
ENGINE_RUNS = 64
SSA_RUNS = 128


def _mean_std(values):
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / max(1, len(values) - 1)
    return mean, math.sqrt(variance)


def _z_score(sample_a, sample_b):
    mean_a, std_a = _mean_std(sample_a)
    mean_b, std_b = _mean_std(sample_b)
    spread = math.sqrt(
        std_a**2 / len(sample_a) + std_b**2 / len(sample_b)
    )
    return (mean_a - mean_b) / max(spread, 1e-9)


def _engine_recovered_trajectories(engine: str, runs: int) -> list[list[int]]:
    """Counts of R at each sample time, one list per run (uniform lowering)."""
    compiled = compile_crn(SIR)
    trajectories = []
    for run in range(runs):
        simulator = compiled.build(engine, POPULATION, seed=1000 + run)
        previous = 0.0
        row = []
        for chemical_time in SAMPLE_TIMES:
            target = compiled.to_parallel_time(chemical_time)
            simulator.run_parallel_time(target - previous)
            previous = target
            row.append(simulator.count("R"))
        trajectories.append(row)
    return trajectories


@pytest.fixture(scope="module")
def ssa_recovered() -> list[list[int]]:
    return [
        list(simulate_ssa(SIR, POPULATION, SAMPLE_TIMES, seed=5000 + run).counts["R"])
        for run in range(SSA_RUNS)
    ]


class TestUniformLoweringMatchesSSAInTime:
    @pytest.mark.parametrize("engine", ["count", "batched", "agent"])
    def test_recovered_count_moments_match(self, engine, ssa_recovered):
        trajectories = _engine_recovered_trajectories(engine, ENGINE_RUNS)
        for position, chemical_time in enumerate(SAMPLE_TIMES):
            engine_sample = [row[position] for row in trajectories]
            ssa_sample = [row[position] for row in ssa_recovered]
            z = _z_score(engine_sample, ssa_sample)
            assert abs(z) < 4.0, (
                f"{engine} engine R-count at chemical time {chemical_time} "
                f"deviates from SSA: z = {z:.2f} "
                f"(engine mean {_mean_std(engine_sample)[0]:.2f}, "
                f"SSA mean {_mean_std(ssa_sample)[0]:.2f})"
            )

    def test_population_is_conserved_along_the_way(self):
        compiled = compile_crn(SIR)
        simulator = compiled.build("batched", POPULATION, seed=2)
        simulator.run_parallel_time(compiled.to_parallel_time(SAMPLE_TIMES[-1]))
        assert simulator.configuration().size == POPULATION


class TestThinnedLoweringMatchesSSAJumpChain:
    @pytest.mark.parametrize("engine", ["count", "batched"])
    def test_final_epidemic_size_distribution_matches(self, engine):
        # The SIR final size (everyone the infection ever reached) is a
        # jump-chain statistic: it does not depend on the clock, so the
        # thinned lowering must reproduce it even though its event-clock
        # times differ from chemical time.
        compiled = compile_crn(SIR, mode="thinned")
        finals = []
        for run in range(ENGINE_RUNS):
            simulator = compiled.build(engine, POPULATION, seed=3000 + run)
            simulator.run_until(
                epidemic_extinct_predicate,
                max_parallel_time=10_000.0,
                check_interval=POPULATION,
            )
            finals.append(simulator.count("R"))
        ssa_finals = [
            simulate_ssa(SIR, POPULATION, [10_000.0], seed=7000 + run).at(0)["R"]
            for run in range(SSA_RUNS)
        ]
        z = _z_score(finals, ssa_finals)
        assert abs(z) < 4.0, (
            f"thinned {engine} final size deviates from SSA: z = {z:.2f}"
        )


class TestVectorEngineRunsTheSameNetwork:
    def test_leader_election_on_every_engine(self):
        # The vector engine's matching rounds agree with the sequential
        # schedulers only up to constant factors in time, so it is checked
        # for correctness (the absorbing configuration), not for the time
        # law.
        crn = CRN.from_spec(["L + L -> L + F"], name="leader", fractions={"L": 1.0})
        compiled = compile_crn(crn)
        for engine in ("agent", "count", "batched", "vector"):
            simulator = compiled.build(engine, 120, seed=9)
            simulator.run_until(
                lambda sim: sim.count("L") == 1, max_parallel_time=10_000.0
            )
            assert simulator.count("L") == 1
            assert simulator.count("F") == 119
