"""Tests for the CRN compiler: probabilities, rate scale, modes, lowering."""

from __future__ import annotations

import math

import pytest

from repro.crn import CRN, compile_crn
from repro.exceptions import SimulationError


def sir() -> CRN:
    return CRN.from_spec(
        ["S + I -> I + I @ 2.0", "I -> R @ 1.0"],
        name="sir",
        seeds={"I": 1},
        fractions={"S": 1.0},
    )


class TestUniformLowering:
    def test_rate_scale_is_max_ordered_pair_total(self):
        # T(I, S) = 2 (bimolecular, one orientation) + 1 (uni of receiver I).
        compiled = compile_crn(sir())
        assert compiled.rate_scale == 3.0
        assert compiled.time_exact
        assert compiled.scheduler_spec() is None

    def test_bimolecular_fires_in_both_orientations(self):
        compiled = compile_crn(sir())
        protocol = compiled.protocol
        # Receiver S, sender I: only the infection, probability 2/Gamma.
        (infection,) = protocol.transitions("S", "I")
        assert (infection.receiver_out, infection.sender_out) == ("I", "I")
        assert infection.probability == pytest.approx(2.0 / 3.0)
        # Receiver I, sender S: the reversed infection plus I's recovery.
        outcomes = {
            (t.receiver_out, t.sender_out): t.probability
            for t in protocol.transitions("I", "S")
        }
        assert outcomes[("I", "I")] == pytest.approx(2.0 / 3.0)
        assert outcomes[("R", "S")] == pytest.approx(1.0 / 3.0)

    def test_unimolecular_fires_for_every_sender(self):
        compiled = compile_crn(sir())
        protocol = compiled.protocol
        for sender in ("S", "I", "R"):
            outcomes = {
                (t.receiver_out, t.sender_out): t.probability
                for t in protocol.transitions("I", sender)
            }
            assert outcomes[("R", sender)] == pytest.approx(1.0 / 3.0)
        # The recovered state is inert as a receiver.
        assert protocol.transitions("R", "S") == ()

    def test_diagonal_pair_single_entry(self):
        crn = CRN.from_spec(["L + L -> L + F"], fractions={"L": 1.0})
        compiled = compile_crn(crn)
        assert compiled.rate_scale == 1.0
        (duel,) = compiled.protocol.transitions("L", "L")
        assert (duel.receiver_out, duel.sender_out) == ("L", "F")
        assert duel.probability == 1.0

    def test_generated_protocol_compiles_to_tables(self):
        table = compile_crn(sir()).protocol.compiled()
        assert table.num_states == 3
        assert table.reactive_pair_count() == 4  # (S,I), (I,S), (I,I), (I,R)

    def test_time_conversion_round_trip(self):
        compiled = compile_crn(sir())
        assert compiled.to_parallel_time(5.0) == pytest.approx(15.0)
        assert compiled.to_chemical_time(15.0) == pytest.approx(5.0)

    def test_rate_scale_override(self):
        compiled = compile_crn(sir(), rate_scale=6.0)
        assert compiled.rate_scale == 6.0
        (infection,) = compiled.protocol.transitions("S", "I")
        assert infection.probability == pytest.approx(2.0 / 6.0)
        with pytest.raises(SimulationError, match="below"):
            compile_crn(sir(), rate_scale=1.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError, match="mode"):
            compile_crn(sir(), mode="warp")


class TestThinnedLowering:
    def test_activity_rates_are_sqrt_of_peak_pair_totals(self):
        compiled = compile_crn(sir(), mode="thinned")
        rates = dict(compiled.state_rates)
        assert rates["S"] == pytest.approx(math.sqrt(3.0))
        assert rates["I"] == pytest.approx(math.sqrt(3.0))
        assert rates["R"] == pytest.approx(1.0)  # touched only by I's recovery
        spec = compiled.scheduler_spec()
        assert spec is not None and spec.name == "state-weighted"
        assert not compiled.time_exact

    def test_probabilities_scaled_by_rate_product(self):
        compiled = compile_crn(sir(), mode="thinned")
        protocol = compiled.protocol
        (infection,) = protocol.transitions("S", "I")
        assert infection.probability == pytest.approx(2.0 / 3.0)  # 2 / (r_S r_I)
        outcomes = {
            (t.receiver_out, t.sender_out): t.probability
            for t in protocol.transitions("I", "R")
        }
        # Recovery against an R sender: 1 / (r_I * r_R) = 1 / sqrt(3).
        assert outcomes[("R", "R")] == pytest.approx(1.0 / math.sqrt(3.0))

    def test_inert_species_keep_a_floor_rate(self):
        crn = CRN.from_spec(["L + L -> L + F"], fractions={"L": 1.0})
        compiled = compile_crn(crn, mode="thinned")
        rates = dict(compiled.state_rates)
        assert rates["L"] == pytest.approx(1.0)
        assert 0.0 < rates["F"] < rates["L"]

    def test_time_conversion_refused(self):
        compiled = compile_crn(sir(), mode="thinned")
        with pytest.raises(SimulationError, match="thinned"):
            compiled.to_chemical_time(1.0)

    def test_rate_scale_override_refused(self):
        with pytest.raises(SimulationError, match="uniform"):
            compile_crn(sir(), mode="thinned", rate_scale=10.0)

    def test_builds_only_on_count_level_engines(self):
        compiled = compile_crn(sir(), mode="thinned")
        compiled.build("count", 50, seed=0)
        compiled.build("batched", 50, seed=0)
        for engine in ("agent", "vector"):
            with pytest.raises(SimulationError, match="state-weighted"):
                compiled.build(engine, 50, seed=0)


class TestInitialConditions:
    def test_initial_configuration_matches_counts(self):
        compiled = compile_crn(sir())
        configuration = compiled.initial_configuration(100)
        assert configuration.count("I") == 1
        assert configuration.count("S") == 99
        assert configuration.size == 100

    def test_seed_style_initial_state_expressible(self):
        protocol = compile_crn(sir()).protocol
        assert protocol.initial_state(0) == "I"
        assert protocol.initial_state(1) == "S"
        assert protocol.initial_state(99) == "S"

    def test_multi_fraction_initial_state_needs_configuration(self):
        crn = CRN.from_spec(
            ["A + B -> A + A"], fractions={"A": 0.5, "B": 0.5}
        )
        protocol = compile_crn(crn).protocol
        with pytest.raises(SimulationError, match="initial_configuration"):
            protocol.initial_state(0)
        # The build path supplies the configuration, so engines still work.
        simulator = compile_crn(crn).build("count", 40, seed=1)
        assert simulator.count("A") == 20
        assert simulator.count("B") == 20

    def test_build_forwards_engine_options(self):
        simulator = compile_crn(sir()).build("batched", 64, seed=0, batch_size=4)
        assert simulator.batch_size == 4
        with pytest.raises(SimulationError):
            compile_crn(sir()).build("count", 64, seed=0, batch_size=4)
