"""Golden-stream pin of the exact SSA reference.

``simulate_ssa`` promises (module docstring) that its incremental
propensity bookkeeping is invisible: trajectories are bit-for-bit identical
to a naive full-recomputation Gillespie loop for any (network, n, seed).
These tests pin that contract with trajectories recorded from the
pre-optimisation implementation — any change to the per-event RNG
consumption (one ``exponential`` per step, one ``random`` per fired event),
to the propensity floating-point expressions, or to the reaction-order
re-summation of the total shows up as a hard mismatch here, not as a
silent statistical drift in the distribution-validation suites built on
top of the reference.
"""

from __future__ import annotations

import pytest

from repro.crn.library import CRN_WORKLOADS
from repro.crn.ssa import simulate_ssa

#: Sampled counts and event totals recorded from the full-recomputation
#: implementation at n=2000, sample times (0.5, 1, 2, 4), seed 42.
GOLDEN_N = 2000
GOLDEN_TIMES = (0.5, 1.0, 2.0, 4.0)
GOLDEN_SEED = 42
GOLDEN = {
    "approximate-majority": (
        {"A": (796, 745, 766, 1214), "B": (715, 649, 556, 270), "U": (489, 606, 678, 516)},
        6980,
    ),
    "epidemic": ({"I": (1, 1, 6, 326), "S": (1999, 1999, 1994, 1674)}, 325),
    "leader": ({"F": (659, 995, 1345, 1611), "L": (1341, 1005, 655, 389)}, 1611),
    "predator-prey": (
        {"F": (373, 369, 463, 484), "G": (674, 568, 424, 457), "R": (953, 1063, 1113, 1059)},
        5755,
    ),
    "sir": ({"I": (2, 2, 69, 686), "R": (0, 3, 27, 1076), "S": (1998, 1995, 1904, 238)}, 2837),
}


class TestGoldenStream:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_trajectory_matches_recorded_stream(self, name):
        result = simulate_ssa(
            CRN_WORKLOADS[name].crn, GOLDEN_N, GOLDEN_TIMES, seed=GOLDEN_SEED
        )
        counts, fired = GOLDEN[name]
        assert dict(result.counts) == counts
        assert result.reactions_fired == fired
        assert not result.absorbed

    def test_repeat_is_bitwise_identical(self):
        crn = CRN_WORKLOADS["sir"].crn
        first = simulate_ssa(crn, 500, GOLDEN_TIMES, seed=7)
        second = simulate_ssa(crn, 500, GOLDEN_TIMES, seed=7)
        assert first == second


class TestSampleGridInvariance:
    """Sampling consumes no randomness: refining the grid changes nothing.

    Only events draw from the generator, so two runs with the same seed but
    different sample grids fire the identical event sequence up to the
    shared horizon — the direct evidence that the incremental bookkeeping
    did not move any RNG call.
    """

    @pytest.mark.parametrize("name", ["sir", "approximate-majority"])
    def test_refined_grid_same_final_counts(self, name):
        crn = CRN_WORKLOADS[name].crn
        coarse = simulate_ssa(crn, 800, [4.0], seed=11)
        fine = simulate_ssa(crn, 800, [0.5, 1.0, 2.0, 3.0, 4.0], seed=11)
        assert coarse.at(0) == fine.at(4)
        assert coarse.reactions_fired == fine.reactions_fired
