"""Tests for the sub-exponential, epidemic, interaction, balls-and-bins and
protocol-level bounds (Appendices A, D, E and Section 3)."""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro.analysis.balls_and_bins import (
    count_survival_bound,
    empty_bins_bound,
    state_depletion_bound,
    survival_fraction,
)
from repro.analysis.epidemic_theory import (
    corollary_3_5_probability,
    epidemic_lower_tail,
    epidemic_time_bound,
    epidemic_upper_tail,
    expected_epidemic_time,
    subpopulation_epidemic_upper_tail,
)
from repro.analysis.error_bounds import (
    averaging_error_probability,
    convergence_time_probability,
    final_error_probability,
    log_size2_range,
    log_size2_range_probability,
    partition_deviation_probability,
    partition_within_third_probability,
    state_bound_probability,
    theorem_3_1_summary,
)
from repro.analysis.interaction_bounds import (
    expected_interactions,
    interaction_count_upper_tail,
    interactions_upper_bound,
    phase_clock_threshold,
)
from repro.analysis.subexponential import (
    average_additive_error_probability,
    corollary_d10_probability,
    required_sample_count,
    sub_exponential_mgf_bound,
    sum_of_maxima_tail,
)
from repro.exceptions import AnalysisError
from repro.rng import max_of_geometrics


class TestSubExponential:
    def test_mgf_bound_at_zero(self):
        assert sub_exponential_mgf_bound(0.0) == 1.0

    def test_mgf_bound_domain(self):
        with pytest.raises(AnalysisError):
            sub_exponential_mgf_bound(1.0, alpha=3.31, beta=2.0)

    def test_sum_tail_decreases_in_deviation(self):
        assert sum_of_maxima_tail(10, 200) < sum_of_maxima_tail(10, 80)

    def test_required_sample_count_matches_paper(self):
        """Corollary D.10: a = ln2 + 4 < 4.7 gives K = 4 log2 N."""
        for population in (100, 10_000):
            assert required_sample_count(population, additive_error=math.log(2) + 4) == (
                math.ceil(4 * math.log2(population))
            )

    def test_corollary_d10_bound_value(self):
        assert corollary_d10_probability(1_000, sample_count=40) == pytest.approx(0.002)

    def test_degraded_bound_when_k_too_small(self):
        assert average_additive_error_probability(1_000, 2, 4.0) == 1.0
        assert average_additive_error_probability(1_000, 2, 8.0) < 1.0

    def test_averaging_monte_carlo_respects_bound(self):
        """Averaging K maxima really does land within 4.7 of log2 N (Cor. D.10)."""
        population = 128
        sample_count = required_sample_count(population)
        rng = random.Random(17)
        failures = 0
        trials = 60
        for _ in range(trials):
            total = sum(
                max_of_geometrics(rng, population) for _ in range(sample_count)
            )
            if abs(total / sample_count - math.log2(population)) >= 4.7:
                failures += 1
        assert failures / trials <= 0.05  # bound is 2/N ~ 0.016

    def test_validation(self):
        with pytest.raises(AnalysisError):
            sum_of_maxima_tail(0, 10)
        with pytest.raises(AnalysisError):
            required_sample_count(1_000, additive_error=3.0)


class TestEpidemicTheory:
    def test_expected_time_close_to_ln_n(self):
        # (n-1)/n * H_{n-1} ~ ln n + gamma.
        assert expected_epidemic_time(10_000) == pytest.approx(
            math.log(10_000) + 0.5772, rel=0.01
        )

    def test_upper_tail_decreases_with_alpha(self):
        assert epidemic_upper_tail(1_000, 24) < epidemic_upper_tail(1_000, 8)

    def test_lower_tail_tiny_for_large_n(self):
        assert epidemic_lower_tail(10_000) < 1e-40

    def test_corollary_3_4_requires_enough_slack(self):
        assert subpopulation_epidemic_upper_tail(1_000, 1 / 3, alpha_u=12.0) == 1.0
        assert subpopulation_epidemic_upper_tail(1_000, 1 / 3, alpha_u=24.0) < 1.0

    def test_corollary_3_5_value(self):
        assert corollary_3_5_probability(1_000) == pytest.approx(27e-9)

    def test_time_bound_inverts_tail(self):
        n = 4_096
        budget = epidemic_time_bound(n, failure_probability=1e-3)
        alpha_u = budget / math.log(n)
        assert epidemic_upper_tail(n, alpha_u) <= 1e-3 * 1.01

    def test_validation(self):
        with pytest.raises(AnalysisError):
            expected_epidemic_time(1)
        with pytest.raises(AnalysisError):
            epidemic_time_bound(100, failure_probability=2.0)


class TestInteractionBounds:
    def test_expected_interactions_independent_of_n(self):
        assert expected_interactions(7.0) == 14.0

    def test_lemma_3_6_coefficient(self):
        assert interactions_upper_bound(24.0) == pytest.approx(2 * 24 + math.sqrt(288))

    def test_corollary_3_7_threshold_below_95(self):
        """The protocol's constant 95 dominates the Lemma 3.6 coefficient."""
        assert phase_clock_threshold(24.0) < 95

    def test_tail_probability_small_for_paper_constants(self):
        assert interaction_count_upper_tail(10_000, time_factor=24, count_factor=65) < 1e-2

    def test_tail_decreases_with_population(self):
        assert interaction_count_upper_tail(
            100_000, time_factor=24, count_factor=65
        ) < interaction_count_upper_tail(1_000, time_factor=24, count_factor=65)

    def test_domain_validation(self):
        with pytest.raises(AnalysisError):
            interactions_upper_bound(1.0)
        with pytest.raises(AnalysisError):
            interaction_count_upper_tail(100, time_factor=10, count_factor=100)


class TestBallsAndBins:
    def test_lemma_e1_bound_decreases_with_more_empty_bins(self):
        few = empty_bins_bound(1_000, 50, 1_000, 0.05)
        many = empty_bins_bound(1_000, 500, 1_000, 0.05)
        assert many < few < 1.0

    def test_lemma_e2_increases_with_time(self):
        assert state_depletion_bound(200, 1 / 81, 1.0) < state_depletion_bound(
            200, 1 / 81, 5.0
        )

    def test_corollary_e3_value(self):
        assert count_survival_bound(81) == pytest.approx(0.5)
        assert count_survival_bound(810) == pytest.approx(2**-10)

    def test_survival_fraction(self):
        assert survival_fraction() == pytest.approx(1 / 81)

    def test_empirical_depletion_respects_corollary_e3(self):
        """Simulate the worst case (every interaction consumes the state)."""
        n, k = 2_000, 500
        rng = random.Random(23)
        failures = 0
        trials = 30
        for _ in range(trials):
            remaining = set(range(k))
            for _ in range(n):  # one unit of parallel time = n interactions
                first = rng.randrange(n)
                second = rng.randrange(n - 1)
                if second >= first:
                    second += 1
                remaining.discard(first)
                remaining.discard(second)
            if len(remaining) <= k / 81:
                failures += 1
        assert failures == 0  # the bound 2^(-500/81) makes failure essentially impossible

    def test_validation(self):
        with pytest.raises(AnalysisError):
            empty_bins_bound(10, 20, 5, 0.25)
        with pytest.raises(AnalysisError):
            state_depletion_bound(10, 0.9, 1.0)


class TestProtocolLevelBounds:
    def test_partition_deviation_probability(self):
        n = 10_000
        loose = partition_deviation_probability(n, math.sqrt(n * math.log(n)))
        assert loose < 1e-7
        assert partition_deviation_probability(n, 0.0) == 1.0

    def test_partition_within_third(self):
        assert partition_within_third_probability(1_000) < 1e-20

    def test_log_size2_range_contains_log_n(self):
        lower, upper = log_size2_range(4_096)
        assert lower < math.log2(4_096) < upper

    def test_failure_probabilities_shrink_with_n(self):
        assert final_error_probability(10_000) < final_error_probability(100)
        assert convergence_time_probability(10_000) < convergence_time_probability(100)
        assert log_size2_range_probability(10_000) < log_size2_range_probability(100)
        assert state_bound_probability(10_000) < state_bound_probability(100)

    def test_headline_numbers(self):
        assert final_error_probability(900) == pytest.approx(0.01)
        assert convergence_time_probability(1_000) == pytest.approx(1e-6)

    def test_averaging_error_only_defined_for_paper_constant(self):
        assert averaging_error_probability(1_000) == pytest.approx(0.006)
        with pytest.raises(AnalysisError):
            averaging_error_probability(1_000, additive_error=3.0)

    def test_theorem_summary_keys(self):
        summary = theorem_3_1_summary(2_048, sample_count=50)
        assert summary["additive_error_claim"] == 5.7
        assert summary["error_probability_bound"] == pytest.approx(9 / 2_048)
        assert "averaging_failure" in summary
        assert summary["log_size2_range"][0] < 11 < summary["log_size2_range"][1]
