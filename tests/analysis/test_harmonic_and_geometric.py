"""Tests for harmonic numbers and the geometric-maximum analysis (Appendix D.2)."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.analysis.geometric import (
    exact_expected_maximum,
    expected_maximum_of_geometrics,
    expected_maximum_harmonic_form,
    geometric_pmf,
    likely_maximum_range,
    maximum_cdf,
    maximum_in_range_probability,
    maximum_lower_tail,
    maximum_two_sided_tail,
    maximum_upper_tail,
)
from repro.analysis.harmonic import euler_mascheroni, harmonic_number
from repro.exceptions import AnalysisError
from repro.rng import empirical_maximum_distribution


class TestHarmonic:
    def test_small_values_exact(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_asymptotic_branch_continuity(self):
        """The exact sum and the expansion agree where they hand over."""
        exact = sum(1.0 / k for k in range(1, 20_001))
        assert harmonic_number(20_000) == pytest.approx(exact, rel=1e-9)

    def test_growth_is_logarithmic(self):
        assert harmonic_number(10_000) - harmonic_number(1_000) == pytest.approx(
            math.log(10), rel=1e-3
        )

    def test_euler_mascheroni_value(self):
        assert euler_mascheroni() == pytest.approx(0.57721566, abs=1e-7)

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            harmonic_number(-1)


class TestGeometricDistribution:
    def test_pmf_sums_to_one(self):
        total = sum(geometric_pmf(value, 0.5) for value in range(1, 200))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_pmf_zero_below_support(self):
        assert geometric_pmf(0, 0.5) == 0.0

    def test_maximum_cdf_monotone(self):
        values = [maximum_cdf(t, population=100) for t in range(1, 30)]
        assert all(later >= earlier for earlier, later in zip(values, values[1:]))
        assert values[-1] == pytest.approx(1.0, abs=1e-3)


class TestExpectedMaximum:
    @pytest.mark.parametrize("population", [64, 256, 1024])
    def test_eisenberg_bracket_contains_exact_value(self, population):
        lower, upper = expected_maximum_of_geometrics(population)
        exact = exact_expected_maximum(population)
        assert lower <= exact <= upper

    def test_bracket_matches_paper_statement_for_fair_coins(self):
        """Lemma D.4: log2(N) + 1 < E[M] < log2(N) + 3/2 for N >= 50."""
        for population in (50, 500, 5_000):
            lower, upper = expected_maximum_of_geometrics(population)
            assert lower > math.log2(population) + 0.9
            assert upper < math.log2(population) + 1.6

    def test_monte_carlo_agreement(self):
        population = 512
        samples = empirical_maximum_distribution(seed=3, population=population, trials=600)
        mean = statistics.fmean(samples)
        assert mean == pytest.approx(exact_expected_maximum(population), abs=0.3)

    def test_harmonic_form_close_to_exact(self):
        assert expected_maximum_harmonic_form(1_000) == pytest.approx(
            exact_expected_maximum(1_000), abs=0.2
        )

    def test_validation(self):
        with pytest.raises(AnalysisError):
            exact_expected_maximum(0)
        with pytest.raises(AnalysisError):
            expected_maximum_of_geometrics(10, p=1.5)


class TestTailBounds:
    def test_two_sided_bound_dominates_monte_carlo(self):
        """Corollary D.6's 3.31 e^{-lambda/2} is a genuine upper bound."""
        population, trials = 200, 2_000
        samples = empirical_maximum_distribution(seed=5, population=population, trials=trials)
        expectation = exact_expected_maximum(population)
        for deviation in (2.0, 4.0, 6.0):
            empirical = sum(
                abs(sample - expectation) >= deviation for sample in samples
            ) / trials
            assert empirical <= maximum_two_sided_tail(deviation) + 0.02

    def test_upper_and_lower_tails_bounded_by_one(self):
        assert maximum_upper_tail(0.0) == 1.0
        assert maximum_lower_tail(0.0) <= 1.0

    def test_tails_decrease_with_deviation(self):
        assert maximum_upper_tail(6.0) < maximum_upper_tail(2.0)
        assert maximum_lower_tail(6.0) < maximum_lower_tail(2.0)
        assert maximum_two_sided_tail(8.0) < maximum_two_sided_tail(3.0)

    def test_lemma_d7_range_probability(self):
        assert maximum_in_range_probability(1_000) == pytest.approx(0.002)
        lower, upper = likely_maximum_range(1_000)
        assert lower < math.log2(1_000) < upper

    def test_lemma_d7_monte_carlo(self):
        """M lies in [log2 N - log2 ln N, 2 log2 N] in almost every trial."""
        population, trials = 256, 500
        samples = empirical_maximum_distribution(seed=7, population=population, trials=trials)
        lower, upper = likely_maximum_range(population)
        escapes = sum(not (lower <= sample <= upper) for sample in samples)
        assert escapes / trials < 0.05

    def test_validation(self):
        with pytest.raises(AnalysisError):
            maximum_upper_tail(-1.0)
        with pytest.raises(AnalysisError):
            likely_maximum_range(2)
