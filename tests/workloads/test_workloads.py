"""Tests for workload generators (initial configurations and size grids)."""

from __future__ import annotations

import os
from unittest import mock

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.initial_configurations import (
    all_identical_configuration,
    alpha_dense_random_configuration,
    leader_configuration,
    two_state_split_configuration,
)
from repro.workloads.populations import (
    figure2_sizes,
    geometric_sizes,
    parse_size_list,
    sizes_from_env,
)


class TestInitialConfigurations:
    def test_all_identical(self):
        config = all_identical_configuration("x", 50)
        assert config.count("x") == 50
        assert config.is_alpha_dense(1.0)

    def test_leader_configuration_not_dense(self):
        config = leader_configuration("L", "F", 100)
        assert config.count("L") == 1
        assert config.size == 100
        assert not config.is_alpha_dense(0.05)

    def test_leader_configuration_needs_two_agents(self):
        with pytest.raises(ConfigurationError):
            leader_configuration("L", "F", 1)

    def test_two_state_split(self):
        config = two_state_split_configuration("X", "Y", 100, first_fraction=0.7)
        assert config.count("X") == 70
        assert config.count("Y") == 30

    def test_two_state_split_never_empties_either_state(self):
        config = two_state_split_configuration("X", "Y", 10, first_fraction=0.99)
        assert config.count("Y") >= 1

    def test_two_state_split_validation(self):
        with pytest.raises(ConfigurationError):
            two_state_split_configuration("X", "Y", 100, first_fraction=0.0)

    def test_alpha_dense_random_configuration(self):
        config = alpha_dense_random_configuration(["a", "b", "c"], 300, alpha=0.1, seed=1)
        assert config.size == 300
        assert config.is_alpha_dense(0.1)

    def test_alpha_dense_random_configuration_infeasible(self):
        with pytest.raises(ConfigurationError):
            alpha_dense_random_configuration(["a", "b", "c"], 10, alpha=0.5)


class TestPopulationGrids:
    def test_geometric_sizes(self):
        assert geometric_sizes(100, 1600, factor=2) == [100, 200, 400, 800, 1600]

    def test_geometric_sizes_dedupes(self):
        sizes = geometric_sizes(2, 5, factor=1.3)
        assert sizes == sorted(set(sizes))

    def test_geometric_sizes_validation(self):
        with pytest.raises(ConfigurationError):
            geometric_sizes(1, 100)
        with pytest.raises(ConfigurationError):
            geometric_sizes(100, 10)
        with pytest.raises(ConfigurationError):
            geometric_sizes(10, 100, factor=1.0)

    def test_figure2_sizes_full_and_truncated(self):
        assert figure2_sizes() == [100, 1_000, 10_000, 100_000]
        assert figure2_sizes(max_size=5_000) == [100, 1_000]
        with pytest.raises(ConfigurationError):
            figure2_sizes(max_size=50)

    def test_parse_size_list(self):
        assert parse_size_list("100, 200,300") == [100, 200, 300]

    def test_parse_size_list_validation(self):
        with pytest.raises(ConfigurationError):
            parse_size_list("100,abc")
        with pytest.raises(ConfigurationError):
            parse_size_list("")
        with pytest.raises(ConfigurationError):
            parse_size_list("1")

    def test_sizes_from_env_default(self):
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop("REPRO_TEST_SIZES", None)
            assert sizes_from_env("REPRO_TEST_SIZES", [4, 8]) == [4, 8]

    def test_sizes_from_env_override(self):
        with mock.patch.dict(os.environ, {"REPRO_TEST_SIZES": "16,32"}):
            assert sizes_from_env("REPRO_TEST_SIZES", [4, 8]) == [16, 32]
