"""Tests for the compiled transition tables of finite-state protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.protocols.base import FunctionalFiniteStateProtocol, RandomizedTransition
from repro.protocols.compiled import compile_transition_table
from repro.protocols.epidemic import EpidemicProtocol, EpidemicState
from repro.protocols.leader_election import FiniteStateCounterTermination
from repro.protocols.majority import ApproximateMajorityProtocol


class TestEpidemicCompilation:
    def test_state_indexing_follows_declaration_order(self):
        table = compile_transition_table(EpidemicProtocol())
        assert table.states == (EpidemicState.INFECTED, EpidemicState.SUSCEPTIBLE)
        assert table.index[EpidemicState.INFECTED] == 0
        assert table.index[EpidemicState.SUSCEPTIBLE] == 1

    def test_reactive_pairs_of_bidirectional_epidemic(self):
        table = compile_transition_table(EpidemicProtocol(bidirectional=True))
        # (S, I) and (I, S) react; (I, I) and (S, S) are null.
        assert table.reactive_pair_count() == 2
        i, s = table.index[EpidemicState.INFECTED], table.index[EpidemicState.SUSCEPTIBLE]
        assert not table.is_null[s, i]
        assert not table.is_null[i, s]
        assert table.is_null[i, i]
        assert table.is_null[s, s]

    def test_outcomes_round_trip(self):
        protocol = EpidemicProtocol()
        table = compile_transition_table(protocol)
        outcomes = table.outcomes(EpidemicState.SUSCEPTIBLE, EpidemicState.INFECTED)
        assert outcomes == (
            RandomizedTransition(
                receiver_out=EpidemicState.INFECTED,
                sender_out=EpidemicState.INFECTED,
                probability=1.0,
            ),
        )

    def test_null_probability_complements_outcomes(self):
        table = compile_transition_table(ApproximateMajorityProtocol())
        total = table.outcome_probability.sum(axis=2) + table.null_probability
        assert np.allclose(total, 1.0)

    def test_compiled_method_on_protocol(self):
        assert EpidemicProtocol().compiled().num_states == 2


class TestRandomizedAndIdentityFolding:
    def test_identity_outcomes_fold_into_null_mass(self):
        protocol = FunctionalFiniteStateProtocol(
            state_set=("a", "b"),
            transition_map={
                ("a", "b"): [("a", "b", 0.75), ("b", "b", 0.25)],
            },
            initial="a",
        )
        table = compile_transition_table(protocol)
        i, j = table.index["a"], table.index["b"]
        assert table.outcome_count[i, j] == 1
        assert table.null_probability[i, j] == pytest.approx(0.75)

    def test_duplicate_outcomes_are_merged(self):
        protocol = FunctionalFiniteStateProtocol(
            state_set=("a", "b"),
            transition_map={
                ("a", "a"): [("a", "b", 0.25), ("a", "b", 0.25)],
            },
            initial="a",
        )
        table = compile_transition_table(protocol)
        i = table.index["a"]
        assert table.outcome_count[i, i] == 1
        assert table.outcome_probability[i, i, 0] == pytest.approx(0.5)
        assert table.null_probability[i, i] == pytest.approx(0.5)

    def test_residual_mass_is_never_negative(self):
        protocol = FunctionalFiniteStateProtocol(
            state_set=("a", "b"),
            transition_map={("a", "b"): [("b", "a", 1.0)]},
            initial="a",
        )
        table = compile_transition_table(protocol)
        assert (table.null_probability >= 0.0).all()


class TestValidation:
    class _BadStates(EpidemicProtocol):
        def states(self):
            return (EpidemicState.INFECTED, EpidemicState.INFECTED)

    class _EscapingOutput(EpidemicProtocol):
        def transitions(self, receiver, sender):
            return (RandomizedTransition(receiver_out="ghost", sender_out=sender),)

    def test_duplicate_states_rejected(self):
        with pytest.raises(ProtocolError):
            compile_transition_table(self._BadStates())

    def test_unknown_output_state_rejected(self):
        with pytest.raises(ProtocolError, match="outside the declared state set"):
            compile_transition_table(self._EscapingOutput())

    def test_arrays_are_read_only(self):
        table = compile_transition_table(EpidemicProtocol())
        with pytest.raises(ValueError):
            table.outcome_probability[0, 0, 0] = 0.5


class TestCounterTerminationCompiles:
    def test_state_space_is_closed_under_transitions(self):
        protocol = FiniteStateCounterTermination(counter_threshold=4)
        protocol.validate()
        table = compile_transition_table(protocol)
        # counter 0..threshold-1 x terminated in (F, T) plus the
        # (threshold, terminated) corner, for candidate and follower alike.
        assert table.num_states == 2 * (2 * 4 + 1)
        assert table.reactive_pair_count() > 0
