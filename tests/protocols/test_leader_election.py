"""Tests for the leader-election baselines."""

from __future__ import annotations

import pytest

from repro.engine.simulator import Simulation
from repro.exceptions import ProtocolError
from repro.protocols.leader_election import (
    CounterLeaderState,
    NonuniformCounterLeaderElection,
    PairwiseEliminationLeaderElection,
)


class TestPairwiseElimination:
    def test_stabilizes_to_single_leader(self):
        protocol = PairwiseEliminationLeaderElection()
        simulation = Simulation(protocol, 60, seed=1)
        simulation.run_until(
            lambda sim: sim.count_where(lambda s: s == protocol.LEADER) == 1,
            max_parallel_time=2_000,
        )
        assert simulation.count_where(lambda s: s == protocol.LEADER) == 1

    def test_leader_count_never_increases(self):
        protocol = PairwiseEliminationLeaderElection()
        simulation = Simulation(protocol, 40, seed=2)
        previous = 40
        for _ in range(30):
            simulation.run_parallel_time(1)
            current = simulation.count_where(lambda s: s == protocol.LEADER)
            assert current <= previous
            assert current >= 1
            previous = current

    def test_is_uniform(self):
        assert PairwiseEliminationLeaderElection.is_uniform is True


class TestNonuniformCounterProtocol:
    def test_threshold_validation(self):
        with pytest.raises(ProtocolError):
            NonuniformCounterLeaderElection(counter_threshold=0)

    def test_not_uniform(self):
        assert NonuniformCounterLeaderElection(10).is_uniform is False

    def test_initial_state(self):
        protocol = NonuniformCounterLeaderElection(5)
        state = protocol.initial_state(3)
        assert state == CounterLeaderState(candidate=True, counter=0, terminated=False)

    def test_counter_reaching_threshold_produces_termination_signal(self, rng):
        protocol = NonuniformCounterLeaderElection(counter_threshold=2, eliminate_on_meeting=False)
        first = protocol.initial_state(0)
        second = protocol.initial_state(1)
        first, second = protocol.transition(first, second, rng)
        assert first.counter == 1 and not first.terminated
        first, second = protocol.transition(first, second, rng)
        assert first.terminated

    def test_termination_signal_spreads(self):
        protocol = NonuniformCounterLeaderElection(counter_threshold=3)
        simulation = Simulation(protocol, 50, seed=3)
        simulation.run_until(
            lambda sim: all(state.terminated for state in sim.states),
            max_parallel_time=500,
        )
        assert all(state.terminated for state in simulation.states)

    def test_termination_time_does_not_grow_with_population(self):
        """The operational content of Theorem 4.1 for this uniform-transition protocol.

        The same transition algorithm (fixed threshold) deployed into larger
        populations produces its termination signal after roughly the same
        parallel time, because the signal only needs some agent to have
        `threshold` interactions.
        """
        protocol_factory = lambda: NonuniformCounterLeaderElection(counter_threshold=8)
        times = {}
        for n in (32, 256):
            simulation = Simulation(protocol_factory(), n, seed=4)
            times[n] = simulation.run_until(
                lambda sim: any(state.terminated for state in sim.states),
                max_parallel_time=200,
                check_interval=8,
            )
        assert times[256] < 4 * max(times[32], 1.0)

    def test_candidate_elimination_reduces_candidates(self):
        protocol = NonuniformCounterLeaderElection(counter_threshold=1_000_000)
        simulation = Simulation(protocol, 40, seed=5)
        simulation.run_parallel_time(100)
        candidates = simulation.count_where(lambda state: state.candidate)
        assert 1 <= candidates < 40

    def test_state_signature_round_trip(self):
        protocol = NonuniformCounterLeaderElection(counter_threshold=4)
        state = CounterLeaderState(candidate=False, counter=3, terminated=True)
        assert protocol.state_signature(state) == (False, 3, True)
