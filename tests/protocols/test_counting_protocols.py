"""Tests for the counting baselines: Alistarh approximate, leader exact, backup."""

from __future__ import annotations

import math

import pytest

from repro.engine.simulator import Simulation
from repro.exceptions import ProtocolError
from repro.protocols.approximate_counting import (
    AlistarhApproximateCounting,
    ApproximateCountingState,
    approximate_counting_converged,
)
from repro.protocols.exact_backup import (
    ACTIVE,
    BackupState,
    ExactUpperBoundBackup,
    backup_stabilized,
)
from repro.protocols.exact_counting_leader import (
    LeaderExactCounting,
    exact_counting_terminated,
)


class TestAlistarhApproximateCounting:
    def test_initial_state_has_no_value(self):
        protocol = AlistarhApproximateCounting()
        assert protocol.initial_state(0) == ApproximateCountingState(value=None)

    def test_rejects_degenerate_probability(self):
        with pytest.raises(ValueError):
            AlistarhApproximateCounting(success_probability=1.0)

    def test_converges_to_common_value_within_multiplicative_bounds(self):
        n = 512
        protocol = AlistarhApproximateCounting()
        simulation = Simulation(protocol, n, seed=1)
        simulation.run_until(approximate_counting_converged, max_parallel_time=300)
        values = {protocol.output(state) for state in simulation.states}
        assert len(values) == 1
        (value,) = values
        # Lemma D.7 (applied to n agents): within [log n - log ln n, 2 log n] w.h.p.
        assert value >= math.log2(n) - math.log2(math.log(n)) - 2
        assert value <= 2 * math.log2(n) + 2

    def test_transition_takes_maximum(self, rng):
        protocol = AlistarhApproximateCounting()
        receiver, sender = protocol.transition(
            ApproximateCountingState(value=3), ApproximateCountingState(value=9), rng
        )
        assert receiver.value == 9
        assert sender.value == 9

    def test_convergence_time_is_logarithmic(self):
        protocol = AlistarhApproximateCounting()
        simulation = Simulation(protocol, 1024, seed=2)
        elapsed = simulation.run_until(
            approximate_counting_converged, max_parallel_time=300
        )
        assert elapsed < 10 * math.log2(1024)


class TestLeaderExactCounting:
    def test_patience_validated(self):
        with pytest.raises(ProtocolError):
            LeaderExactCounting(patience=0)

    def test_agent_zero_is_leader(self):
        protocol = LeaderExactCounting()
        assert protocol.initial_state(0).is_leader
        assert not protocol.initial_state(1).is_leader

    def test_announces_exact_population_size(self):
        n = 30
        protocol = LeaderExactCounting(patience=3)
        simulation = Simulation(protocol, n, seed=3)
        simulation.run_until(exact_counting_terminated, max_parallel_time=5_000)
        announced = {protocol.output(state) for state in simulation.states}
        assert announced == {n}

    def test_termination_time_grows_with_population(self):
        """The leader-driven protocol delays its signal as n grows (non-dense start)."""
        times = {}
        for n in (16, 128):
            protocol = LeaderExactCounting(patience=2)
            simulation = Simulation(protocol, n, seed=4)
            times[n] = simulation.run_until(
                lambda sim: any(state.terminated for state in sim.states),
                max_parallel_time=20_000,
            )
        assert times[128] > 2 * times[16]


class TestExactUpperBoundBackup:
    def test_initial_state(self):
        assert ExactUpperBoundBackup().initial_state(0) == BackupState(
            kind=ACTIVE, level=0, best=0
        )

    @pytest.mark.parametrize("n", [16, 33, 100])
    def test_stabilizes_to_floor_log2(self, n):
        protocol = ExactUpperBoundBackup()
        simulation = Simulation(protocol, n, seed=5)
        simulation.run_until(backup_stabilized, max_parallel_time=50 * n)
        values = {protocol.output(state) for state in simulation.states}
        assert values == {math.floor(math.log2(n))}

    def test_best_value_never_exceeds_floor_log2(self):
        n = 48
        protocol = ExactUpperBoundBackup()
        simulation = Simulation(protocol, n, seed=6)
        bound = math.floor(math.log2(n))
        for _ in range(20):
            simulation.run_parallel_time(5)
            assert all(state.best <= bound for state in simulation.states)

    def test_merge_transition(self, rng):
        protocol = ExactUpperBoundBackup()
        receiver, sender = protocol.transition(
            BackupState(ACTIVE, 2, 2), BackupState(ACTIVE, 2, 2), rng
        )
        assert receiver.kind == ACTIVE and receiver.level == 3
        assert sender.kind == "f" and sender.best == 3
