"""Tests for the epidemic and max-propagation substrates."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.analysis.epidemic_theory import expected_epidemic_time
from repro.engine.count_simulator import CountSimulator
from repro.engine.simulator import Simulation
from repro.exceptions import ProtocolError
from repro.protocols.epidemic import (
    EpidemicProtocol,
    EpidemicState,
    epidemic_completion_predicate,
)
from repro.protocols.max_propagation import (
    MaxPropagationProtocol,
    geometric_max_initializer,
)


class TestEpidemicProtocol:
    def test_initial_sources(self):
        protocol = EpidemicProtocol(initial_infected=3)
        states = [protocol.initial_state(agent_id) for agent_id in range(5)]
        assert states.count(EpidemicState.INFECTED) == 3

    def test_rejects_no_sources(self):
        with pytest.raises(ProtocolError):
            EpidemicProtocol(initial_infected=0)

    def test_one_way_variant_only_infects_receiver(self):
        protocol = EpidemicProtocol(bidirectional=False)
        assert protocol.transitions(EpidemicState.SUSCEPTIBLE, EpidemicState.INFECTED)
        assert not protocol.transitions(EpidemicState.INFECTED, EpidemicState.SUSCEPTIBLE)

    def test_output_flags_infection(self):
        protocol = EpidemicProtocol()
        assert protocol.output(EpidemicState.INFECTED) is True
        assert protocol.output(EpidemicState.SUSCEPTIBLE) is False

    def test_describe(self):
        assert "bidirectional" in EpidemicProtocol().describe()

    def test_completion_time_close_to_lemma_a1(self):
        """Empirical mean completion time should sit near (n-1)/n * H_{n-1}.

        Lemma A.1's expectation corresponds to the epidemic in which an
        infected/susceptible pair always infects (our bidirectional variant);
        the strict one-way variant is a factor ~2 slower.
        """
        n = 2_000
        expected = expected_epidemic_time(n)

        bidirectional_times = []
        one_way_times = []
        for seed in range(5):
            simulator = CountSimulator(EpidemicProtocol(), n, seed=seed)
            bidirectional_times.append(
                simulator.run_until(epidemic_completion_predicate, max_parallel_time=400)
            )
            simulator = CountSimulator(
                EpidemicProtocol(bidirectional=False), n, seed=100 + seed
            )
            one_way_times.append(
                simulator.run_until(epidemic_completion_predicate, max_parallel_time=400)
            )

        mean_bidirectional = statistics.fmean(bidirectional_times)
        mean_one_way = statistics.fmean(one_way_times)
        assert 0.6 * expected < mean_bidirectional < 1.6 * expected
        assert 1.4 * expected < mean_one_way < 3.0 * expected

    def test_monotone_infection_count(self):
        simulator = CountSimulator(EpidemicProtocol(), 1_000, seed=3)
        previous = simulator.count(EpidemicState.INFECTED)
        for _ in range(20):
            simulator.run_parallel_time(0.5)
            current = simulator.count(EpidemicState.INFECTED)
            assert current >= previous
            previous = current


class TestMaxPropagation:
    def test_max_value_wins(self):
        protocol = MaxPropagationProtocol(initial_value=lambda agent_id: agent_id % 7)
        simulation = Simulation(protocol, 50, seed=1)
        simulation.run_until(
            lambda sim: all(state == 6 for state in sim.states), max_parallel_time=200
        )
        assert set(simulation.states) == {6}

    def test_transition_is_symmetric_max(self, rng):
        protocol = MaxPropagationProtocol(initial_value=lambda agent_id: 0)
        assert protocol.transition(3, 9, rng) == (9, 9)
        assert protocol.transition(9, 3, rng) == (9, 9)
        assert protocol.transition(4, 4, rng) == (4, 4)

    def test_geometric_initializer_is_independent_of_population(self):
        initializer = geometric_max_initializer(seed=11)
        first_values = [initializer(agent_id) for agent_id in range(50)]
        second_values = [initializer(agent_id) for agent_id in range(50)]
        assert first_values == second_values
        assert all(value >= 1 for value in first_values)

    def test_propagated_maximum_estimates_log_n(self):
        """The converged maximum should be a (weak) estimate of log2 n (Lemma D.7)."""
        n = 512
        initializer = geometric_max_initializer(seed=5)
        protocol = MaxPropagationProtocol(initial_value=initializer)
        simulation = Simulation(protocol, n, seed=6)
        simulation.run_until(
            lambda sim: len(set(sim.states)) == 1, max_parallel_time=400
        )
        maximum = simulation.states[0]
        assert maximum >= math.log2(n) - math.log2(math.log(n)) - 2
        assert maximum <= 3 * math.log2(n)
