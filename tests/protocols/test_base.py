"""Tests for the protocol abstractions (FiniteStateProtocol, adapters, validation)."""

from __future__ import annotations

import pytest

from repro.engine.count_simulator import CountSimulator
from repro.engine.simulator import Simulation
from repro.exceptions import ProtocolError
from repro.protocols.base import (
    FunctionalFiniteStateProtocol,
    RandomizedTransition,
)


def _simple_protocol(uniform: bool = True) -> FunctionalFiniteStateProtocol:
    """Two-state protocol a,b -> b,b (a one-way conversion)."""
    return FunctionalFiniteStateProtocol(
        state_set=["a", "b"],
        transition_map={("a", "b"): [("b", "b", 1.0)], ("b", "a"): [("b", "b", 1.0)]},
        initial=lambda agent_id: "b" if agent_id == 0 else "a",
        uniform=uniform,
        output_map={"a": 0, "b": 1},
    )


class TestRandomizedTransition:
    def test_probability_validated(self):
        with pytest.raises(ProtocolError):
            RandomizedTransition(receiver_out="a", sender_out="b", probability=0.0)
        with pytest.raises(ProtocolError):
            RandomizedTransition(receiver_out="a", sender_out="b", probability=1.5)


class TestFunctionalProtocol:
    def test_states_and_initial(self):
        protocol = _simple_protocol()
        assert set(protocol.states()) == {"a", "b"}
        assert protocol.initial_state(0) == "b"
        assert protocol.initial_state(5) == "a"

    def test_output_map(self):
        protocol = _simple_protocol()
        assert protocol.output("a") == 0
        assert protocol.output("b") == 1

    def test_transition_table_omits_null_transitions(self):
        protocol = _simple_protocol()
        table = protocol.transition_table()
        assert ("a", "b") in table
        assert ("a", "a") not in table

    def test_validation_rejects_unknown_output_state(self):
        with pytest.raises(ProtocolError):
            FunctionalFiniteStateProtocol(
                state_set=["a"],
                transition_map={("a", "a"): [("a", "z", 1.0)]},
                initial="a",
            )

    def test_validation_rejects_probability_overflow(self):
        with pytest.raises(ProtocolError):
            FunctionalFiniteStateProtocol(
                state_set=["a", "b"],
                transition_map={("a", "a"): [("a", "b", 0.7), ("b", "b", 0.7)]},
                initial="a",
            )

    def test_describe_mentions_state_count(self):
        assert "2 states" in _simple_protocol().describe()


class TestAgentAdapter:
    def test_adapter_runs_under_agent_engine(self):
        protocol = _simple_protocol()
        simulation = Simulation(protocol.as_agent_protocol(), 30, seed=1)
        simulation.run_until(
            lambda sim: all(state == "b" for state in sim.states),
            max_parallel_time=200,
        )
        assert set(simulation.states) == {"b"}

    def test_adapter_propagates_uniform_flag(self):
        assert _simple_protocol(uniform=False).as_agent_protocol().is_uniform is False

    def test_adapter_null_transition_keeps_states(self, rng):
        protocol = _simple_protocol().as_agent_protocol()
        assert protocol.transition("a", "a", rng) == ("a", "a")

    def test_randomized_outcome_frequencies(self, rng):
        protocol = FunctionalFiniteStateProtocol(
            state_set=["a", "b", "c"],
            transition_map={("a", "a"): [("b", "b", 0.5), ("c", "c", 0.5)]},
            initial="a",
        ).as_agent_protocol()
        outcomes = [protocol.transition("a", "a", rng)[0] for _ in range(3000)]
        assert 0.4 < outcomes.count("b") / len(outcomes) < 0.6

    def test_adapter_and_count_engine_agree_on_reachable_states(self):
        protocol = _simple_protocol()
        count_sim = CountSimulator(protocol, 30, seed=2)
        count_sim.run_parallel_time(100)
        assert count_sim.count("a") == 0
        assert count_sim.count("b") == 30
