"""Tests for the approximate-majority baseline."""

from __future__ import annotations

import pytest

from repro.engine.count_simulator import CountSimulator
from repro.exceptions import ProtocolError
from repro.protocols.majority import (
    ApproximateMajorityProtocol,
    majority_consensus_predicate,
)


class TestApproximateMajority:
    def test_fraction_validated(self):
        with pytest.raises(ProtocolError):
            ApproximateMajorityProtocol(x_fraction=1.5)

    def test_initial_margin_close_to_requested(self):
        protocol = ApproximateMajorityProtocol(x_fraction=0.7)
        states = [protocol.initial_state(agent_id) for agent_id in range(1000)]
        x_fraction = states.count(protocol.OPINION_X) / len(states)
        assert 0.65 < x_fraction < 0.75

    def test_transitions_blank_the_minority_sender(self):
        protocol = ApproximateMajorityProtocol()
        (outcome,) = protocol.transitions(protocol.OPINION_X, protocol.OPINION_Y)
        assert outcome.receiver_out == protocol.OPINION_X
        assert outcome.sender_out == protocol.BLANK

    def test_blank_agents_are_recruited(self):
        protocol = ApproximateMajorityProtocol()
        (outcome,) = protocol.transitions(protocol.BLANK, protocol.OPINION_Y)
        assert outcome.receiver_out == protocol.OPINION_Y
        assert outcome.sender_out == protocol.OPINION_Y

    def test_same_opinion_is_null(self):
        protocol = ApproximateMajorityProtocol()
        assert protocol.transitions(protocol.OPINION_X, protocol.OPINION_X) == ()

    def test_validate_passes(self):
        ApproximateMajorityProtocol().validate()

    @pytest.mark.parametrize("x_fraction", [0.65, 0.8])
    def test_clear_majority_wins(self, x_fraction):
        protocol = ApproximateMajorityProtocol(x_fraction=x_fraction)
        simulator = CountSimulator(protocol, 3_000, seed=1)
        simulator.run_until(majority_consensus_predicate, max_parallel_time=400)
        assert simulator.count(protocol.OPINION_Y) == 0
        assert simulator.count(protocol.OPINION_X) > 0

    def test_consensus_time_is_fast(self):
        protocol = ApproximateMajorityProtocol(x_fraction=0.75)
        simulator = CountSimulator(protocol, 5_000, seed=2)
        elapsed = simulator.run_until(majority_consensus_predicate, max_parallel_time=400)
        assert elapsed < 100
