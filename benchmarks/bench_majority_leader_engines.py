"""T-CLASSIC — baseline workloads on the configuration-level engines.

Approximate majority and pairwise-elimination leader election are the two
classic constant-state baselines the paper's introduction positions the
polylog-time literature against.  This benchmark runs both on the count and
batched engines through the sweep driver
(:func:`repro.harness.experiment.run_finite_state_experiment`;
``REPRO_SWEEP_WORKERS`` parallelises the runs), recording consensus /
election times alongside wall-clock throughput so engine regressions on
*reactive-dense* protocols (where most pairs change state, unlike the
epidemic endgame) are caught.
"""

from __future__ import annotations

import statistics

import pytest

from benchmarks.conftest import SWEEP_WORKERS
from repro.harness.experiment import run_finite_state_experiment
from repro.protocols.leader_election import FiniteStatePairwiseElimination
from repro.protocols.majority import (
    ApproximateMajorityProtocol,
    majority_consensus_predicate,
)

RUNS = 3
TARGET_LEADERS = 8


def seventy_thirty_majority() -> ApproximateMajorityProtocol:
    """Module-level factory (picklable) for the 70/30 majority workload."""
    return ApproximateMajorityProtocol(x_fraction=0.7)


def at_most_target_leaders(simulator) -> bool:
    """Predicate: at most ``TARGET_LEADERS`` leader candidates remain."""
    return simulator.count(FiniteStatePairwiseElimination.LEADER) <= TARGET_LEADERS


@pytest.mark.parametrize("engine", ["count", "batched"])
@pytest.mark.parametrize("population_size", [10_000, 100_000])
def bench_majority_consensus(benchmark, population_size, engine):
    """3-state approximate majority to consensus (O(log n) time expected)."""
    holder = {"times": [], "correct": 0}

    def run_majority():
        sweep = run_finite_state_experiment(
            protocol_factory=seventy_thirty_majority,
            predicate=majority_consensus_predicate,
            population_sizes=[population_size],
            runs_per_size=RUNS,
            max_parallel_time=400.0,
            engine=engine,
            base_seed=31,
            workers=SWEEP_WORKERS,
        )
        assert all(record.converged for record in sweep.records)
        holder["times"] = [record.convergence_time for record in sweep.records]
        holder["correct"] = sum(
            record.extra["outputs"].get(ApproximateMajorityProtocol.OPINION_Y, 0) == 0
            for record in sweep.records
        )
        return holder["times"]

    benchmark.pedantic(run_majority, rounds=1, iterations=1)

    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["mean_consensus_time"] = statistics.fmean(holder["times"])
    benchmark.extra_info["initial_majority_won"] = holder["correct"]
    # With a 70/30 split the initial majority must win every run.
    assert holder["correct"] == RUNS


@pytest.mark.parametrize("engine", ["count", "batched"])
@pytest.mark.parametrize("population_size", [2_000, 20_000])
def bench_leader_election_time(benchmark, population_size, engine):
    """Pairwise elimination down to <= 8 leaders (the Theta(n) tail excluded).

    The full election needs ``Theta(n)`` parallel time dominated by the last
    few leaders, where both configuration-level engines step near-exactly;
    benchmarking to a small candidate count keeps the focus on the
    high-throughput bulk phase.
    """
    holder = {"times": []}

    def run_elections():
        sweep = run_finite_state_experiment(
            protocol_factory=FiniteStatePairwiseElimination,
            predicate=at_most_target_leaders,
            population_sizes=[population_size],
            runs_per_size=RUNS,
            max_parallel_time=4.0 * population_size,
            engine=engine,
            base_seed=7,
            workers=SWEEP_WORKERS,
        )
        assert all(record.converged for record in sweep.records)
        holder["times"] = [record.convergence_time for record in sweep.records]
        return holder["times"]

    benchmark.pedantic(run_elections, rounds=1, iterations=1)

    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["target_leaders"] = TARGET_LEADERS
    benchmark.extra_info["mean_time_to_target"] = statistics.fmean(holder["times"])
