"""T-CLASSIC — baseline workloads on the configuration-level engines.

Approximate majority and pairwise-elimination leader election are the two
classic constant-state baselines the paper's introduction positions the
polylog-time literature against.  This benchmark runs both on the count and
batched engines via the shared engine selector, recording consensus /
election times alongside wall-clock throughput so engine regressions on
*reactive-dense* protocols (where most pairs change state, unlike the
epidemic endgame) are caught.
"""

from __future__ import annotations

import statistics

import pytest

from repro.engine.selection import build_engine
from repro.protocols.leader_election import FiniteStatePairwiseElimination
from repro.protocols.majority import (
    ApproximateMajorityProtocol,
    majority_consensus_predicate,
)

RUNS = 3


@pytest.mark.parametrize("engine", ["count", "batched"])
@pytest.mark.parametrize("population_size", [10_000, 100_000])
def bench_majority_consensus(benchmark, population_size, engine):
    """3-state approximate majority to consensus (O(log n) time expected)."""
    holder = {"times": [], "correct": 0}

    def run_majority():
        times = []
        correct = 0
        for run_index in range(RUNS):
            simulator = build_engine(
                engine,
                ApproximateMajorityProtocol(x_fraction=0.7),
                population_size,
                seed=31 + run_index,
            )
            times.append(
                simulator.run_until(
                    majority_consensus_predicate, max_parallel_time=400.0
                )
            )
            if simulator.count(ApproximateMajorityProtocol.OPINION_Y) == 0:
                correct += 1
        holder["times"] = times
        holder["correct"] = correct
        return times

    benchmark.pedantic(run_majority, rounds=1, iterations=1)

    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["mean_consensus_time"] = statistics.fmean(holder["times"])
    benchmark.extra_info["initial_majority_won"] = holder["correct"]
    # With a 70/30 split the initial majority must win every run.
    assert holder["correct"] == RUNS


@pytest.mark.parametrize("engine", ["count", "batched"])
@pytest.mark.parametrize("population_size", [2_000, 20_000])
def bench_leader_election_time(benchmark, population_size, engine):
    """Pairwise elimination down to <= 8 leaders (the Theta(n) tail excluded).

    The full election needs ``Theta(n)`` parallel time dominated by the last
    few leaders, where both configuration-level engines step near-exactly;
    benchmarking to a small candidate count keeps the focus on the
    high-throughput bulk phase.
    """
    target_leaders = 8
    holder = {"times": []}

    def run_elections():
        times = []
        for run_index in range(RUNS):
            simulator = build_engine(
                engine,
                FiniteStatePairwiseElimination(),
                population_size,
                seed=7 + run_index,
            )
            times.append(
                simulator.run_until(
                    lambda sim: sim.count(FiniteStatePairwiseElimination.LEADER)
                    <= target_leaders,
                    max_parallel_time=4.0 * population_size,
                )
            )
        holder["times"] = times
        return times

    benchmark.pedantic(run_elections, rounds=1, iterations=1)

    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["target_leaders"] = target_leaders
    benchmark.extra_info["mean_time_to_target"] = statistics.fmean(holder["times"])
