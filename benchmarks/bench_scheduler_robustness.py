"""T-SCHED — scheduler robustness of Log-Size-Estimation.

The paper proves its accuracy and convergence claims for one scheduler: a
uniformly random ordered pair per interaction (approximated by the vector
engine's uniform matching round).  This benchmark measures how *robust* the
size-estimation protocol is when the scheduler departs from that model:
for each scenario scheduler (see ``repro engines``) it runs the Figure 2
workload to all-agents-done and records the convergence rate, the
convergence time and the maximum additive estimation error.

Expected shape: the error degrades *gracefully* — lazy subpopulations and
community structure slow convergence (times grow, some harsh scenarios may
exhaust their budget) but the agents that do finish still estimate
``log2 n`` within a small additive error, because the protocol's averaging
epochs are scheduler-agnostic.  A collapse (error growing with ``n``) would
mean the paper's claim is an artefact of the uniform scheduler.

Besides the pytest-benchmark entries, this module doubles as a script::

    PYTHONPATH=src python benchmarks/bench_scheduler_robustness.py

which sweeps every scenario over ``REPRO_SCHED_SIZES`` (default
``1000,10000,100000``) with ``REPRO_SCHED_RUNS`` runs per size (default 2),
prints the per-scheduler table and writes a ``BENCH_schedulers.json``
artifact.  Scaled-down ``fast_test`` protocol constants are the default so
that ``n = 10^5`` stays tractable in pure numpy; set
``REPRO_SCHED_PARAMS=paper`` for the paper's constants.  Trials run through
the sweep driver, so ``REPRO_SWEEP_WORKERS`` fans them out and re-runs are
deterministic per seed.
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from benchmarks.conftest import SWEEP_WORKERS
from repro._version import __version__
from repro.core.array_simulator import expected_convergence_time
from repro.core.parameters import ProtocolParameters
from repro.harness.parallel import build_vector_trials, run_trials
from repro.workloads.populations import sizes_from_env

SCHED_SIZES = sizes_from_env("REPRO_SCHED_SIZES", [1_000, 10_000, 100_000])
SCHED_RUNS = max(1, int(os.environ.get("REPRO_SCHED_RUNS", "2")))
#: Budget multiple of the uniform-matching convergence-time estimate; the
#: non-uniform scenarios are slower, so the budget is deliberately generous
#: (a run that still times out is reported as non-converged — that is data).
BUDGET_FACTOR = float(os.environ.get("REPRO_SCHED_BUDGET_FACTOR", "10"))
ARTIFACT_NAME = "BENCH_schedulers.json"


def _params() -> ProtocolParameters:
    if os.environ.get("REPRO_SCHED_PARAMS", "fast") == "paper":
        return ProtocolParameters.paper()
    return ProtocolParameters.fast_test()


def scheduler_scenarios(population_size: int, params: ProtocolParameters):
    """The scenario grid: (label, scheduler name, options).

    The quiescing window is sized relative to the uniform convergence-time
    estimate so the starvation phase overlaps the protocol's working phase
    at every ``n``.
    """
    window = round(expected_convergence_time(population_size, params) / 2, 3)
    return [
        ("matching", "matching", {}),
        ("weighted(0.3 lazy @ 0.25)", "weighted",
         {"lazy_fraction": 0.3, "lazy_rate": 0.25}),
        ("weighted(0.5 lazy @ 0.1)", "weighted",
         {"lazy_fraction": 0.5, "lazy_rate": 0.1}),
        ("two-block(intra=0.9)", "two-block", {"intra": 0.9}),
        ("two-block(intra=0.99)", "two-block", {"intra": 0.99}),
        ("quiescing(30% for t/2)", "quiescing",
         {"fraction": 0.3, "start": 0.0, "duration": window}),
    ]


def run_scenario(
    label: str,
    scheduler: str,
    options: dict,
    population_size: int,
    params: ProtocolParameters,
    runs: int = SCHED_RUNS,
    base_seed: int = 2019,
) -> dict:
    """Run one (scheduler, n) cell and summarise it as a JSON-friendly dict."""
    budget = BUDGET_FACTOR * expected_convergence_time(population_size, params)
    specs = build_vector_trials(
        [population_size],
        runs,
        protocol="figure2",
        params=params,
        base_seed=base_seed,
        max_parallel_time=budget,
        scheduler=scheduler,
        scheduler_options=options,
    )
    started = time.perf_counter()
    outcome = run_trials(specs, workers=min(SWEEP_WORKERS, len(specs)))
    elapsed = time.perf_counter() - started
    records = outcome.records
    converged = [record for record in records if record.converged]
    errors = [
        record.max_additive_error
        for record in converged
        if record.max_additive_error is not None
        and math.isfinite(record.max_additive_error)
    ]
    times = [record.convergence_time for record in converged]
    return {
        "scenario": label,
        "scheduler": scheduler,
        "scheduler_options": options,
        "population_size": population_size,
        "runs": len(records),
        "converged": len(converged),
        "convergence_rate": len(converged) / len(records),
        "mean_convergence_time": sum(times) / len(times) if times else None,
        "max_convergence_time": max(times) if times else None,
        "max_additive_error": max(errors) if errors else None,
        "budget_parallel_time": budget,
        "wall_seconds": elapsed,
    }


# ---------------------------------------------------------------------------
# pytest-benchmark entries (one modest-n point per scenario)
# ---------------------------------------------------------------------------

_BENCH_N = 256
_BENCH_PARAMS = ProtocolParameters.fast_test()


@pytest.mark.parametrize(
    "label,scheduler,options",
    [
        pytest.param(label, scheduler, options, id=label)
        for label, scheduler, options in scheduler_scenarios(_BENCH_N, _BENCH_PARAMS)
    ],
)
def bench_scheduler_robustness(benchmark, label, scheduler, options):
    """One robustness cell: Figure 2 workload under a scenario scheduler."""
    cell = {}

    def run_cell():
        cell.update(
            run_scenario(label, scheduler, options, _BENCH_N, _BENCH_PARAMS, runs=2)
        )
        return cell

    benchmark.pedantic(run_cell, rounds=1, iterations=1)
    benchmark.extra_info.update(cell)
    if scheduler == "matching":
        # The baseline must reproduce the paper's empirical accuracy.
        assert cell["convergence_rate"] == 1.0
        assert cell["max_additive_error"] < 4.0
    elif cell["max_additive_error"] is not None:
        # Graceful degradation: converged non-uniform runs stay within a
        # constant additive band, they do not collapse.
        assert cell["max_additive_error"] < 8.0


# ---------------------------------------------------------------------------
# Script mode: the per-scheduler robustness table + artifact
# ---------------------------------------------------------------------------


def _format_cell(value, precision: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def main() -> int:
    params = _params()
    params_label = "paper" if os.environ.get("REPRO_SCHED_PARAMS") == "paper" else "fast"
    print(
        f"scheduler robustness sweep: figure2 (Log-Size-Estimation), "
        f"{params_label} constants, sizes {SCHED_SIZES}, {SCHED_RUNS} runs/size, "
        f"budget {BUDGET_FACTOR}x uniform estimate"
    )
    results = []
    for population_size in SCHED_SIZES:
        for label, scheduler, options in scheduler_scenarios(population_size, params):
            cell = run_scenario(label, scheduler, options, population_size, params)
            results.append(cell)
            print(
                f"  n={population_size:>8} {label:<26} "
                f"conv {cell['converged']}/{cell['runs']}  "
                f"time {_format_cell(cell['mean_convergence_time'])}  "
                f"err {_format_cell(cell['max_additive_error'])}  "
                f"[{cell['wall_seconds']:.1f}s]"
            )
    print()
    header = f"{'scenario':<28}" + "".join(
        f"| n={size:<10} " for size in SCHED_SIZES
    )
    print("max additive error (x = no run converged within budget):")
    print(header)
    print("-" * len(header))
    for label, _, _ in scheduler_scenarios(SCHED_SIZES[0], params):
        row = f"{label:<28}"
        for size in SCHED_SIZES:
            cell = next(
                r for r in results
                if r["scenario"] == label and r["population_size"] == size
            )
            value = cell["max_additive_error"]
            row += f"| {_format_cell(value):<12}" if value is not None else f"| {'x':<12}"
        print(row)
    print()
    print("mean convergence parallel time:")
    print(header)
    print("-" * len(header))
    for label, _, _ in scheduler_scenarios(SCHED_SIZES[0], params):
        row = f"{label:<28}"
        for size in SCHED_SIZES:
            cell = next(
                r for r in results
                if r["scenario"] == label and r["population_size"] == size
            )
            row += f"| {_format_cell(cell['mean_convergence_time'], 1):<12}"
        print(row)

    artifact = {
        "version": __version__,
        "params": params_label,
        "sizes": SCHED_SIZES,
        "runs_per_size": SCHED_RUNS,
        "budget_factor": BUDGET_FACTOR,
        "results": results,
    }
    path = _REPO_ROOT / ARTIFACT_NAME
    path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    print(f"\nartifact written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
