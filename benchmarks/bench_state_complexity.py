"""T-STATE — Lemma 3.9: state complexity of the protocol vs O(log^4 n).

Runs the protocol (paper constants) at each population size and records the
realised range of every field (``logSize2``, ``gr``, ``time``, ``epoch``) and
the product of those ranges — the quantity Lemma 3.9 bounds by ``O(log^4 n)``
with probability ``1 - O(log n / n)``.  The ratio of the realised bound to
``log2(n)^4`` should stay bounded (in fact well below 1 because the per-field
constants of the lemma are conservative).
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import PAPER_PARAMS, TABLE_SIZES
from repro.core.array_simulator import ArrayLogSizeSimulator, expected_convergence_time


@pytest.mark.parametrize("population_size", TABLE_SIZES)
def bench_state_complexity(benchmark, population_size):
    holder = {}

    def run_and_measure():
        simulator = ArrayLogSizeSimulator(
            population_size, params=PAPER_PARAMS, seed=11
        )
        simulator.run_until_done(
            max_parallel_time=4
            * expected_convergence_time(population_size, PAPER_PARAMS)
        )
        holder["simulator"] = simulator
        return simulator

    benchmark.pedantic(run_and_measure, rounds=1, iterations=1)

    simulator = holder["simulator"]
    log4 = math.log2(population_size) ** 4
    state_bound = simulator.distinct_state_bound()
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["max_log_size2"] = simulator._max_log_size2
    benchmark.extra_info["max_gr"] = simulator._max_gr
    benchmark.extra_info["max_time"] = simulator._max_time
    benchmark.extra_info["max_epoch"] = simulator._max_epoch
    benchmark.extra_info["state_bound"] = state_bound
    benchmark.extra_info["log2_n_to_the_4"] = log4
    benchmark.extra_info["ratio_to_log4"] = state_bound / log4

    # Lemma 3.9's field ranges (with the paper's constants): logSize2 and gr at
    # most ~2 log n + O(1), epoch at most ~11 log n, time at most ~191 log n.
    log_n = math.log2(population_size)
    assert simulator._max_log_size2 <= 2 * log_n + 4
    assert simulator._max_gr <= 2 * log_n + 4
    assert simulator._max_epoch <= 11 * log_n + 5
    assert simulator._max_time <= 240 * log_n
