"""T-BASE — Related-work baseline: Alistarh et al. [2] vs this paper's protocol.

The baseline computes the maximum of per-agent geometric variables, which
estimates ``log2 n`` only within a constant *multiplicative* factor
(``0.5 log2 n <= k <= 2 log2 n`` w.h.p.), in ``O(log n)`` time; the paper's
protocol spends ``O(log^2 n)`` time to reduce that to a constant *additive*
error.  For each population size the benchmark records both errors, making the
accuracy/time trade-off the paper describes visible in one table.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import PAPER_PARAMS, TABLE_SIZES
from repro.core.array_simulator import ArrayLogSizeSimulator, expected_convergence_time
from repro.engine.simulator import Simulation
from repro.protocols.approximate_counting import (
    AlistarhApproximateCounting,
    approximate_counting_converged,
)


@pytest.mark.parametrize("population_size", TABLE_SIZES)
def bench_baseline_vs_paper_protocol(benchmark, population_size):
    holder = {}

    def run_both():
        target = math.log2(population_size)

        baseline_protocol = AlistarhApproximateCounting()
        baseline = Simulation(baseline_protocol, population_size, seed=23)
        baseline_time = baseline.run_until(
            approximate_counting_converged, max_parallel_time=400
        )
        baseline_value = float(baseline_protocol.output(baseline.states[0]))

        paper = ArrayLogSizeSimulator(
            population_size, params=PAPER_PARAMS, seed=23
        ).run_until_done(
            max_parallel_time=4
            * expected_convergence_time(population_size, PAPER_PARAMS)
        )

        holder.update(
            baseline_time=baseline_time,
            baseline_error=abs(baseline_value - target),
            paper_time=paper.convergence_time,
            paper_error=paper.max_additive_error,
        )
        return holder

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["baseline_convergence_time"] = holder["baseline_time"]
    benchmark.extra_info["baseline_additive_error"] = holder["baseline_error"]
    benchmark.extra_info["paper_convergence_time"] = holder["paper_time"]
    benchmark.extra_info["paper_additive_error"] = holder["paper_error"]

    # Shape checks from the paper: the baseline converges much faster but its
    # error can be as large as ~log2 n; the paper's protocol pays ~log n more
    # time and achieves a small constant additive error.
    assert holder["baseline_time"] < holder["paper_time"]
    assert holder["paper_error"] < 5.7
    assert holder["baseline_error"] <= math.log2(population_size) + 1
