"""FIG2 — Figure 2: convergence time of Log-Size-Estimation vs population size.

Reproduces the paper's only evaluation figure (Appendix C): for each
population size, run the protocol with the paper's constants until every
agent has finished all ``5 * logSize2`` epochs and record the parallel time.
The wall-clock time measured by pytest-benchmark is the simulation cost; the
scientific quantities (convergence parallel time, additive error) are attached
as ``extra_info``.

Paper reference points (Figure 2, sequential scheduler): roughly 2.5e4 at
n=100, 1e5 at n=10^3, 2e5 at n=10^4 and 3e5 at n=10^5 units of parallel time,
with the estimate always within additive error 2.  The vectorised
matching-round engine used here reproduces the same growth shape
(time ~ c * log^2 n) and the <=2 additive error; absolute parallel times are
smaller by a constant factor because every agent has exactly one interaction
per round (see DESIGN.md, Schedulers).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FIGURE2_RUNS, FIGURE2_SIZES, PAPER_PARAMS
from repro.core.array_simulator import ArrayLogSizeSimulator, expected_convergence_time


@pytest.mark.parametrize("population_size", FIGURE2_SIZES)
def bench_figure2_convergence_time(benchmark, population_size):
    """One Figure 2 point: run to all-agents-done at the paper's constants."""
    runs = {"results": []}

    def run_sweep():
        results = []
        for run_index in range(FIGURE2_RUNS):
            simulator = ArrayLogSizeSimulator(
                population_size, params=PAPER_PARAMS, seed=2019 + run_index
            )
            results.append(
                simulator.run_until_done(
                    max_parallel_time=4
                    * expected_convergence_time(population_size, PAPER_PARAMS)
                )
            )
        runs["results"] = results
        return results

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    results = runs["results"]
    converged = [result for result in results if result.converged]
    assert converged, "no Figure 2 run converged within its budget"
    times = [result.convergence_time for result in converged]
    errors = [result.max_additive_error for result in converged]
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["runs"] = len(results)
    benchmark.extra_info["mean_convergence_parallel_time"] = sum(times) / len(times)
    benchmark.extra_info["max_convergence_parallel_time"] = max(times)
    benchmark.extra_info["max_additive_error"] = max(errors)
    benchmark.extra_info["log_size2"] = max(result.log_size2 for result in converged)
    # The paper's empirical observation: additive error below 2 in practice.
    assert max(errors) < 3.0
