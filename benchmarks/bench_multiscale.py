"""T-MS — the adaptive multiscale CRN engine, validated and at extreme scale.

Two halves, mirroring ``bench_crn_kinetics.py`` (T-CRN):

**Validation** — the approximation must be invisible in distribution:

- *tau-leap vs SSA*: at an overlapping population the multiscale engine's
  SIR recovered-count moments are compared against the exact Gillespie
  reference at fixed chemical times; the two-sample z-score of the means
  must stay below 4.0 (same methodology and threshold as T-CRN).
- *ODE vs tau-leap*: at large ``n`` the mean-field regime must reproduce
  the tau-leap means — the same epidemic is run with the ODE regime enabled
  and disabled and the infected fractions compared.

**Scale** — the point of the engine: the library CRNs (epidemic, SIR,
approximate-majority, predator–prey) run end to end at ``n = 10^9`` and
``n = 10^12`` on one core, recording wall-clock seconds, *effective*
interactions (``parallel_time * n`` — what an interaction-bound engine
would have had to draw), effective interactions/s and the per-regime work
counters.  A non-converged predator–prey run is expected data: its
mean-field limit oscillates forever, and random extinction at ``n = 10^9``
is astronomically unlikely inside the budget.

Script mode writes the ``BENCH_multiscale.json`` artifact::

    PYTHONPATH=src python benchmarks/bench_multiscale.py

Environment knobs: ``REPRO_MS_SCALE_NS`` (comma-separated scale
populations, default ``1e9,1e12``), ``REPRO_MS_VAL_N`` (validation
population, default 2000), ``REPRO_MS_VAL_RUNS`` (engine runs per
validation check, default 48).
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from repro._version import __version__
from repro.crn import compile_crn, get_crn_workload, simulate_ssa
from repro.crn.multiscale import DEFAULT_CRITICAL_THRESHOLD
from repro.exceptions import ConvergenceError

SCALE_NS = tuple(
    int(float(value))
    for value in os.environ.get("REPRO_MS_SCALE_NS", "1e9,1e12").split(",")
)
VALIDATION_N = int(float(os.environ.get("REPRO_MS_VAL_N", "2000")))
VALIDATION_RUNS = max(8, int(os.environ.get("REPRO_MS_VAL_RUNS", "48")))
VALIDATION_TIMES = (1.0, 2.0, 4.0)
Z_THRESHOLD = 4.0
ARTIFACT_NAME = "BENCH_multiscale.json"

#: The library CRNs the scale half demonstrates (leader election is Theta(n)
#: chemical time by design — out of scope for a fixed budget at 10^12).
SCALE_WORKLOADS = ("epidemic", "sir", "approximate-majority", "predator-prey")


def _mean_std(values) -> tuple[float, float]:
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / max(1, len(values) - 1)
    return mean, math.sqrt(variance)


def _z_score(sample_a, sample_b) -> float:
    mean_a, std_a = _mean_std(sample_a)
    mean_b, std_b = _mean_std(sample_b)
    spread = math.sqrt(std_a**2 / len(sample_a) + std_b**2 / len(sample_b))
    return (mean_a - mean_b) / max(spread, 1e-9)


# ---------------------------------------------------------------------------
# Validation half
# ---------------------------------------------------------------------------


def validate_tau_leap_vs_ssa(runs: int = VALIDATION_RUNS, n: int = VALIDATION_N) -> dict:
    """SIR recovered-count moments: multiscale engine vs the exact SSA."""
    workload = get_crn_workload("sir")
    compiled = compile_crn(workload.crn)
    started = time.perf_counter()
    engine_rows = []
    for run in range(runs):
        simulator = compiled.build("multiscale", n, seed=1000 + run)
        previous = 0.0
        row = []
        for chemical_time in VALIDATION_TIMES:
            target = compiled.to_parallel_time(chemical_time)
            simulator.run_parallel_time(target - previous)
            previous = target
            row.append(simulator.count("R"))
        engine_rows.append(row)
    engine_seconds = time.perf_counter() - started
    ssa_rows = [
        list(
            simulate_ssa(workload.crn, n, VALIDATION_TIMES, seed=5000 + run).counts["R"]
        )
        for run in range(2 * runs)
    ]
    points = []
    for position, chemical_time in enumerate(VALIDATION_TIMES):
        engine_sample = [row[position] for row in engine_rows]
        ssa_sample = [row[position] for row in ssa_rows]
        engine_mean, engine_std = _mean_std(engine_sample)
        ssa_mean, ssa_std = _mean_std(ssa_sample)
        points.append(
            {
                "chemical_time": chemical_time,
                "engine_mean": engine_mean,
                "engine_std": engine_std,
                "ssa_mean": ssa_mean,
                "ssa_std": ssa_std,
                "z_mean": _z_score(engine_sample, ssa_sample),
            }
        )
    return {
        "check": "tau-leap-vs-ssa-moments",
        "crn": "sir",
        "engine": "multiscale",
        "population_size": n,
        "runs": runs,
        "ssa_runs": 2 * runs,
        "rate_scale": compiled.rate_scale,
        "points": points,
        "max_abs_z": max(abs(point["z_mean"]) for point in points),
        "wall_seconds": engine_seconds,
    }


def validate_ode_vs_tau_leap(n: int = 1_000_000, horizon: float = 12.0) -> dict:
    """Mean-field regime vs pure tau-leaping on the same epidemic."""
    workload = get_crn_workload("epidemic")
    compiled = compile_crn(workload.crn)
    started = time.perf_counter()
    fractions = {}
    for label, ode_threshold in (("ode", 1e4), ("tau-leap", 1e15)):
        simulator = compiled.build(
            "multiscale", n, seed=2,
            regime_thresholds=(DEFAULT_CRITICAL_THRESHOLD, ode_threshold),
        )
        simulator.run_parallel_time(compiled.rate_scale * horizon)
        fractions[label] = simulator.count("I") / n
    return {
        "check": "ode-vs-tau-leap-means",
        "crn": "epidemic",
        "population_size": n,
        "chemical_time": horizon,
        "infected_fraction_ode": fractions["ode"],
        "infected_fraction_tau_leap": fractions["tau-leap"],
        "abs_difference": abs(fractions["ode"] - fractions["tau-leap"]),
        "wall_seconds": time.perf_counter() - started,
    }


# ---------------------------------------------------------------------------
# Scale half
# ---------------------------------------------------------------------------


def run_at_scale(workload_name: str, n: int) -> dict:
    """One end-to-end multiscale run at extreme ``n``, timed."""
    workload = get_crn_workload(workload_name)
    compiled = compile_crn(workload.crn)
    simulator = compiled.build("multiscale", n, seed=2019)
    budget = compiled.rate_scale * workload.default_chemical_budget(n)
    started = time.perf_counter()
    converged = True
    convergence_time = None
    try:
        convergence_time = simulator.run_until(
            workload.predicate, max_parallel_time=budget
        )
    except ConvergenceError:  # a timeout is data, not a crash
        converged = False
    elapsed = time.perf_counter() - started
    cell = {
        "crn": workload_name,
        "engine": "multiscale",
        "population_size": n,
        "converged": converged,
        "convergence_parallel_time": convergence_time,
        "effective_interactions": int(simulator.interactions),
        "effective_interactions_per_second": simulator.interactions
        / max(elapsed, 1e-9),
        "wall_seconds": elapsed,
        "regime_stats": simulator.regime_stats(),
        "counts": {
            str(state): int(count)
            for state, count in sorted(simulator.configuration().items())
        },
    }
    if convergence_time is not None:
        cell["convergence_chemical_time"] = compiled.to_chemical_time(
            convergence_time
        )
    return cell


# ---------------------------------------------------------------------------
# pytest-benchmark entries
# ---------------------------------------------------------------------------


def bench_multiscale_matches_ssa(benchmark):
    """Tau-leap SIR moments vs the exact SSA (reduced runs for CI)."""
    cell = {}

    def run_cell():
        cell.update(validate_tau_leap_vs_ssa(runs=24))
        return cell

    benchmark.pedantic(run_cell, rounds=1, iterations=1)
    benchmark.extra_info.update(cell)
    assert cell["max_abs_z"] < Z_THRESHOLD


def bench_multiscale_ode_matches_tau_leap(benchmark):
    """The ODE regime reproduces tau-leap means at large n."""
    cell = {}

    def run_cell():
        cell.update(validate_ode_vs_tau_leap(n=200_000))
        return cell

    benchmark.pedantic(run_cell, rounds=1, iterations=1)
    benchmark.extra_info.update(cell)
    assert cell["abs_difference"] < 0.05


def bench_multiscale_epidemic_at_scale(benchmark):
    """Epidemic to completion at n = 10^8 (modest for CI; script does 10^12)."""
    cell = {}

    def run_cell():
        cell.update(run_at_scale("epidemic", 100_000_000))
        return cell

    benchmark.pedantic(run_cell, rounds=1, iterations=1)
    benchmark.extra_info.update(cell)
    assert cell["converged"]


# ---------------------------------------------------------------------------
# Script mode: validation report + scale table + artifact
# ---------------------------------------------------------------------------


def main() -> int:
    print(
        f"multiscale benchmark: validation at n = {VALIDATION_N} "
        f"({VALIDATION_RUNS} engine runs, {2 * VALIDATION_RUNS} SSA runs), "
        f"scale at n in {', '.join(f'{n:.0e}' for n in SCALE_NS)}"
    )
    print()
    print("validation (tau-leap vs exact SSA, |z| of trajectory means):")
    leap_cell = validate_tau_leap_vs_ssa()
    zs = ", ".join(
        f"t={p['chemical_time']:g}: z={p['z_mean']:+.2f}" for p in leap_cell["points"]
    )
    print(f"  multiscale sir n={VALIDATION_N}  {zs}  [{leap_cell['wall_seconds']:.1f}s]")
    print(f"  worst |z|: {leap_cell['max_abs_z']:.2f} (threshold {Z_THRESHOLD})")
    ode_cell = validate_ode_vs_tau_leap()
    print(
        f"  ode-vs-tau-leap epidemic n={ode_cell['population_size']:.0e}: "
        f"infected fraction {ode_cell['infected_fraction_ode']:.4f} vs "
        f"{ode_cell['infected_fraction_tau_leap']:.4f} "
        f"(|diff|={ode_cell['abs_difference']:.4f})"
    )
    print()

    print("library CRNs at extreme scale (multiscale engine):")
    scale = []
    for n in SCALE_NS:
        for workload_name in SCALE_WORKLOADS:
            cell = run_at_scale(workload_name, n)
            scale.append(cell)
            stats = cell["regime_stats"]
            print(
                f"  {workload_name:<22} n={n:.0e}  conv={cell['converged']}  "
                f"eff={cell['effective_interactions']:.3e} "
                f"({cell['effective_interactions_per_second']:.2e}/s)  "
                f"exact={stats['exact_events']} leaps={stats['leaps']} "
                f"ode={stats['ode_steps']}  [{cell['wall_seconds']:.1f}s]"
            )

    artifact = {
        "version": __version__,
        "validation_population": VALIDATION_N,
        "validation_runs": VALIDATION_RUNS,
        "validation_times": list(VALIDATION_TIMES),
        "z_threshold": Z_THRESHOLD,
        "validation": [leap_cell, ode_cell],
        "scale_populations": list(SCALE_NS),
        "scale": scale,
    }
    path = _REPO_ROOT / ARTIFACT_NAME
    path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    print(f"\nartifact written to {path}")
    ok = leap_cell["max_abs_z"] < Z_THRESHOLD and ode_cell["abs_difference"] < 0.05
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
