"""T-OBS-OVERHEAD — telemetry cost gate on the batched-epidemic hot path.

The observability layer promises (DESIGN.md "Observability") that the
process-global recorder is

* **near-free when off** — every instrumented hot path guards its telemetry
  block with one ``if RECORDER.enabled:`` attribute test and otherwise runs
  the identical pre-instrumentation code.  Gate: the projected cost of
  those guard evaluations stays below **0.5%** of the baseline runtime.
* **cheap when on** — counters and monotonic timers at batch granularity.
  Gate: an enabled run stays within **3%** of a disabled run.

Both gates measure the batched epidemic at ``REPRO_OBS_N`` agents
(default 1,000,000 — the acceptance scale) driving ``REPRO_OBS_INTERACTIONS``
interactions, best-of-``REPRO_OBS_ROUNDS`` to shed scheduler noise.

The no-op gate cannot diff against a truly uninstrumented tree (the guards
are permanently in the code), so it bounds the overhead from first
principles: time a tight loop of the exact guard expression, count how many
guard evaluations one run performs (recorded by an enabled run — one guard
per kernel advance and per convergence check), and project
``guard_cost x guard_count / baseline_runtime``.  That projection is an
overestimate (the measured loop includes its own loop overhead), which is
the conservative direction for a gate.

Also a script::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

printing the measurements and exiting non-zero on a gate failure — this is
what the CI perf-regression job runs.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from repro.engine.selection import build_engine
from repro.obs.recorder import RECORDER
from repro.protocols.epidemic import EpidemicProtocol

OBS_N = int(os.environ.get("REPRO_OBS_N", "1000000"))
OBS_INTERACTIONS = int(os.environ.get("REPRO_OBS_INTERACTIONS", "4000000"))
OBS_ROUNDS = int(os.environ.get("REPRO_OBS_ROUNDS", "5"))

#: Gate thresholds from the telemetry design contract.
ENABLED_OVERHEAD_LIMIT = 0.03
NOOP_OVERHEAD_LIMIT = 0.005


def _timed_run(enabled: bool, seed: int = 3) -> tuple[float, dict]:
    """Best-of-rounds wall time of the batched epidemic hot path.

    Returns ``(seconds, counters)`` where ``counters`` is the recorder
    delta of the final round when ``enabled`` (empty otherwise).
    """
    prior = RECORDER.enabled
    best = float("inf")
    counters: dict = {}
    try:
        RECORDER.enabled = enabled
        for round_index in range(OBS_ROUNDS):
            simulator = build_engine(
                "batched", EpidemicProtocol(), OBS_N, seed=seed, backend="numpy"
            )
            simulator.run_interactions(10_000)  # warm-up outside timed region
            mark = RECORDER.mark() if enabled else None
            started = time.perf_counter()
            simulator.run_interactions(OBS_INTERACTIONS)
            elapsed = time.perf_counter() - started
            best = min(best, elapsed)
            if enabled:
                counters = RECORDER.since(mark)["counters"]
    finally:
        RECORDER.enabled = prior
        RECORDER.reset()
    return best, counters


def _guard_cost_seconds(evaluations: int = 2_000_000) -> float:
    """Measured cost of one ``if RECORDER.enabled:`` no-op guard."""
    recorder = RECORDER
    assert not recorder.enabled
    hits = 0
    started = time.perf_counter()
    for _ in range(evaluations):
        if recorder.enabled:
            hits += 1
    elapsed = time.perf_counter() - started
    assert hits == 0
    return elapsed / evaluations


def run_overhead_gate() -> tuple[dict, list[str]]:
    """Measure both overheads; return (report, gate failures)."""
    failures: list[str] = []

    baseline_seconds, _ = _timed_run(enabled=False)
    enabled_seconds, counters = _timed_run(enabled=True)

    enabled_overhead = enabled_seconds / baseline_seconds - 1.0
    if enabled_overhead > ENABLED_OVERHEAD_LIMIT:
        failures.append(
            f"enabled telemetry costs {enabled_overhead:+.2%} on the batched "
            f"epidemic hot path (limit {ENABLED_OVERHEAD_LIMIT:.1%})"
        )

    # One guard fires per timed/counted block: kernel advances plus
    # convergence bookkeeping; sum every counter that maps 1:1 to a guarded
    # block and double it as a safety margin for guards without counters.
    guard_count = 2 * max(
        1,
        counters.get("backend.kernel_advances", 0)
        + counters.get("engine.convergence_checks", 0),
    )
    guard_seconds = _guard_cost_seconds()
    noop_overhead = guard_seconds * guard_count / baseline_seconds
    if noop_overhead > NOOP_OVERHEAD_LIMIT:
        failures.append(
            f"projected no-op guard overhead is {noop_overhead:.3%} "
            f"({guard_count} guards x {guard_seconds * 1e9:.1f}ns over a "
            f"{baseline_seconds:.3f}s run; limit {NOOP_OVERHEAD_LIMIT:.1%}) — "
            f"a guard moved into a per-interaction loop?"
        )

    report = {
        "population_size": OBS_N,
        "interactions": OBS_INTERACTIONS,
        "rounds": OBS_ROUNDS,
        "baseline_seconds": baseline_seconds,
        "enabled_seconds": enabled_seconds,
        "enabled_overhead": enabled_overhead,
        "guard_count": guard_count,
        "guard_ns": guard_seconds * 1e9,
        "noop_overhead": noop_overhead,
    }
    return report, failures


# -- pytest entry (collected by the benchmark job's bench_* matcher) ------------


def bench_obs_overhead_gate():
    """The CI gate as a test: telemetry must stay within its overhead budget."""
    report, failures = run_overhead_gate()
    assert report["baseline_seconds"] > 0
    assert not failures, "; ".join(failures)


def main() -> int:
    print(
        f"telemetry overhead: batched epidemic, n={OBS_N:,}, "
        f"{OBS_INTERACTIONS:,} interactions, best of {OBS_ROUNDS}"
    )
    report, failures = run_overhead_gate()
    print(
        f"  telemetry off : {report['baseline_seconds']:7.3f}s"
    )
    print(
        f"  telemetry on  : {report['enabled_seconds']:7.3f}s "
        f"({report['enabled_overhead']:+.2%}, limit {ENABLED_OVERHEAD_LIMIT:.1%})"
    )
    print(
        f"  no-op guards  : {report['guard_count']} x {report['guard_ns']:.1f}ns "
        f"= {report['noop_overhead']:.4%} projected (limit {NOOP_OVERHEAD_LIMIT:.1%})"
    )
    for failure in failures:
        print(f"  GATE FAILURE: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
