"""T-CRN — mass-action kinetics of the CRN front-end, validated and scaled.

Two halves, matching the two promises of the CRN subsystem
(``DESIGN.md``, CRN front-end):

**Validation** — at small ``n`` the engines running a lowered 3-species CRN
(the SIR network) must reproduce the exact Gillespie SSA *in distribution*:
for each sampled chemical time the mean and standard deviation of the
recovered-count are compared between engine runs (sampled at parallel time
``Gamma * t``) and SSA runs, and the two-sample z-score of the means must
stay small.  The thinned lowering is validated on a clock-free jump-chain
statistic (the SIR final epidemic size).

**Scale** — the same declarative spec must run at populations no exact SSA
can touch: a library CRN is executed end to end at ``n = 10^6`` (default;
``REPRO_CRN_N`` overrides) on the batched engine, recording wall-clock
time, interactions per second and the convergence result.

Besides the pytest-benchmark entries, this module doubles as a script::

    PYTHONPATH=src python benchmarks/bench_crn_kinetics.py

which runs both halves and writes the ``BENCH_crn.json`` artifact.
Environment knobs: ``REPRO_CRN_N`` (scale population, default 1e6),
``REPRO_CRN_VAL_N`` (validation population, default 60),
``REPRO_CRN_VAL_RUNS`` (runs per validation sample, default 96).
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from repro._version import __version__
from repro.crn import compile_crn, get_crn_workload, simulate_ssa
from repro.exceptions import ConvergenceError

SCALE_N = int(float(os.environ.get("REPRO_CRN_N", "1000000")))
VALIDATION_N = int(os.environ.get("REPRO_CRN_VAL_N", "60"))
VALIDATION_RUNS = max(8, int(os.environ.get("REPRO_CRN_VAL_RUNS", "96")))
VALIDATION_TIMES = (2.0, 6.0, 12.0)
ARTIFACT_NAME = "BENCH_crn.json"

#: Scale workloads: (workload, engine, mode) — the headline batched run plus
#: a thinned comparison point on the same network.
SCALE_CELLS = (
    ("approximate-majority", "batched", "uniform"),
    ("approximate-majority", "batched", "thinned"),
    ("sir", "batched", "uniform"),
)


def _mean_std(values) -> tuple[float, float]:
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / max(1, len(values) - 1)
    return mean, math.sqrt(variance)


def _z_score(sample_a, sample_b) -> float:
    mean_a, std_a = _mean_std(sample_a)
    mean_b, std_b = _mean_std(sample_b)
    spread = math.sqrt(std_a**2 / len(sample_a) + std_b**2 / len(sample_b))
    return (mean_a - mean_b) / max(spread, 1e-9)


# ---------------------------------------------------------------------------
# Validation half: engine moments vs the exact SSA
# ---------------------------------------------------------------------------


def validate_uniform_lowering(engine: str, runs: int = VALIDATION_RUNS) -> dict:
    """Compare engine vs SSA moments of the SIR recovered-count trajectory."""
    workload = get_crn_workload("sir")
    compiled = compile_crn(workload.crn)
    engine_rows = []
    started = time.perf_counter()
    for run in range(runs):
        simulator = compiled.build(engine, VALIDATION_N, seed=1000 + run)
        previous = 0.0
        row = []
        for chemical_time in VALIDATION_TIMES:
            target = compiled.to_parallel_time(chemical_time)
            simulator.run_parallel_time(target - previous)
            previous = target
            row.append(simulator.count("R"))
        engine_rows.append(row)
    engine_seconds = time.perf_counter() - started
    ssa_rows = [
        list(
            simulate_ssa(
                workload.crn, VALIDATION_N, VALIDATION_TIMES, seed=5000 + run
            ).counts["R"]
        )
        for run in range(2 * runs)
    ]
    points = []
    for position, chemical_time in enumerate(VALIDATION_TIMES):
        engine_sample = [row[position] for row in engine_rows]
        ssa_sample = [row[position] for row in ssa_rows]
        engine_mean, engine_std = _mean_std(engine_sample)
        ssa_mean, ssa_std = _mean_std(ssa_sample)
        points.append(
            {
                "chemical_time": chemical_time,
                "engine_mean": engine_mean,
                "engine_std": engine_std,
                "ssa_mean": ssa_mean,
                "ssa_std": ssa_std,
                "z_mean": _z_score(engine_sample, ssa_sample),
            }
        )
    return {
        "check": "uniform-time-moments",
        "crn": "sir",
        "engine": engine,
        "mode": "uniform",
        "population_size": VALIDATION_N,
        "runs": runs,
        "ssa_runs": 2 * runs,
        "rate_scale": compiled.rate_scale,
        "points": points,
        "max_abs_z": max(abs(point["z_mean"]) for point in points),
        "wall_seconds": engine_seconds,
    }


def validate_thinned_jump_chain(engine: str, runs: int = VALIDATION_RUNS) -> dict:
    """Compare the thinned lowering's SIR final size against the SSA."""
    workload = get_crn_workload("sir")
    compiled = compile_crn(workload.crn, mode="thinned")
    started = time.perf_counter()
    finals = []
    for run in range(runs):
        simulator = compiled.build(engine, VALIDATION_N, seed=3000 + run)
        simulator.run_until(
            workload.predicate,
            max_parallel_time=100_000.0,
            check_interval=VALIDATION_N,
        )
        finals.append(simulator.count("R"))
    engine_seconds = time.perf_counter() - started
    ssa_finals = [
        simulate_ssa(workload.crn, VALIDATION_N, [100_000.0], seed=7000 + run).at(0)["R"]
        for run in range(2 * runs)
    ]
    engine_mean, engine_std = _mean_std(finals)
    ssa_mean, ssa_std = _mean_std(ssa_finals)
    return {
        "check": "thinned-jump-chain-final-size",
        "crn": "sir",
        "engine": engine,
        "mode": "thinned",
        "population_size": VALIDATION_N,
        "runs": runs,
        "ssa_runs": 2 * runs,
        "engine_mean": engine_mean,
        "engine_std": engine_std,
        "ssa_mean": ssa_mean,
        "ssa_std": ssa_std,
        "max_abs_z": abs(_z_score(finals, ssa_finals)),
        "wall_seconds": engine_seconds,
    }


# ---------------------------------------------------------------------------
# Scale half: a library CRN at n = 10^6 on the batched engine
# ---------------------------------------------------------------------------


def run_at_scale(workload_name: str, engine: str, mode: str, n: int = SCALE_N) -> dict:
    """One end-to-end CRN run at large ``n``, timed."""
    workload = get_crn_workload(workload_name)
    compiled = compile_crn(workload.crn, mode=mode)
    simulator = compiled.build(engine, n, seed=2019)
    budget = compiled.rate_scale * workload.default_chemical_budget(n)
    started = time.perf_counter()
    converged = True
    convergence_time = None
    try:
        convergence_time = simulator.run_until(workload.predicate, max_parallel_time=budget)
    except ConvergenceError:  # a timeout is data, not a crash
        converged = False
    elapsed = time.perf_counter() - started
    cell = {
        "crn": workload_name,
        "engine": engine,
        "mode": mode,
        "population_size": n,
        "converged": converged,
        "convergence_parallel_time": convergence_time,
        "interactions": int(simulator.interactions),
        "interactions_per_second": simulator.interactions / max(elapsed, 1e-9),
        "wall_seconds": elapsed,
        "counts": {
            str(state): int(count)
            for state, count in sorted(simulator.configuration().items())
        },
    }
    if mode == "uniform" and convergence_time is not None:
        cell["convergence_chemical_time"] = compiled.to_chemical_time(convergence_time)
    return cell


# ---------------------------------------------------------------------------
# pytest-benchmark entries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["count", "batched"])
def bench_crn_uniform_matches_ssa(benchmark, engine):
    """Uniform lowering: SIR trajectory moments vs the exact SSA."""
    cell = {}

    def run_cell():
        cell.update(validate_uniform_lowering(engine, runs=32))
        return cell

    benchmark.pedantic(run_cell, rounds=1, iterations=1)
    benchmark.extra_info.update(cell)
    assert cell["max_abs_z"] < 4.0


def bench_crn_thinned_matches_ssa_jump_chain(benchmark):
    """Thinned lowering: SIR final size (clock-free) vs the exact SSA."""
    cell = {}

    def run_cell():
        cell.update(validate_thinned_jump_chain("batched", runs=32))
        return cell

    benchmark.pedantic(run_cell, rounds=1, iterations=1)
    benchmark.extra_info.update(cell)
    assert cell["max_abs_z"] < 4.0


def bench_crn_batched_at_scale(benchmark):
    """One library CRN to convergence on the batched engine (modest n here)."""
    cell = {}

    def run_cell():
        cell.update(run_at_scale("approximate-majority", "batched", "uniform", n=100_000))
        return cell

    benchmark.pedantic(run_cell, rounds=1, iterations=1)
    benchmark.extra_info.update(cell)
    assert cell["converged"]


# ---------------------------------------------------------------------------
# Script mode: validation report + scale table + artifact
# ---------------------------------------------------------------------------


def main() -> int:
    print(
        f"CRN kinetics benchmark: validation at n = {VALIDATION_N} "
        f"({VALIDATION_RUNS} engine runs, {2 * VALIDATION_RUNS} SSA runs), "
        f"scale at n = {SCALE_N}"
    )
    print()
    print("validation against the exact SSA (|z| of the trajectory means):")
    validations = []
    for engine in ("count", "batched"):
        cell = validate_uniform_lowering(engine)
        validations.append(cell)
        zs = ", ".join(
            f"t={p['chemical_time']:g}: z={p['z_mean']:+.2f}" for p in cell["points"]
        )
        print(f"  uniform/{engine:<8} sir  {zs}  [{cell['wall_seconds']:.1f}s]")
    for engine in ("count", "batched"):
        cell = validate_thinned_jump_chain(engine)
        validations.append(cell)
        print(
            f"  thinned/{engine:<8} sir  final size: engine "
            f"{cell['engine_mean']:.1f} vs SSA {cell['ssa_mean']:.1f} "
            f"(z={cell['max_abs_z']:.2f})  [{cell['wall_seconds']:.1f}s]"
        )
    worst = max(cell["max_abs_z"] for cell in validations)
    print(f"  worst |z| over all checks: {worst:.2f} (threshold 4.0)")
    print()

    print(f"library CRNs at scale (batched engine):")
    scale = []
    for workload_name, engine, mode in SCALE_CELLS:
        cell = run_at_scale(workload_name, engine, mode)
        scale.append(cell)
        rate = cell["interactions_per_second"]
        print(
            f"  {workload_name:<22} {mode:<8} n={cell['population_size']:.0e}  "
            f"conv={cell['converged']}  "
            f"interactions={cell['interactions']:.3e} ({rate:.2e}/s)  "
            f"[{cell['wall_seconds']:.1f}s]"
        )

    artifact = {
        "version": __version__,
        "validation_population": VALIDATION_N,
        "validation_runs": VALIDATION_RUNS,
        "validation_times": list(VALIDATION_TIMES),
        "z_threshold": 4.0,
        "validation": validations,
        "scale_population": SCALE_N,
        "scale": scale,
    }
    path = _REPO_ROOT / ARTIFACT_NAME
    path.write_text(json.dumps(artifact, indent=2) + "\n", encoding="utf-8")
    print(f"\nartifact written to {path}")
    return 0 if worst < 4.0 else 1


if __name__ == "__main__":
    sys.exit(main())
