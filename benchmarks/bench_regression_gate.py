"""T-GATE — the enforced perf-regression gate over the four BENCH families.

``BENCH_engines.json`` / ``BENCH_schedulers.json`` / ``BENCH_crn.json`` /
``BENCH_multiscale.json`` are *trajectory* artifacts: full-scale benchmark
runs committed for the record but far too slow to re-measure on every push.
This gate replays a tiny-``n`` slice of each family against
**committed baselines**
(``benchmarks/baselines/regression_gate.json``) and fails when

* a slice's throughput falls more than ``REGRESSION_TOLERANCE`` (30%) below
  its baseline floor — floors are stored as a *fraction of a calibration
  rate* (elementwise numpy throughput, the same machine-speed proxy as
  ``bench_backend_smoke``), so the gate tracks runner speed instead of
  hard-coding seconds; or
* any accuracy bound is violated at all: every trial of every slice must
  converge, and the size-estimation slice's additive error must stay within
  its committed bound — accuracy gets **zero** tolerance because it drifts
  only when the simulation itself changed.

The gate must demonstrably gate: setting ``REPRO_GATE_THROTTLE`` (seconds
of artificial stall injected into every timed region) makes the run fail,
and CI runs one throttled job asserting exactly that, so a gate that
silently stopped failing is itself caught.

Also a script::

    PYTHONPATH=src python benchmarks/bench_regression_gate.py

printing each slice's measurements vs its floor and exiting non-zero on any
regression — this is what the CI ``perf-regression-gate`` job runs.
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

import numpy as np

BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "regression_gate.json"
#: Maximum tolerated throughput shortfall before the gate fails (matches
#: bench_backend_smoke).  Accuracy bounds get no tolerance at all.
REGRESSION_TOLERANCE = 0.30
#: Artificial stall (seconds) added inside every timed region; the CI
#: self-test sets this to prove a slowdown actually fails the job.
GATE_THROTTLE = float(os.environ.get("REPRO_GATE_THROTTLE", "0") or 0)


def _calibration_rate() -> float:
    """Machine-speed proxy: elementwise-multiply throughput (ops/second)."""
    block = np.random.default_rng(0).random(1_000_000)
    started = time.perf_counter()
    for _ in range(20):
        block = block * 1.0000001
    elapsed = time.perf_counter() - started
    return 20 * block.size / max(elapsed, 1e-9)


def _timed(thunk):
    """Run ``thunk`` under the wall clock, plus any injected throttle."""
    started = time.perf_counter()
    value = thunk()
    if GATE_THROTTLE > 0:
        time.sleep(GATE_THROTTLE)
    return value, time.perf_counter() - started


# -- the four slices ------------------------------------------------------------
#
# Each returns {"interactions": int, "seconds": float, "accuracy": [failures]}.
# Workload scales are env-tunable but default to a couple of seconds total.

ENGINE_N = int(os.environ.get("REPRO_GATE_ENGINE_N", "20000"))
ENGINE_INTERACTIONS = int(os.environ.get("REPRO_GATE_ENGINE_INTERACTIONS", "500000"))
SCHED_SIZES = (128, 192)
SCHED_RUNS = 2
CRN_N = int(os.environ.get("REPRO_GATE_CRN_N", "2000"))
CRN_RUNS = 2
MULTISCALE_N = int(float(os.environ.get("REPRO_GATE_MULTISCALE_N", "1e7")))
#: Additive-error bound for the size-estimation (schedulers-family) slice.
#: Theorem 3.1 promises error ~1 whp at large n; at these tiny sizes the
#: committed bound is measured-plus-slack and any drift past it means the
#: estimation pipeline itself changed.
ESTIMATION_ERROR_BOUND_KEY = "estimation_error_bound"


def slice_engines() -> dict:
    """BENCH_engines slice: batched epidemic throughput at tiny n."""
    from repro.engine.selection import build_engine
    from repro.protocols.epidemic import EpidemicProtocol

    simulator = build_engine("batched", EpidemicProtocol(), ENGINE_N, seed=1)
    simulator.run_interactions(10_000)  # warm-up outside the timed region
    _, elapsed = _timed(lambda: simulator.run_interactions(ENGINE_INTERACTIONS))
    return {
        "interactions": ENGINE_INTERACTIONS,
        "seconds": elapsed,
        "accuracy": [],
    }


def slice_schedulers(baseline: dict) -> dict:
    """BENCH_schedulers slice: size estimation under a non-default scheduler.

    Accuracy criteria: every run converges and the worst additive error of
    the log2(n) estimate stays within the committed bound.
    """
    from repro.harness.experiment import ExperimentSpec, run_array_experiment

    spec = ExperimentSpec(
        population_sizes=SCHED_SIZES, runs_per_size=SCHED_RUNS, base_seed=11
    )
    result, elapsed = _timed(lambda: run_array_experiment(spec))
    failures = []
    interactions = 0
    worst = 0.0
    for record in result.records:
        interactions += int(record.extra.get("interactions", 0) or 0)
        if not record.converged:
            failures.append(
                f"estimation run n={record.population_size} "
                f"seed={record.seed} did not converge"
            )
        elif math.isfinite(record.max_additive_error):
            worst = max(worst, record.max_additive_error)
    bound = baseline[ESTIMATION_ERROR_BOUND_KEY]
    if worst > bound:
        failures.append(
            f"size-estimation additive error {worst:.3f} exceeds the "
            f"committed bound {bound:.3f}"
        )
    return {"interactions": interactions, "seconds": elapsed, "accuracy": failures}


def slice_crn() -> dict:
    """BENCH_crn slice: approximate-majority on the batched engine."""
    from repro.harness.parallel import build_crn_trials, run_trials

    specs = build_crn_trials(
        population_sizes=[CRN_N],
        runs_per_size=CRN_RUNS,
        crn="approximate-majority",
        base_seed=3,
        engine="batched",
    )
    outcome, elapsed = _timed(lambda: run_trials(specs))
    failures = []
    interactions = 0
    for record in outcome.records:
        interactions += int(record.extra.get("interactions", 0) or 0)
        if not record.converged:
            failures.append(
                f"approximate-majority run n={record.population_size} "
                f"seed={record.seed} did not converge"
            )
    return {"interactions": interactions, "seconds": elapsed, "accuracy": failures}


def slice_multiscale() -> dict:
    """BENCH_multiscale slice: epidemic to completion at n = 10^7.

    Throughput is *effective* interactions/s (``parallel_time * n`` — the
    work an interaction-bound engine would have had to draw), the same
    currency BENCH_multiscale.json records.  Accuracy criterion: the
    epidemic must actually finish (every agent infected) inside the budget.
    """
    from repro.engine.selection import build_engine
    from repro.protocols.epidemic import EpidemicProtocol, EpidemicState
    from repro.exceptions import ConvergenceError

    simulator = build_engine("multiscale", EpidemicProtocol(), MULTISCALE_N, seed=7)
    failures = []

    def run():
        try:
            simulator.run_until(
                lambda engine: engine.count(EpidemicState.INFECTED) == MULTISCALE_N,
                max_parallel_time=100.0,
            )
        except ConvergenceError:
            failures.append(
                f"multiscale epidemic n={MULTISCALE_N} did not finish "
                "within 100 units of parallel time"
            )

    _, elapsed = _timed(run)
    return {
        "interactions": int(simulator.interactions),
        "seconds": elapsed,
        "accuracy": failures,
    }


def load_baseline() -> dict:
    with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def run_gate() -> tuple[list[dict], list[str]]:
    """Replay every slice; return (measurements, gate failures)."""
    baseline = load_baseline()
    calibration = _calibration_rate()
    slices = [
        ("engines", slice_engines()),
        ("schedulers", slice_schedulers(baseline)),
        ("crn", slice_crn()),
        ("multiscale", slice_multiscale()),
    ]
    records: list[dict] = []
    failures: list[str] = []
    for name, measured in slices:
        rate = measured["interactions"] / max(measured["seconds"], 1e-9)
        floor_fraction = baseline["floors_per_calibration"][name]
        floor = floor_fraction * calibration * (1.0 - REGRESSION_TOLERANCE)
        records.append(
            {
                "slice": name,
                "interactions": measured["interactions"],
                "seconds": measured["seconds"],
                "interactions_per_second": rate,
                "floor": floor,
            }
        )
        if rate < floor:
            failures.append(
                f"{name} slice throughput {rate:,.0f} interactions/s fell "
                f"below the committed machine-scaled floor {floor:,.0f}/s "
                f"(>{REGRESSION_TOLERANCE:.0%} regression)"
            )
        failures.extend(
            f"{name} slice accuracy: {failure}"
            for failure in measured["accuracy"]
        )
    return records, failures


# -- pytest entry (collected by the benchmark job's bench_* matcher) ------------


def bench_regression_gate():
    """The CI gate as a test: replay all four slices against the baselines."""
    records, failures = run_gate()
    assert len(records) == 4, "a slice went missing"
    assert not failures, "; ".join(failures)


def main() -> int:
    print(
        f"regression gate: engines(n={ENGINE_N:,}), "
        f"schedulers(sizes={list(SCHED_SIZES)} x {SCHED_RUNS}), "
        f"crn(n={CRN_N:,} x {CRN_RUNS}), multiscale(n={MULTISCALE_N:,})"
        + (f" [throttled +{GATE_THROTTLE:g}s/slice]" if GATE_THROTTLE else "")
    )
    records, failures = run_gate()
    for record in records:
        print(
            f"  {record['slice']:>10}: {record['seconds']:7.3f}s, "
            f"{record['interactions_per_second']:>12,.0f} inter/s "
            f"(floor {record['floor']:,.0f}/s)"
        )
    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print(
        "gate: ok (no slice regressed by more than "
        f"{REGRESSION_TOLERANCE:.0%}; all accuracy bounds hold)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
