"""T-DENSE — Lemma 4.2 (timer/density lemma), empirically.

From an ``alpha``-dense configuration, every ``m``-``rho``-producible state
should reach count ``delta * n`` within one unit of parallel time, for a
``delta`` that does not vanish as ``n`` grows.  The benchmark runs the
3-state approximate-majority protocol (whose producible set from a balanced
dense start is the full state set {X, Y, B}) at growing sizes and records the
minimum producible-state fraction observed at time 1.
"""

from __future__ import annotations

import pytest

from repro.protocols.majority import ApproximateMajorityProtocol
from repro.termination.definitions import DenseInitialFamily
from repro.termination.density import density_trajectory

SIZES = [1_000, 4_000, 16_000]


@pytest.mark.parametrize("population_size", SIZES)
def bench_density_lemma_minimum_fraction(benchmark, population_size):
    family = DenseInitialFamily(
        base_fractions={"X": 0.5, "Y": 0.5}, description="balanced opinions"
    )
    holder = {}

    def run_density_experiment():
        observation = density_trajectory(
            ApproximateMajorityProtocol(),
            family,
            population_size,
            observation_time=1.0,
            threshold_fraction=0.02,
            samples=20,
            seed=31,
        )
        holder["observation"] = observation
        return observation

    benchmark.pedantic(run_density_experiment, rounds=1, iterations=1)

    observation = holder["observation"]
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["min_producible_fraction"] = observation.min_fraction
    benchmark.extra_info["fractions"] = {
        str(state): round(fraction, 4)
        for state, fraction in observation.fractions.items()
    }
    # Lemma 4.2: the fraction is bounded away from zero, uniformly in n.
    assert observation.min_fraction > 0.02
    assert all(
        reach_time is not None for reach_time in observation.first_reach_times.values()
    )
