"""T-EPI — Lemma A.1 / Corollaries 3.4-3.5: epidemic completion times.

Measures the completion time of (a) a full-population epidemic and (b) an
epidemic restricted to a one-third sub-population, against the closed-form
expectation ``(n-1)/n * H_{n-1}`` and the ``24 ln n`` budget that fixes the
protocol's phase-clock constant.  The full-population experiment runs on both
configuration-level engines (count-based and batched) through the sweep
driver (the registered ``"epidemic"`` workload; ``REPRO_SWEEP_WORKERS``
parallelises the runs), so large populations are cheap and the two engines
are continuously cross-checked against the same theoretical budgets; the
sub-population variant stays on the count engine because its inert third
state lies outside the protocol's declared state set.
"""

from __future__ import annotations

import math
import statistics

import pytest

from benchmarks.conftest import SWEEP_WORKERS
from repro.analysis.epidemic_theory import expected_epidemic_time
from repro.engine.configuration import Configuration
from repro.engine.count_simulator import CountSimulator
from repro.harness.experiment import run_finite_state_experiment
from repro.protocols.epidemic import EpidemicProtocol, EpidemicState

POPULATIONS = [1_000, 10_000, 100_000]
RUNS = 3


@pytest.mark.parametrize("engine", ["count", "batched"])
@pytest.mark.parametrize("population_size", POPULATIONS)
def bench_full_population_epidemic(benchmark, population_size, engine):
    holder = {"times": []}

    def run_epidemics():
        sweep = run_finite_state_experiment(
            "epidemic",
            population_sizes=[population_size],
            runs_per_size=RUNS,
            max_parallel_time=50 * math.log(population_size),
            engine=engine,
            base_seed=0,
            workers=SWEEP_WORKERS,
        )
        assert all(record.converged for record in sweep.records)
        holder["times"] = [record.convergence_time for record in sweep.records]
        return holder["times"]

    benchmark.pedantic(run_epidemics, rounds=1, iterations=1)

    times = holder["times"]
    expected = expected_epidemic_time(population_size)
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["mean_completion_time"] = statistics.fmean(times)
    benchmark.extra_info["expected_lemma_a1"] = expected
    benchmark.extra_info["budget_24_ln_n"] = 24 * math.log(population_size)
    assert statistics.fmean(times) < 24 * math.log(population_size)


@pytest.mark.parametrize("population_size", [3_000, 30_000])
def bench_subpopulation_epidemic(benchmark, population_size):
    """Corollary 3.4/3.5: an epidemic among n/3 agents still finishes in 24 ln n."""
    third = population_size // 3
    holder = {"times": []}

    def run_subpopulation_epidemics():
        times = []
        for run_index in range(RUNS):
            # Only the sub-population participates: the rest of the agents are
            # modelled as an inert third state that never reacts.
            configuration = Configuration(
                {
                    EpidemicState.INFECTED: 1,
                    EpidemicState.SUSCEPTIBLE: third - 1,
                    "inert": population_size - third,
                }
            )
            protocol = EpidemicProtocol()
            simulator = CountSimulator(
                protocol,
                population_size,
                seed=100 + run_index,
                initial_configuration=configuration,
            )
            times.append(
                simulator.run_until(
                    lambda sim: sim.count(EpidemicState.SUSCEPTIBLE) == 0,
                    max_parallel_time=60 * math.log(population_size),
                )
            )
        holder["times"] = times
        return times

    benchmark.pedantic(run_subpopulation_epidemics, rounds=1, iterations=1)

    times = holder["times"]
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["subpopulation"] = third
    benchmark.extra_info["mean_completion_time"] = statistics.fmean(times)
    benchmark.extra_info["budget_24_ln_n"] = 24 * math.log(population_size)
    # Corollary 3.5: 24 ln n suffices w.h.p. even restricted to a third.
    assert max(times) < 24 * math.log(population_size)
