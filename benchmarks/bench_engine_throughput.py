"""T-ENGINE — supporting benchmark: raw throughput of the three engines.

Not a paper artefact, but the number that determines how far the Figure 2
sweep can be pushed: interactions per second of (a) the agent-level engine on
the main protocol, (b) the count-based engine on a two-state epidemic and
(c) the vectorised matching-round engine on the main protocol.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import PAPER_PARAMS
from repro.core.array_simulator import ArrayLogSizeSimulator
from repro.core.log_size_estimation import LogSizeEstimationProtocol
from repro.core.parameters import ProtocolParameters
from repro.engine.count_simulator import CountSimulator
from repro.engine.simulator import Simulation
from repro.protocols.epidemic import EpidemicProtocol


def bench_agent_engine_throughput(benchmark):
    """Agent-level engine running the main protocol (interactions/second)."""
    interactions = 20_000
    protocol = LogSizeEstimationProtocol(ProtocolParameters.fast_test())
    simulation = Simulation(protocol, 256, seed=1)

    def run_chunk():
        simulation.run_interactions(interactions)

    benchmark.pedantic(run_chunk, rounds=3, iterations=1)
    benchmark.extra_info["interactions_per_round"] = interactions


def bench_count_engine_throughput(benchmark):
    """Count-based engine running an epidemic at n = 10^5 (interactions/second)."""
    interactions = 50_000
    simulator = CountSimulator(EpidemicProtocol(), 100_000, seed=1)

    def run_chunk():
        simulator.run_interactions(interactions)

    benchmark.pedantic(run_chunk, rounds=3, iterations=1)
    benchmark.extra_info["interactions_per_round"] = interactions


@pytest.mark.parametrize("population_size", [1_024, 8_192])
def bench_array_engine_throughput(benchmark, population_size):
    """Vectorised engine: matching rounds per second at two population sizes."""
    rounds = 2_000
    simulator = ArrayLogSizeSimulator(population_size, params=PAPER_PARAMS, seed=1)

    def run_rounds():
        for _ in range(rounds):
            simulator.run_round()

    benchmark.pedantic(run_rounds, rounds=1, iterations=1)
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["matching_rounds"] = rounds
    benchmark.extra_info["interactions"] = rounds * (population_size // 2)
