"""T-ENGINE — supporting benchmark: raw throughput of the simulation engines.

Not a paper artefact, but the number that determines how far every sweep can
be pushed: interactions per second of

(a) the agent-level engine (on the main protocol and on the epidemic),
(b) the count-based engine on a two-state epidemic,
(c) the batched count engine on the same epidemic,
(d) the vector engine on the same epidemic (generic finite-state kernel over
    matching rounds),
(e) the vector engine running the main protocol's bespoke kernel
    (``ArrayLogSizeSimulator``), and
(f) the batched engine through every *available* JIT array backend (numba,
    native) — the array-backend seam of ``repro.backend`` — recorded as a
    separate dimension of the artifact.

Besides the pytest-benchmark entries, this module doubles as a script::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

which sweeps the four finite-state engines over ``n = 10^3 .. 10^6``
(override with ``REPRO_ENGINE_BENCH_SIZES``) running the epidemic for
``REPRO_ENGINE_BENCH_TIME`` (default 20) units of parallel time each, and
writes a ``BENCH_engines.json`` trajectory artifact so future changes can be
checked for throughput regressions.  The artifact records the
batched-vs-count speedup at the largest size (the PR-2 tentpole target is
>= 20x at ``n = 10^6``) and, per JIT backend, the batched throughput and its
ratio to the numpy reference backend (the array-backend tentpole target is
>= 10^8 interactions/s and >= 10x the pre-seam batched rate at
``n = 10^6``).
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from benchmarks.conftest import PAPER_PARAMS
from repro._version import __version__
from repro.backend import backend_availability
from repro.core.array_simulator import ArrayLogSizeSimulator
from repro.core.log_size_estimation import LogSizeEstimationProtocol
from repro.core.parameters import ProtocolParameters
from repro.engine.count_simulator import CountSimulator
from repro.engine.selection import ENGINE_NAMES, build_engine
from repro.engine.simulator import Simulation
from repro.protocols.epidemic import EpidemicProtocol
from repro.workloads.populations import sizes_from_env

#: Sweep grid of the engine-comparison script / benchmarks.  The agent engine
#: is only run up to this cap (it is O(n) per unit of parallel time and
#: exists in the sweep as the exact reference point).
ENGINE_SWEEP_SIZES = sizes_from_env(
    "REPRO_ENGINE_BENCH_SIZES", [1_000, 10_000, 100_000, 1_000_000]
)
AGENT_ENGINE_SIZE_CAP = 10_000
PARALLEL_TIME_UNITS = float(os.environ.get("REPRO_ENGINE_BENCH_TIME", "20"))
ARTIFACT_NAME = "BENCH_engines.json"

#: The batched rate this artifact recorded at ``n = 10^6`` immediately before
#: the array-backend seam landed (inline hot loops, v1.0.0) — the fixed
#: reference point of the ">= 10x with a JIT backend" target.
PRE_SEAM_BATCHED_RATE = 12_241_902.0


def jit_backend_names() -> list[str]:
    """The non-numpy array backends available in this environment."""
    return [
        name
        for name, reason in backend_availability().items()
        if name != "numpy" and reason is None
    ]


def time_epidemic_run(
    engine: str,
    population_size: int,
    parallel_time: float,
    seed: int = 1,
    backend: str | None = None,
) -> dict:
    """Run the epidemic for ``parallel_time`` units on ``engine``; time it.

    Returns a JSON-friendly record with the wall-clock seconds, the executed
    interaction count and the implied throughput.  ``backend`` selects an
    array backend on the engines that have a backend seam (batched, vector).
    """
    simulator = build_engine(
        engine, EpidemicProtocol(), population_size, seed=seed, backend=backend
    )
    started = time.perf_counter()
    simulator.run_parallel_time(parallel_time)
    elapsed = time.perf_counter() - started
    interactions = simulator.interactions
    record = {
        "engine": engine,
        "population_size": population_size,
        "parallel_time": parallel_time,
        "seconds": elapsed,
        "interactions": interactions,
        "interactions_per_second": interactions / elapsed if elapsed > 0 else None,
    }
    if engine in ("batched", "vector"):
        record["backend"] = simulator.backend.name
    if engine == "batched":
        record["batched_batches"] = simulator.batched_batches
        record["fallback_batches"] = simulator.fallback_batches
    return record


def run_engine_sweep(
    sizes=ENGINE_SWEEP_SIZES, parallel_time: float = PARALLEL_TIME_UNITS
) -> dict:
    """Time all four finite-state engines across ``sizes``; build the artifact."""
    results = []
    jit_backends = jit_backend_names()
    for population_size in sizes:
        for engine in ENGINE_NAMES:
            if engine == "agent" and population_size > AGENT_ENGINE_SIZE_CAP:
                continue
            record = time_epidemic_run(engine, population_size, parallel_time)
            results.append(record)
            rate = record["interactions_per_second"]
            rate_text = f"{rate:,.0f} interactions/s" if rate is not None else "n/a"
            print(
                f"  {engine:>7} n={population_size:>9,} : {record['seconds']:8.3f}s "
                f"({rate_text})"
            )
        # The backend dimension: the batched engine through each JIT backend.
        for backend in jit_backends:
            record = time_epidemic_run(
                "batched", population_size, parallel_time, backend=backend
            )
            results.append(record)
            rate = record["interactions_per_second"]
            rate_text = f"{rate:,.0f} interactions/s" if rate is not None else "n/a"
            label = f"batched[{backend}]"
            print(
                f"  {label:>15} n={population_size:>9,} : "
                f"{record['seconds']:8.3f}s ({rate_text})"
            )
    by_key = {
        (r["engine"], r["population_size"], r.get("backend", "numpy")): r
        for r in results
    }

    def _speedups(engine: str, backend: str = "numpy", versus=("count", "numpy")) -> dict:
        ratios = {}
        for population_size in sizes:
            reference = by_key.get((versus[0], population_size, versus[1]))
            other = by_key.get((engine, population_size, backend))
            if reference and other and other["seconds"] > 0:
                ratios[str(population_size)] = (
                    reference["seconds"] / other["seconds"]
                )
        return ratios

    largest = max(sizes)
    jit_target: dict = {
        "population_size": largest,
        "pre_seam_batched_interactions_per_second": PRE_SEAM_BATCHED_RATE,
    }
    numpy_record = by_key.get(("batched", largest, "numpy"))
    if numpy_record:
        jit_target["numpy_interactions_per_second"] = numpy_record[
            "interactions_per_second"
        ]
    best_backend, best_rate = None, 0.0
    for backend in jit_backends:
        record = by_key.get(("batched", largest, backend))
        if record and (record["interactions_per_second"] or 0.0) > best_rate:
            best_backend = backend
            best_rate = record["interactions_per_second"]
    if best_backend is not None:
        jit_target.update(
            {
                "best_backend": best_backend,
                "interactions_per_second": best_rate,
                "speedup_vs_numpy_backend": (
                    best_rate / numpy_record["interactions_per_second"]
                    if numpy_record
                    else None
                ),
                "speedup_vs_pre_seam": best_rate / PRE_SEAM_BATCHED_RATE,
                "meets_1e8_per_second": best_rate >= 1e8,
                "meets_10x_pre_seam": best_rate
                >= 10.0 * PRE_SEAM_BATCHED_RATE,
            }
        )

    return {
        "benchmark": "T-ENGINE epidemic engine sweep",
        "version": __version__,
        "protocol": EpidemicProtocol().describe(),
        "parallel_time_units": parallel_time,
        "backend_availability": backend_availability(),
        "results": results,
        "batched_vs_count_speedup": _speedups("batched"),
        "vector_vs_count_speedup": _speedups("vector"),
        "batched_backend_speedup_vs_numpy": {
            backend: _speedups("batched", backend, versus=("batched", "numpy"))
            for backend in jit_backends
        },
        "jit_backend_target": jit_target,
    }


def write_artifact(payload: dict, path: Path | None = None) -> Path:
    """Write the sweep payload as the ``BENCH_engines.json`` artifact."""
    if path is None:
        path = Path(__file__).resolve().parent.parent / ARTIFACT_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


# -- pytest-benchmark entries ---------------------------------------------------


def bench_agent_engine_throughput(benchmark):
    """Agent-level engine running the main protocol (interactions/second)."""
    interactions = 20_000
    protocol = LogSizeEstimationProtocol(ProtocolParameters.fast_test())
    simulation = Simulation(protocol, 256, seed=1)

    def run_chunk():
        simulation.run_interactions(interactions)

    benchmark.pedantic(run_chunk, rounds=3, iterations=1)
    benchmark.extra_info["interactions_per_round"] = interactions


def bench_count_engine_throughput(benchmark):
    """Count-based engine running an epidemic at n = 10^5 (interactions/second)."""
    interactions = 50_000
    simulator = CountSimulator(EpidemicProtocol(), 100_000, seed=1)

    def run_chunk():
        simulator.run_interactions(interactions)

    benchmark.pedantic(run_chunk, rounds=3, iterations=1)
    benchmark.extra_info["interactions_per_round"] = interactions


@pytest.mark.parametrize("engine", list(ENGINE_NAMES))
@pytest.mark.parametrize("population_size", [size for size in ENGINE_SWEEP_SIZES if size <= 100_000])
def bench_epidemic_engine_comparison(benchmark, engine, population_size):
    """All four finite-state engines on the same epidemic workload."""
    if engine == "agent" and population_size > AGENT_ENGINE_SIZE_CAP:
        pytest.skip("agent engine is the exact reference; capped at small n")
    parallel_time = min(PARALLEL_TIME_UNITS, 5.0)
    holder = {}

    def run_epidemic():
        holder.update(time_epidemic_run(engine, population_size, parallel_time))

    benchmark.pedantic(run_epidemic, rounds=1, iterations=1)
    benchmark.extra_info.update(holder)


def bench_batched_vs_count_speedup(benchmark):
    """The tentpole number: batched vs count at the largest sweep size.

    With the default grid this is the epidemic at ``n = 10^6`` for 20 units
    of parallel time; the batched engine must be at least 20x faster.
    """
    population_size = max(ENGINE_SWEEP_SIZES)
    holder = {}

    def run_pair():
        batched = time_epidemic_run("batched", population_size, PARALLEL_TIME_UNITS)
        count = time_epidemic_run("count", population_size, PARALLEL_TIME_UNITS)
        holder["batched"] = batched
        holder["count"] = count
        holder["speedup"] = count["seconds"] / batched["seconds"]

    benchmark.pedantic(run_pair, rounds=1, iterations=1)
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["batched_seconds"] = holder["batched"]["seconds"]
    benchmark.extra_info["count_seconds"] = holder["count"]["seconds"]
    benchmark.extra_info["speedup"] = holder["speedup"]
    # The 20x target is stated at n = 10^6 (the batching advantage grows with
    # n); scaled-down grids via REPRO_ENGINE_BENCH_SIZES only record the
    # number.
    if population_size >= 1_000_000:
        assert holder["speedup"] >= 20.0, (
            f"batched engine is only {holder['speedup']:.1f}x faster than the count "
            f"engine at n={population_size}; the tentpole target is 20x"
        )


def bench_batched_jit_backend_speedup(benchmark):
    """The array-backend tentpole: batched + best JIT backend vs numpy.

    At ``n = 10^6`` the fastest available JIT backend must sustain at least
    ``10^8`` interactions/s — >= 10x the batched rate recorded before the
    seam existed.  On numpy-only environments (no numba, no C toolchain)
    there is nothing to measure and the benchmark skips.
    """
    backends = jit_backend_names()
    if not backends:
        pytest.skip("no JIT array backend available (numpy-only environment)")
    population_size = max(ENGINE_SWEEP_SIZES)
    holder = {}

    def run_pair():
        numpy_record = time_epidemic_run(
            "batched", population_size, PARALLEL_TIME_UNITS, backend="numpy"
        )
        best = None
        for backend in backends:
            record = time_epidemic_run(
                "batched", population_size, PARALLEL_TIME_UNITS, backend=backend
            )
            if best is None or (
                record["interactions_per_second"]
                > best["interactions_per_second"]
            ):
                best = record
        holder["numpy"] = numpy_record
        holder["jit"] = best

    benchmark.pedantic(run_pair, rounds=1, iterations=1)
    jit_rate = holder["jit"]["interactions_per_second"]
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["jit_backend"] = holder["jit"]["backend"]
    benchmark.extra_info["jit_interactions_per_second"] = jit_rate
    benchmark.extra_info["numpy_interactions_per_second"] = holder["numpy"][
        "interactions_per_second"
    ]
    benchmark.extra_info["speedup_vs_pre_seam"] = jit_rate / PRE_SEAM_BATCHED_RATE
    # The 10^8/s and 10x-pre-seam bars are stated at n = 10^6; scaled-down
    # grids via REPRO_ENGINE_BENCH_SIZES only record the numbers.
    if population_size >= 1_000_000:
        assert jit_rate >= 1e8, (
            f"{holder['jit']['backend']} backend sustains only {jit_rate:,.0f} "
            f"interactions/s at n={population_size}; the target is 10^8"
        )
        assert jit_rate >= 10.0 * PRE_SEAM_BATCHED_RATE, (
            f"{holder['jit']['backend']} backend is only "
            f"{jit_rate / PRE_SEAM_BATCHED_RATE:.1f}x the pre-seam batched "
            f"rate; the target is 10x"
        )


@pytest.mark.parametrize("population_size", [1_024, 8_192])
def bench_array_engine_throughput(benchmark, population_size):
    """Vectorised engine: matching rounds per second at two population sizes."""
    rounds = 2_000
    simulator = ArrayLogSizeSimulator(population_size, params=PAPER_PARAMS, seed=1)

    def run_rounds():
        for _ in range(rounds):
            simulator.run_round()

    benchmark.pedantic(run_rounds, rounds=1, iterations=1)
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["matching_rounds"] = rounds
    benchmark.extra_info["interactions"] = rounds * (population_size // 2)


def main() -> int:
    """Run the engine sweep and write the ``BENCH_engines.json`` artifact."""
    print(
        f"Engine throughput sweep: epidemic, {PARALLEL_TIME_UNITS} units of "
        f"parallel time, sizes {ENGINE_SWEEP_SIZES}"
    )
    payload = run_engine_sweep()
    path = write_artifact(payload)
    print(f"\nartifact written to {path}")
    largest = str(max(ENGINE_SWEEP_SIZES))
    speedup = payload["batched_vs_count_speedup"].get(largest)
    if speedup is not None:
        print(f"batched vs count speedup at n={largest}: {speedup:.1f}x")
    target = payload["jit_backend_target"]
    if "best_backend" in target:
        print(
            f"best JIT backend at n={largest}: {target['best_backend']} at "
            f"{target['interactions_per_second']:,.0f} interactions/s "
            f"({target['speedup_vs_numpy_backend']:.1f}x the numpy backend, "
            f"{target['speedup_vs_pre_seam']:.1f}x the pre-seam rate; "
            f">=10^8/s: {target['meets_1e8_per_second']})"
        )
    else:
        print("no JIT array backend available; backend dimension not recorded")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
