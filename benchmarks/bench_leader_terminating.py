"""T-LEADER — Theorem 3.13: terminating size estimation with an initial leader.

Measures, for growing population sizes, (a) the parallel time at which the
leader-driven protocol produces its termination signal and (b) whether the
signal appeared only after the underlying size estimate had converged, plus
the accuracy of the announced estimate.  In contrast with the flat curve of
``bench_termination_density``, the signal time here grows with ``n`` — the
leader (a non-dense initial configuration) is what makes the delay possible.

Two engines run the experiment:

* the agent-level reference engine sweeps ``n = 32 .. 128`` (it is ``O(n)``
  Python per time unit, so that is its ceiling);
* the vector engine (``bench_leader_terminating_vector``) sweeps
  ``n = 10^4 .. 10^6`` (override with ``REPRO_LEADER_VECTOR_SIZES``), the
  populations the tentpole targets.

Scaled-down protocol constants are used on both engines so the sweeps finish
in minutes; the qualitative claims (termination after convergence, growth
with ``n``, accurate announced estimate) are parameter-independent.
"""

from __future__ import annotations

import math

import pytest

from repro.core.leader_terminating import (
    LeaderTerminatingSizeEstimation,
    all_agents_terminated,
    termination_happened_after_convergence,
)
from repro.core.parameters import ProtocolParameters
from repro.core.vector_leader import (
    LeaderTerminatingVectorProtocol,
    expected_termination_time,
)
from repro.engine.simulator import Simulation
from repro.engine.vector import VectorSimulator
from repro.workloads.populations import sizes_from_env

SIZES = [32, 64, 128]
PARAMS = ProtocolParameters.fast_test()

#: Vector-engine sweep grid (the tentpole target is a completed trial at 10^6).
VECTOR_SIZES = sizes_from_env("REPRO_LEADER_VECTOR_SIZES", [10_000, 1_000_000])
#: Constants for the large-n vector runs.  At ``n = 10^6`` one trial is
#: ~1.5k matching rounds over 10^6-element arrays (a few minutes of numpy);
#: the paper constants (95 / 5 / 289 phases) would multiply the round count
#: by three orders of magnitude without changing the qualitative claims.
VECTOR_PARAMS = ProtocolParameters(clock_threshold_factor=2, epochs_factor=1)
VECTOR_PHASES = 3
VECTOR_K2 = 1


@pytest.mark.parametrize("population_size", SIZES)
def bench_leader_terminating_size_estimation(benchmark, population_size):
    holder = {}

    def run_to_termination():
        protocol = LeaderTerminatingSizeEstimation(
            params=PARAMS, phase_count=16, termination_rounds_factor=2
        )
        simulation = Simulation(protocol, population_size, seed=5)
        elapsed = simulation.run_until(
            all_agents_terminated, max_parallel_time=500_000
        )
        holder["simulation"] = simulation
        holder["elapsed"] = elapsed
        return elapsed

    benchmark.pedantic(run_to_termination, rounds=1, iterations=1)

    simulation = holder["simulation"]
    target = math.log2(population_size)
    outputs = [simulation.protocol.output(state) for state in simulation.states]
    error = max(abs(value - target) for value in outputs if value is not None)
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["termination_parallel_time"] = holder["elapsed"]
    benchmark.extra_info["terminated_after_convergence"] = (
        termination_happened_after_convergence(simulation)
    )
    benchmark.extra_info["max_additive_error"] = error
    assert termination_happened_after_convergence(simulation)
    assert error < 5.7


@pytest.mark.parametrize("population_size", VECTOR_SIZES)
def bench_leader_terminating_vector(benchmark, population_size):
    """Theorem 3.13 on the vector engine, at populations the agent engine
    cannot touch; the trial must complete within the benchmark budget."""
    budget = 4 * expected_termination_time(
        population_size, VECTOR_PARAMS, VECTOR_PHASES, VECTOR_K2
    )
    holder = {}

    def run_to_termination():
        kernel = LeaderTerminatingVectorProtocol(
            VECTOR_PARAMS,
            phase_count=VECTOR_PHASES,
            termination_rounds_factor=VECTOR_K2,
        )
        simulator = VectorSimulator(kernel, population_size, seed=5)
        holder["result"] = simulator.run_until_done(max_parallel_time=budget)
        return holder["result"].convergence_time

    benchmark.pedantic(run_to_termination, rounds=1, iterations=1)

    result = holder["result"]
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["budget_parallel_time"] = budget
    benchmark.extra_info["termination_parallel_time"] = result.convergence_time
    benchmark.extra_info["rounds"] = result.rounds
    benchmark.extra_info["interactions"] = result.interactions
    benchmark.extra_info["max_additive_error"] = result.max_additive_error
    assert result.converged, (
        f"vector leader-terminating trial at n={population_size} did not "
        f"finish within its budget of {budget} parallel time"
    )
