"""T-LEADER — Theorem 3.13: terminating size estimation with an initial leader.

Measures, for growing population sizes, (a) the parallel time at which the
leader-driven protocol produces its termination signal and (b) whether the
signal appeared only after the underlying size estimate had converged, plus
the accuracy of the announced estimate.  In contrast with the flat curve of
``bench_termination_density``, the signal time here grows with ``n`` — the
leader (a non-dense initial configuration) is what makes the delay possible.

Scaled-down protocol constants are used so the sequential engine can sweep
several sizes; the qualitative claims (termination after convergence, growth
with ``n``, accurate announced estimate) are parameter-independent.
"""

from __future__ import annotations

import math

import pytest

from repro.core.leader_terminating import (
    LeaderTerminatingSizeEstimation,
    all_agents_terminated,
    termination_happened_after_convergence,
)
from repro.core.parameters import ProtocolParameters
from repro.engine.simulator import Simulation

SIZES = [32, 64, 128]
PARAMS = ProtocolParameters.fast_test()


@pytest.mark.parametrize("population_size", SIZES)
def bench_leader_terminating_size_estimation(benchmark, population_size):
    holder = {}

    def run_to_termination():
        protocol = LeaderTerminatingSizeEstimation(
            params=PARAMS, phase_count=16, termination_rounds_factor=2
        )
        simulation = Simulation(protocol, population_size, seed=5)
        elapsed = simulation.run_until(
            all_agents_terminated, max_parallel_time=500_000
        )
        holder["simulation"] = simulation
        holder["elapsed"] = elapsed
        return elapsed

    benchmark.pedantic(run_to_termination, rounds=1, iterations=1)

    simulation = holder["simulation"]
    target = math.log2(population_size)
    outputs = [simulation.protocol.output(state) for state in simulation.states]
    error = max(abs(value - target) for value in outputs if value is not None)
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["termination_parallel_time"] = holder["elapsed"]
    benchmark.extra_info["terminated_after_convergence"] = (
        termination_happened_after_convergence(simulation)
    )
    benchmark.extra_info["max_additive_error"] = error
    assert termination_happened_after_convergence(simulation)
    assert error < 5.7
