"""Shared configuration for the benchmark harness.

Every benchmark below regenerates one of the experiment-index entries of
``DESIGN.md`` (Figure 2 plus the theorem-level tables).  Each benchmark runs
one complete simulation per population size (``benchmark.pedantic`` with a
single round — these are end-to-end experiments, not micro-benchmarks) and
attaches the scientifically relevant numbers (convergence time, additive
error, termination time, ...) to ``benchmark.extra_info`` so they appear in
the pytest-benchmark report alongside the wall-clock time.

Population grids are intentionally modest so the full suite finishes in a few
minutes of pure Python; environment variables scale them up towards the
paper's ranges:

=========================  ==========================================
Variable                    Effect
=========================  ==========================================
``REPRO_FIG2_SIZES``        comma-separated sizes for the Figure 2 sweep
``REPRO_FIG2_RUNS``         runs per size for the Figure 2 sweep
``REPRO_BENCH_SIZES``       sizes for the accuracy / state / baseline tables
``REPRO_TERM_SIZES``        sizes for the termination experiments
``REPRO_SWEEP_WORKERS``     worker processes for sweep-driver benchmarks
=========================  ==========================================

Benchmarks built on the sweep driver (epidemic, majority/leader,
termination) run their trials through
:func:`repro.harness.experiment.run_finite_state_experiment`; setting
``REPRO_SWEEP_WORKERS > 1`` fans the trials out over a worker pool with
bit-identical results (wall-clock numbers then measure the parallel
harness, not a single engine).
"""

from __future__ import annotations

import os

import pytest

from repro.core.parameters import ProtocolParameters
from repro.workloads.populations import sizes_from_env


def _runs_from_env(variable: str, default: int) -> int:
    raw = os.environ.get(variable)
    if not raw:
        return default
    return max(1, int(raw))


#: Figure 2 sweep grid (paper: 100 .. 100 000; default capped for pure Python).
FIGURE2_SIZES = sizes_from_env("REPRO_FIG2_SIZES", [128, 256, 512, 1024])
FIGURE2_RUNS = _runs_from_env("REPRO_FIG2_RUNS", 2)

#: Grid for the accuracy / state-complexity / baseline tables.
TABLE_SIZES = sizes_from_env("REPRO_BENCH_SIZES", [256, 512, 1024])

#: Grid for the termination-time experiments.
TERMINATION_SIZES = sizes_from_env("REPRO_TERM_SIZES", [64, 256, 1024])

#: Worker processes used by sweep-driver benchmarks (1 = serial).
SWEEP_WORKERS = _runs_from_env("REPRO_SWEEP_WORKERS", 1)

#: The paper's protocol constants, used by all benchmarks.
PAPER_PARAMS = ProtocolParameters.paper()


@pytest.fixture
def paper_params() -> ProtocolParameters:
    """The paper's constants (clock 95, epochs 5)."""
    return PAPER_PARAMS
