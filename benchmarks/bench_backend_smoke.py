"""T-BACKEND-SMOKE — fast regression gate for the array-backend seam.

A tiny-``n`` throughput check designed to run on every CI push (seconds, not
minutes): it times the batched epidemic on the numpy reference backend and on
every *available* JIT backend, then fails if any available backend falls more
than 30% below the throughput the seam guarantees for it:

* every JIT backend must stay at or above ``(1 - 0.3) x`` the numpy
  reference — a JIT backend slower than interpreted numpy means its kernels
  silently stopped being used (a broken compile cache, an accidental
  fallback) or regressed outright;
* the numpy backend itself must stay at or above ``(1 - 0.3) x`` a recorded
  per-interaction floor, scaled by a calibration loop so the gate tracks
  machine speed instead of hard-coding wall-clock numbers.

Also a script::

    PYTHONPATH=src python benchmarks/bench_backend_smoke.py

which prints the same measurements and exits non-zero on a gate failure —
this is what the CI optional-deps job runs.  ``REPRO_SMOKE_N`` /
``REPRO_SMOKE_INTERACTIONS`` scale the workload.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

import numpy as np

from repro.backend import backend_availability
from repro.engine.selection import build_engine
from repro.protocols.epidemic import EpidemicProtocol

SMOKE_N = int(os.environ.get("REPRO_SMOKE_N", "50000"))
SMOKE_INTERACTIONS = int(os.environ.get("REPRO_SMOKE_INTERACTIONS", "2000000"))
#: Maximum tolerated throughput shortfall before the gate fails.
REGRESSION_TOLERANCE = 0.30
#: numpy-backend floor as a fraction of the calibration rate (see
#: ``_calibration_rate``).  The optimized reference kernel measures at
#: ~0.027x calibration at the default smoke scale; 0.008 leaves >3x slack
#: for runner noise while still catching an order-of-magnitude regression.
NUMPY_FLOOR_PER_CALIBRATION = 0.008


def _calibration_rate() -> float:
    """Machine-speed proxy: elementwise-multiply throughput (ops/second).

    Scaling the numpy floor by this keeps the gate meaningful across CI
    runners of very different speeds without hard-coding seconds.
    """
    block = np.random.default_rng(0).random(1_000_000)
    started = time.perf_counter()
    for _ in range(20):
        block = block * 1.0000001
    elapsed = time.perf_counter() - started
    return 20 * block.size / max(elapsed, 1e-9)


def measure_backend(backend: str, seed: int = 1) -> dict:
    """Throughput of the batched epidemic on one backend at smoke scale."""
    simulator = build_engine(
        "batched", EpidemicProtocol(), SMOKE_N, seed=seed, backend=backend
    )
    # Warm up outside the timed region: JIT compilation (numba) and the
    # cffi module load (native) happen on the first batch.
    simulator.run_interactions(10_000)
    started = time.perf_counter()
    simulator.run_interactions(SMOKE_INTERACTIONS)
    elapsed = time.perf_counter() - started
    return {
        "backend": backend,
        "population_size": SMOKE_N,
        "interactions": SMOKE_INTERACTIONS,
        "seconds": elapsed,
        "interactions_per_second": SMOKE_INTERACTIONS / max(elapsed, 1e-9),
    }


def run_smoke() -> tuple[list[dict], list[str]]:
    """Measure every available backend; return (records, gate failures)."""
    failures: list[str] = []
    available = [
        name for name, reason in backend_availability().items() if reason is None
    ]
    records = [measure_backend(name) for name in available]
    by_name = {record["backend"]: record for record in records}

    numpy_rate = by_name["numpy"]["interactions_per_second"]
    floor = NUMPY_FLOOR_PER_CALIBRATION * _calibration_rate() * (
        1.0 - REGRESSION_TOLERANCE
    )
    # The calibration proxy is itself noisy; the floor sits far below any
    # healthy numpy-backend rate, so tripping it means a real regression
    # (e.g. the hoisted pair-weight rebuild got un-hoisted).
    if numpy_rate < floor:
        failures.append(
            f"numpy backend throughput {numpy_rate:,.0f}/s fell below the "
            f"machine-scaled floor {floor:,.0f}/s (>30% regression)"
        )
    for record in records:
        if record["backend"] == "numpy":
            continue
        ratio = record["interactions_per_second"] / numpy_rate
        if ratio < 1.0 - REGRESSION_TOLERANCE:
            failures.append(
                f"{record['backend']} backend runs at {ratio:.2f}x the numpy "
                f"reference (allowed: >= {1.0 - REGRESSION_TOLERANCE:.2f}x); "
                f"its kernels regressed or silently stopped being used"
            )
    return records, failures


# -- pytest entries (collected by the benchmark job's bench_* matcher) ----------


def bench_backend_smoke_gate():
    """The CI gate as a test: fail on any >30% backend throughput regression."""
    records, failures = run_smoke()
    assert records, "no backend measured"
    assert not failures, "; ".join(failures)


def main() -> int:
    print(
        f"backend smoke: batched epidemic, n={SMOKE_N:,}, "
        f"{SMOKE_INTERACTIONS:,} interactions per backend"
    )
    records, failures = run_smoke()
    for record in records:
        print(
            f"  {record['backend']:>7}: {record['seconds']:7.3f}s "
            f"({record['interactions_per_second']:,.0f} interactions/s)"
        )
    for name, reason in backend_availability().items():
        if reason is not None:
            print(f"  {name:>7}: unavailable ({reason})")
    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("gate: ok (no backend regressed by more than 30%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
