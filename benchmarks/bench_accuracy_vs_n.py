"""T-ACC — Theorem 3.1 accuracy: additive error of the estimate vs the claimed 5.7.

For each population size, run the protocol (paper constants) several times and
record the maximum additive error ``|estimate - log2 n|`` over agents and
runs.  Theorem 3.1 claims error <= 5.7 with probability 1 - 9/n; Appendix C
observes error <= 2 in practice.  Both numbers are attached for comparison.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import PAPER_PARAMS, TABLE_SIZES
from repro.analysis.error_bounds import final_error_probability
from repro.core.array_simulator import ArrayLogSizeSimulator, expected_convergence_time

RUNS_PER_SIZE = 2


@pytest.mark.parametrize("population_size", TABLE_SIZES)
def bench_accuracy_vs_population(benchmark, population_size):
    collected = {"errors": []}

    def run_accuracy_trials():
        errors = []
        for run_index in range(RUNS_PER_SIZE):
            simulator = ArrayLogSizeSimulator(
                population_size, params=PAPER_PARAMS, seed=7_000 + run_index
            )
            outcome = simulator.run_until_done(
                max_parallel_time=4
                * expected_convergence_time(population_size, PAPER_PARAMS)
            )
            if outcome.converged:
                errors.append(outcome.max_additive_error)
        collected["errors"] = errors
        return errors

    benchmark.pedantic(run_accuracy_trials, rounds=1, iterations=1)

    errors = collected["errors"]
    assert errors, "no accuracy run converged"
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["mean_additive_error"] = sum(errors) / len(errors)
    benchmark.extra_info["max_additive_error"] = max(errors)
    benchmark.extra_info["claimed_bound"] = 5.7
    benchmark.extra_info["claimed_failure_probability"] = final_error_probability(
        population_size
    )
    assert max(errors) <= 5.7
