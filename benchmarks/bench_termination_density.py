"""T-TERM — Theorem 4.1: termination-signal time of a uniform dense protocol stays O(1).

Measures, for growing population sizes, the parallel time until the first
agent of the uniform Figure-1 counter protocol (deployed from the dense
all-identical configuration) sets ``terminated = True``.  Theorem 4.1 predicts
this time does not grow with ``n`` — which also means the signal fires long
before any ``omega(1)``-time task could have completed.  The companion
benchmark ``bench_leader_terminating`` measures the contrasting leader-driven
behaviour.
"""

from __future__ import annotations

import statistics

import pytest

from benchmarks.conftest import SWEEP_WORKERS, TERMINATION_SIZES
from repro.harness.experiment import run_finite_state_experiment
from repro.protocols.leader_election import (
    FiniteStateCounterTermination,
    NonuniformCounterLeaderElection,
    termination_signal_predicate,
)
from repro.termination.definitions import TerminationSpec
from repro.termination.impossibility import termination_time_sweep

COUNTER_THRESHOLD = 8
RUNS_PER_SIZE = 3


def counter_termination_protocol() -> FiniteStateCounterTermination:
    """Module-level factory (picklable) for the Figure-1 counter workload."""
    return FiniteStateCounterTermination(counter_threshold=COUNTER_THRESHOLD)


@pytest.mark.parametrize("population_size", TERMINATION_SIZES)
def bench_uniform_dense_termination_time(benchmark, population_size):
    spec = TerminationSpec(
        terminated_predicate=lambda state: state.terminated,
        description="uniform counter protocol",
    )
    holder = {}

    def run_sweep():
        observations = termination_time_sweep(
            protocol_factory=lambda: NonuniformCounterLeaderElection(
                counter_threshold=COUNTER_THRESHOLD
            ),
            spec=spec,
            population_sizes=[population_size],
            runs_per_size=RUNS_PER_SIZE,
            max_parallel_time=200.0,
            seed=17,
            check_interval=max(8, population_size // 8),
        )
        holder["observation"] = observations[0]
        return observations

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    observation = holder["observation"]
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["mean_signal_time"] = observation.mean_time
    benchmark.extra_info["max_signal_time"] = observation.max_time
    benchmark.extra_info["termination_probability"] = observation.termination_probability
    # Theorem 4.1's shape: the signal appears within O(1) time at every size
    # (the counter only needs some agent to have `threshold` interactions).
    assert observation.termination_probability == 1.0
    assert observation.max_time is not None and observation.max_time < 40.0


@pytest.mark.parametrize("population_size", [10_000, 100_000, 1_000_000])
def bench_uniform_dense_termination_batched(benchmark, population_size):
    """Theorem 4.1 at population sizes only the batched engine can reach.

    The Figure-1 counter protocol has a finite reachable state space
    (:class:`FiniteStateCounterTermination`), so the batched count engine can
    measure the first-termination-signal time at ``n`` up to 10^6 — the flat
    O(1) shape of Theorem 4.1 over three more decades of population size.
    """
    holder = {"times": []}

    def run_sweep():
        sweep = run_finite_state_experiment(
            protocol_factory=counter_termination_protocol,
            predicate=termination_signal_predicate,
            population_sizes=[population_size],
            runs_per_size=RUNS_PER_SIZE,
            max_parallel_time=40.0,
            engine="batched",
            base_seed=17,
            check_interval=max(population_size // 16, 256),
            workers=SWEEP_WORKERS,
        )
        assert all(record.converged for record in sweep.records)
        holder["times"] = [record.convergence_time for record in sweep.records]
        return holder["times"]

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    times = holder["times"]
    benchmark.extra_info["engine"] = "batched"
    benchmark.extra_info["population_size"] = population_size
    benchmark.extra_info["mean_signal_time"] = statistics.fmean(times)
    benchmark.extra_info["max_signal_time"] = max(times)
    # The signal time must stay O(1): it does not grow with n.
    assert max(times) < 40.0
