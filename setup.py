"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file exists for
offline environments where the ``wheel`` package is unavailable and the
PEP 517/660 path of ``pip install -e .`` therefore cannot build: there,
``python setup.py develop`` still installs the package (and its ``repro``
console script) without needing wheel, as long as numpy is already
present.
"""

from setuptools import setup

setup()
