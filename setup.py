"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works in offline environments where the ``wheel``
package is unavailable (legacy ``setup.py develop`` installs need no wheel).
"""

from setuptools import setup

setup()
