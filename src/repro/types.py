"""Shared type aliases and small value objects used across the library.

The population-protocol model of the paper measures time in *parallel time*
(number of interactions divided by the population size ``n``).  Several parts
of the library need to convert between interaction counts and parallel time,
and to talk about agents, states and population sizes in a uniform way; the
aliases and helpers here keep those conversions explicit and tested in one
place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, TypeVar

#: Index of an agent within the population, in ``range(n)``.
AgentId = int

#: Number of agents in the population.
PopulationSize = int

#: Number of pairwise interactions executed so far.
InteractionCount = int

#: Parallel time = interactions / population size (float, unitless).
ParallelTime = float

#: A protocol state.  For the count-based engine states must be hashable; the
#: agent-based engine accepts arbitrary (mutable) objects.
State = TypeVar("State", bound=Hashable)


def parallel_time(interactions: int, n: int) -> float:
    """Convert an interaction count to parallel time for population size ``n``.

    Parameters
    ----------
    interactions:
        Total number of pairwise interactions executed.
    n:
        Population size; must be positive.

    Returns
    -------
    float
        ``interactions / n``, the standard parallel-time normalisation used
        throughout the paper ("we expect each agent to have O(1) interactions
        per unit of time").
    """
    if n <= 0:
        raise ValueError(f"population size must be positive, got {n}")
    if interactions < 0:
        raise ValueError(f"interaction count must be non-negative, got {interactions}")
    return interactions / n


def interactions_for_time(time: float, n: int) -> int:
    """Number of interactions corresponding to ``time`` units of parallel time.

    The result is rounded up so that simulating ``interactions_for_time(t, n)``
    interactions covers *at least* ``t`` units of parallel time.
    """
    if n <= 0:
        raise ValueError(f"population size must be positive, got {n}")
    if time < 0:
        raise ValueError(f"parallel time must be non-negative, got {time}")
    interactions = int(time * n)
    if interactions < time * n:
        interactions += 1
    return interactions


def snapshot_boundaries(total_interactions: int, samples: int) -> list[int]:
    """Exact evenly spaced snapshot checkpoints for a trace of a run.

    Returns the interaction counts ``floor(k * total / samples)`` for
    ``k = 1 .. samples`` with duplicates removed, in increasing order.  For
    ``total_interactions >= samples`` this is exactly ``samples`` strictly
    increasing checkpoints ending at ``total_interactions``; for shorter runs
    every interaction becomes a checkpoint.  Chunking by
    ``total // samples`` instead (as the count engine once did) produces far
    more or fewer snapshots than requested whenever ``samples`` does not
    divide ``total``.
    """
    if samples < 1:
        raise ValueError(f"samples must be at least 1, got {samples}")
    if total_interactions < 0:
        raise ValueError(
            f"interaction count must be non-negative, got {total_interactions}"
        )
    boundaries: list[int] = []
    previous = 0
    for k in range(1, samples + 1):
        boundary = (k * total_interactions) // samples
        if boundary > previous:
            boundaries.append(boundary)
            previous = boundary
    return boundaries


@dataclass(frozen=True, slots=True)
class InteractionPair:
    """An ordered pair of agents chosen by the scheduler.

    The paper's transition algorithm distinguishes the two participants (the
    pseudocode uses ``rec``/``sen``); we follow the same convention.  The
    *receiver* is listed first to match ``Protocol 1``'s signature
    ``Log-Size-Estimation(rec, sen)``.
    """

    receiver: AgentId
    sender: AgentId

    def __post_init__(self) -> None:
        if self.receiver == self.sender:
            raise ValueError("an agent cannot interact with itself")
        if self.receiver < 0 or self.sender < 0:
            raise ValueError("agent identifiers must be non-negative")

    def reversed(self) -> "InteractionPair":
        """Return the pair with the roles of receiver and sender swapped."""
        return InteractionPair(receiver=self.sender, sender=self.receiver)

    def as_tuple(self) -> tuple[int, int]:
        """Return ``(receiver, sender)`` as a plain tuple."""
        return (self.receiver, self.sender)
