"""Per-trial run manifests: provenance + telemetry attached to sweep records.

A manifest is a plain JSON-ready dict describing *how one trial actually
ran*: the spec hash it executed under, the full seed lineage, the resolved
engine/backend/scheduler, the counters the instrumented hot paths
accumulated (kernel batches, regime switches, store ops, ...), and the
timing breakdown by phase.

Manifests ride on the record under ``record.extra["telemetry"]`` — and
that key is **contractually excluded from cache keys** (staticcheck rule
K406): two runs of the same spec are the same trial no matter what their
telemetry says.  Nothing in a manifest may ever feed back into a cache
key, a trajectory, or a convergence decision.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.harness.parallel import TrialSpec
    from repro.obs.recorder import Recorder

__all__ = [
    "TELEMETRY_KEY",
    "MANIFEST_SCHEMA_VERSION",
    "MANIFEST_FIELDS",
    "trial_manifest",
]

#: The key under ``RunRecord.extra`` that carries the manifest.  Audited by
#: staticcheck rule K406: it must never appear among TrialSpec's fields or
#: in the canonical cache-key payload.
TELEMETRY_KEY = "telemetry"

MANIFEST_SCHEMA_VERSION = 1

#: Every top-level manifest field.  K406 perturbation-proves that none of
#: these names collides with a TrialSpec field or cache-payload key, so a
#: manifest can never silently become part of trial identity.
MANIFEST_FIELDS = (
    "schema",
    "spec_hash",
    "seed_lineage",
    "resolution",
    "counters",
    "timing",
)


def _resolved_backend_name(spec: "TrialSpec") -> str | None:
    """The array-backend name this spec resolves to (None for engines
    that never touch the backend seam, e.g. the sequential simulator)."""
    if spec.kind in ("sequential", "array"):
        return None
    requested = dict(spec.engine_options).get("backend")
    try:
        from repro.backend import resolve_backend

        return resolve_backend(requested).name
    except Exception:
        # An unresolvable backend fails loudly at trial run time; the
        # manifest only reports, so fall back to the raw request here.
        return str(requested) if requested is not None else None


def trial_manifest(spec: "TrialSpec", delta: dict) -> dict:
    """Build the run manifest for one executed trial.

    Parameters
    ----------
    spec:
        The trial that ran.
    delta:
        ``Recorder.since(mark)`` output for the trial's execution window —
        ``{"counters": ..., "timing": ...}`` with timing in seconds.
    """
    scheduler_spec = spec.scheduler_spec()
    return {
        "schema": MANIFEST_SCHEMA_VERSION,
        "spec_hash": spec.cache_key(),
        "seed_lineage": {
            "base_seed": spec.base_seed,
            "size_index": spec.size_index,
            "run_index": spec.run_index,
            "seed": spec.seed,
        },
        "resolution": {
            "kind": spec.kind,
            "engine": spec.engine,
            "backend": _resolved_backend_name(spec),
            "scheduler": scheduler_spec.name if scheduler_spec is not None else None,
        },
        "counters": dict(delta.get("counters", {})),
        "timing": dict(delta.get("timing", {})),
    }
