"""Chrome trace-event export and validation for recorder span events.

Spans accumulate in memory (or spool to per-process ``trace-{pid}.jsonl``
files, see :meth:`repro.obs.recorder.Recorder.flush_spool`) already in
Chrome trace-event form.  This module merges spool files into the
``{"traceEvents": [...]}`` JSON object format that ``chrome://tracing``
and Perfetto (https://ui.perfetto.dev) load directly, and validates that
shape — the validation runs in the packaging CI smoke so a drift in the
event schema fails the build, not the viewer.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable

__all__ = [
    "collect_spool_events",
    "write_chrome_trace",
    "export_spool",
    "validate_trace",
]

#: Chrome trace-event phases this layer may legitimately emit.  Only "X"
#: (complete spans) today; "i" (instants) and "C" (counter samples) are
#: reserved for the service API layer.
_KNOWN_PHASES = {"X", "i", "C", "B", "E", "M"}

_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def collect_spool_events(spool_dir: str | Path) -> list[dict]:
    """Read every ``trace-*.jsonl`` spool file under ``spool_dir``.

    Events are ordered by (pid, timestamp) so merged multi-driver traces
    render each process as a contiguous, time-ordered track.
    """
    events: list[dict] = []
    spool = Path(spool_dir)
    for path in sorted(spool.glob("trace-*.jsonl")):
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    events.sort(key=lambda event: (event.get("pid", 0), event.get("ts", 0.0)))
    return events


def write_chrome_trace(path: str | Path, events: Iterable[dict]) -> dict:
    """Write ``events`` as a Chrome trace-event JSON object; return it."""
    trace = {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    path = Path(path)
    if path.parent != Path(""):
        os.makedirs(path.parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
    return trace


def export_spool(spool_dir: str | Path, out_path: str | Path) -> dict:
    """Merge a spool directory into one Perfetto-loadable trace file.

    Raises ``ValueError`` when the merged trace fails schema validation —
    a spool that exports is a spool that loads.
    """
    events = collect_spool_events(spool_dir)
    trace = write_chrome_trace(out_path, events)
    problems = validate_trace(trace)
    if problems:
        raise ValueError(
            "exported trace failed schema validation: " + "; ".join(problems)
        )
    return trace


def validate_trace(trace: object) -> list[str]:
    """Validate the Chrome trace-event JSON object format.

    Returns a list of human-readable problems (empty = valid).  Checks the
    container shape plus, per event: required keys, a known phase, numeric
    non-negative ``ts`` (and ``dur`` for complete events), and JSON-ready
    ``args``.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return [f"top level must be an object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["top-level 'traceEvents' must be a list"]
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: event must be an object")
            continue
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                problems.append(f"{where}: missing required key {key!r}")
        phase = event.get("ph")
        if phase is not None and phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
        for key in ("ts", "dur"):
            value = event.get(key)
            if value is None:
                if key == "dur" and phase == "X":
                    problems.append(f"{where}: complete event missing 'dur'")
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{where}: {key!r} must be a number")
            elif value < 0:
                problems.append(f"{where}: {key!r} must be non-negative")
        for key in ("pid", "tid"):
            value = event.get(key)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                problems.append(f"{where}: {key!r} must be an integer")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: 'args' must be an object")
    return problems
