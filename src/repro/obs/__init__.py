"""``repro.obs`` — the unified telemetry subsystem.

Structured metrics (counters, monotonic timers, histograms), span-style
traces, per-trial run manifests, and live progress views, all behind one
process-global default-off :class:`~repro.obs.recorder.Recorder` with a
no-op fast path.  See DESIGN.md "Observability" for the architecture,
the overhead contract (<0.5% disabled / <3% enabled on the batched
epidemic hot path, gated by ``benchmarks/bench_obs_overhead.py``), and
the determinism stance (no RNG, monotonic clocks only, D302-waivered,
K406-audited out of every cache key).
"""

from repro.obs.manifest import (
    MANIFEST_FIELDS,
    MANIFEST_SCHEMA_VERSION,
    TELEMETRY_KEY,
    trial_manifest,
)
from repro.obs.progress import (
    ProgressView,
    StatusWatcher,
    SweepProgress,
    render_progress_line,
)
from repro.obs.recorder import (
    RECORDER,
    Recorder,
    RecorderMark,
    get_recorder,
    recording,
    set_telemetry,
    telemetry_enabled,
)
from repro.obs.trace import (
    collect_spool_events,
    export_spool,
    validate_trace,
    write_chrome_trace,
)

__all__ = [
    "RECORDER",
    "Recorder",
    "RecorderMark",
    "get_recorder",
    "recording",
    "set_telemetry",
    "telemetry_enabled",
    "TELEMETRY_KEY",
    "MANIFEST_FIELDS",
    "MANIFEST_SCHEMA_VERSION",
    "trial_manifest",
    "SweepProgress",
    "ProgressView",
    "StatusWatcher",
    "render_progress_line",
    "collect_spool_events",
    "export_spool",
    "validate_trace",
    "write_chrome_trace",
]
