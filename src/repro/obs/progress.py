"""Live views over sweep progress and distributed-store health.

Two consumers:

``repro sweep --progress``
    :class:`SweepProgress` updates stream from the claim-loop driver
    (:func:`repro.harness.parallel.run_trials` invokes its ``progress``
    callback after every completed/replayed trial); :class:`ProgressView`
    renders them as a single carriage-returned status line on stderr so
    the progress display never pollutes piped stdout output.

``repro store status --watch``
    :class:`StatusWatcher` diffs successive
    :class:`~repro.store.base.StoreStatus` snapshots into per-driver
    throughput (completions attributed to the owner whose lease covered
    the trial), lease churn, and stale-lease alerts.  The watcher is a
    pure fold over snapshots — the CLI owns the poll loop — so the
    distributed-health logic is unit-testable without sleeping.

Rendering is plain text; timing comes from the recorder's monotonic
clock (D302-waivered in this package), never ``time.time``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.obs.recorder import RECORDER

__all__ = ["SweepProgress", "ProgressView", "StatusWatcher", "render_progress_line"]


@dataclass(frozen=True)
class SweepProgress:
    """One driver-side progress update: counts over *unique* trials."""

    total: int
    done: int
    executed: int
    from_cache: int


def render_progress_line(progress: SweepProgress, elapsed_seconds: float) -> str:
    """Format one status line: counts, throughput, and a naive ETA."""
    rate = progress.executed / elapsed_seconds if elapsed_seconds > 0 else 0.0
    remaining = progress.total - progress.done
    if rate > 0 and remaining > 0:
        eta = f"eta {remaining / rate:.0f}s"
    else:
        eta = "eta --"
    return (
        f"[sweep] {progress.done}/{progress.total} trials · "
        f"{progress.executed} executed · {progress.from_cache} cached · "
        f"{rate:.2f} trials/s · {eta}"
    )


class ProgressView:
    """Renders sweep progress as one live line on a terminal stream.

    Writes carriage-returned updates to ``stream`` (default stderr);
    :meth:`close` terminates the line so subsequent output starts clean.
    Safe on non-tty streams — each update is then its own line, which is
    what a CI log wants anyway.
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._start_ns = RECORDER.now_ns()
        self._wrote = False

    def __call__(self, progress: SweepProgress) -> None:
        elapsed = (RECORDER.now_ns() - self._start_ns) / 1e9
        line = render_progress_line(progress, elapsed)
        if self.stream.isatty():
            self.stream.write("\r\x1b[2K" + line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
        self._wrote = True

    def close(self) -> None:
        if self._wrote and self.stream.isatty():
            self.stream.write("\n")
            self.stream.flush()


@dataclass
class StatusWatcher:
    """Folds successive store-status snapshots into distributed health lines.

    Per-driver throughput is attributed by lease hand-off: when a lease
    held by ``owner`` disappears between snapshots while the completed
    count rises, that owner finished trials.  (Results do not record their
    executing owner — trial identity is deliberately owner-free — so the
    lease lifecycle is the only honest attribution signal.)
    """

    _previous_completed: int | None = None
    _previous_leases: dict[str, set[str]] = field(default_factory=dict)
    #: Cumulative per-owner completion attribution.
    completions_by_owner: dict[str, int] = field(default_factory=dict)
    #: Cumulative lease acquisitions observed (churn).
    leases_acquired: int = 0

    def update(self, status) -> list[str]:
        """Fold one :class:`StoreStatus` snapshot; return rendered lines."""
        leases_by_owner: dict[str, set[str]] = {}
        stale: list = []
        for lease in status.leases:
            leases_by_owner.setdefault(lease.owner, set()).add(lease.key)
            if lease.stale:
                stale.append(lease)

        completed_delta = 0
        if self._previous_completed is not None:
            completed_delta = status.completed - self._previous_completed
            # Lease churn: keys leased now that were not leased before.
            previously_leased = set().union(*self._previous_leases.values(), set())
            currently_leased = set().union(*leases_by_owner.values(), set())
            self.leases_acquired += len(currently_leased - previously_leased)
            # Attribute completions to owners whose leases were released.
            finished_by_owner = {
                owner: len(keys - leases_by_owner.get(owner, set()))
                for owner, keys in self._previous_leases.items()
            }
            total_finished = sum(finished_by_owner.values())
            for owner, finished in finished_by_owner.items():
                if finished and completed_delta > 0:
                    share = round(completed_delta * finished / total_finished)
                    self.completions_by_owner[owner] = (
                        self.completions_by_owner.get(owner, 0) + share
                    )

        self._previous_completed = status.completed
        self._previous_leases = leases_by_owner

        lines = [
            f"completed={status.completed} (+{max(0, completed_delta)}) "
            f"leased={status.leased} stale={status.stale} "
            f"lease-churn={self.leases_acquired}"
        ]
        for owner in sorted(leases_by_owner):
            attributed = self.completions_by_owner.get(owner, 0)
            lines.append(
                f"  driver {owner}: {len(leases_by_owner[owner])} leased, "
                f"{attributed} completed (attributed)"
            )
        for owner in sorted(set(self.completions_by_owner) - set(leases_by_owner)):
            lines.append(
                f"  driver {owner}: idle, "
                f"{self.completions_by_owner[owner]} completed (attributed)"
            )
        for lease in stale:
            lines.append(
                f"  ALERT stale lease: key={lease.key[:12]}… owner={lease.owner} "
                f"(expired; reclaimable by any driver)"
            )
        return lines
