"""The process-global telemetry recorder: counters, timers, spans, histograms.

Design constraints (see DESIGN.md "Observability"):

**Default off, near-zero when off.**  The singleton :data:`RECORDER` starts
disabled; every instrumented hot path guards its telemetry block with a
single ``if RECORDER.enabled:`` attribute test and takes the *identical*
pre-instrumentation code path otherwise.  The disabled cost is one global
load plus one attribute load per guarded block — placed at chunk/batch
granularity, never per interaction — and
``benchmarks/bench_obs_overhead.py`` gates it below 0.5% of the batched
epidemic hot path.

**Determinism.**  The recorder never draws randomness and never influences
a simulation: it only *reads* monotonic clocks (``time.perf_counter_ns``,
the sole wall-clock use in this package, waivered under D302) and
accumulates into plain dicts.  Enabling telemetry must not change a single
byte of any trajectory, record, or cache key — proven by the K406 contract
audit and the golden-stream tests in ``tests/obs``.

**Single clock site.**  Call sites never import :mod:`time`; they ask the
recorder for timestamps (:meth:`Recorder.now_ns`).  That keeps the D302
determinism-lint waiver confined to ``src/repro/obs/`` instead of leaking
into every instrumented engine file.

Span events accumulate in Chrome trace-event form (phase ``"X"`` complete
events, microsecond timestamps) so :mod:`repro.obs.trace` can export them
to a Perfetto-loadable file without translation.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "Recorder",
    "RecorderMark",
    "RECORDER",
    "get_recorder",
    "set_telemetry",
    "telemetry_enabled",
    "recording",
]


@dataclass(frozen=True)
class RecorderMark:
    """A point-in-time snapshot used to compute per-trial deltas.

    :meth:`Recorder.mark` captures the current counter/timer totals and the
    trace-event cursor; :meth:`Recorder.since` subtracts them out, so one
    process-global recorder can still attribute work to individual trials
    run back-to-back in the same process.
    """

    counters: dict[str, int]
    timers_ns: dict[str, int]
    event_index: int
    t_ns: int


class Recorder:
    """Accumulates counters, monotonic timings, histograms, and span events.

    All methods are cheap dict updates; the *callers* are responsible for
    the ``if recorder.enabled:`` fast-path guard, so a disabled recorder
    costs nothing beyond that test.  Methods remain safe to call while
    disabled (they simply record), which keeps non-hot-path call sites
    free to skip the guard.
    """

    __slots__ = (
        "enabled",
        "counters",
        "timers_ns",
        "histograms",
        "events",
        "spool_dir",
        "_origin_ns",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.counters: dict[str, int] = {}
        self.timers_ns: dict[str, int] = {}
        #: name -> {bucket_exponent: count}; buckets are powers of two.
        self.histograms: dict[str, dict[int, int]] = {}
        #: Pending Chrome trace events (phase "X"), flushed by flush_spool().
        self.events: list[dict] = []
        #: Directory for per-process trace spool files (None = keep in memory).
        self.spool_dir: str | None = None
        self._origin_ns = time.perf_counter_ns()

    # -- clock ---------------------------------------------------------------

    def now_ns(self) -> int:
        """Monotonic nanoseconds; the only clock the instrumented paths see."""
        return time.perf_counter_ns()

    # -- metrics -------------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def add_time(self, name: str, elapsed_ns: int) -> None:
        """Accumulate ``elapsed_ns`` into the timer ``name``."""
        self.timers_ns[name] = self.timers_ns.get(name, 0) + elapsed_ns

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the power-of-two histogram ``name``."""
        bucket = max(0, int(value).bit_length()) if value >= 1 else 0
        histogram = self.histograms.setdefault(name, {})
        histogram[bucket] = histogram.get(bucket, 0) + 1

    # -- spans ---------------------------------------------------------------

    def add_span(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        category: str = "repro",
        args: dict | None = None,
    ) -> None:
        """Record a completed span as a Chrome trace-event dict."""
        event = {
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": (start_ns - self._origin_ns) / 1000.0,
            "dur": max(0.0, (end_ns - start_ns) / 1000.0),
            "pid": os.getpid(),
            "tid": threading.get_ident() % 2**31,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    @contextmanager
    def span(self, name: str, category: str = "repro", args: dict | None = None):
        """Context manager recording the enclosed block as one span."""
        start = self.now_ns()
        try:
            yield
        finally:
            self.add_span(name, start, self.now_ns(), category=category, args=args)

    # -- marks / snapshots ---------------------------------------------------

    def mark(self) -> RecorderMark:
        """Snapshot totals so :meth:`since` can attribute a delta."""
        return RecorderMark(
            counters=dict(self.counters),
            timers_ns=dict(self.timers_ns),
            event_index=len(self.events),
            t_ns=self.now_ns(),
        )

    def since(self, mark: RecorderMark) -> dict:
        """Counters/timers accumulated since ``mark`` (plus elapsed time).

        Returns ``{"counters": {...}, "timing": {...seconds...}}`` with
        zero-delta entries dropped and ``timing["total"]`` always present.
        """
        counters = {
            name: value - mark.counters.get(name, 0)
            for name, value in self.counters.items()
            if value - mark.counters.get(name, 0)
        }
        timing = {
            name: (value - mark.timers_ns.get(name, 0)) / 1e9
            for name, value in self.timers_ns.items()
            if value - mark.timers_ns.get(name, 0)
        }
        timing["total"] = (self.now_ns() - mark.t_ns) / 1e9
        return {"counters": counters, "timing": timing}

    def snapshot(self) -> dict:
        """All totals as a JSON-ready dict (timers converted to seconds)."""
        return {
            "counters": dict(self.counters),
            "timing": {name: ns / 1e9 for name, ns in self.timers_ns.items()},
            "histograms": {
                name: {str(bucket): count for bucket, count in sorted(hist.items())}
                for name, hist in self.histograms.items()
            },
        }

    # -- spool ---------------------------------------------------------------

    def flush_spool(self) -> str | None:
        """Append pending span events to this process's spool file.

        One JSON trace event per line, in ``{spool_dir}/trace-{pid}.jsonl``;
        per-process files mean concurrent sweep workers never interleave
        within a line.  Returns the spool path (``None`` when no spool
        directory is configured — events then stay in :attr:`events`).
        """
        if self.spool_dir is None or not self.events:
            return None
        os.makedirs(self.spool_dir, exist_ok=True)
        path = os.path.join(self.spool_dir, f"trace-{os.getpid()}.jsonl")
        with open(path, "a", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        self.events.clear()
        return path

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Clear every accumulated metric and pending event."""
        self.counters.clear()
        self.timers_ns.clear()
        self.histograms.clear()
        self.events.clear()
        self._origin_ns = time.perf_counter_ns()


#: The process-global recorder.  The singleton is never replaced (call sites
#: bind it at import time for the cheapest possible disabled check); state is
#: toggled/cleared in place via set_telemetry() / reset().
RECORDER = Recorder()


def get_recorder() -> Recorder:
    """The process-global recorder (one per process, created at import)."""
    return RECORDER


def set_telemetry(enabled: bool, spool_dir: str | None = None) -> Recorder:
    """Enable or disable the global recorder; optionally attach a spool dir."""
    RECORDER.enabled = enabled
    if spool_dir is not None:
        RECORDER.spool_dir = spool_dir
    return RECORDER


def telemetry_enabled() -> bool:
    """Whether the process-global recorder is currently enabled."""
    return RECORDER.enabled


@contextmanager
def recording(spool_dir: str | None = None):
    """Enable the global recorder for a block, restoring the prior state.

    Primarily for tests and short-lived CLI invocations; leaves accumulated
    metrics in place (callers snapshot or reset explicitly).
    """
    prior_enabled = RECORDER.enabled
    prior_spool = RECORDER.spool_dir
    RECORDER.enabled = True
    if spool_dir is not None:
        RECORDER.spool_dir = spool_dir
    try:
        yield RECORDER
    finally:
        RECORDER.enabled = prior_enabled
        RECORDER.spool_dir = prior_spool
