"""Library of classic reaction networks and the ``CRN_WORKLOADS`` registry.

Each :class:`CRNWorkload` pairs a :class:`~repro.crn.model.CRN` with a
convergence predicate (over the count-level engine interface), a default
population and a chemical-time budget, making it runnable by name through
the sweep driver (``TrialSpec(kind="crn", ...)``), the CLI (``repro crn
simulate/sweep/info``) and the benchmarks — the same shape as the
finite-state :data:`~repro.harness.parallel.WORKLOADS` registry.

Budgets are stated in *chemical* time; the trial builders convert them to
parallel-time budgets through the compiled rate scale
(:meth:`~repro.crn.compile.CompiledCRN.to_parallel_time`).

Shipped networks
----------------

``approximate-majority``
    The 3-state Angluin–Aspnes–Eisenstat network: the two opinions erase
    each other through a blank intermediate; converges to the initial
    majority w.h.p. in ``O(log n)`` chemical time.
``epidemic``
    One-way epidemic ``I + S -> I + I`` from a single seeded infection.
``sir``
    Epidemic with unimolecular recovery (``S + I -> I + I @ 2``,
    ``I -> R @ 1``, basic reproduction number 2); converges when the
    infection dies out.
``predator-prey``
    A conserving three-species oscillator (grass/rabbits/foxes, cyclic
    Lotka–Volterra): counts orbit the coexistence point until a random
    extinction absorbs the chain — a workload whose interest is the
    trajectory, not a consensus.
``leader``
    Leader election by duel, ``L + L -> L + F``, from the all-leader
    configuration; needs ``Theta(n)`` chemical time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.crn.model import CRN
from repro.exceptions import SimulationError

__all__ = [
    "CRN_WORKLOADS",
    "CRNWorkload",
    "epidemic_extinct_predicate",
    "get_crn_workload",
    "majority_decided_predicate",
    "predator_prey_absorbed_predicate",
    "register_crn_workload",
    "single_leader_predicate",
    "susceptibles_exhausted_predicate",
]


@dataclass(frozen=True)
class CRNWorkload:
    """A named CRN workload runnable by the sweep driver, CLI and benchmarks.

    Attributes
    ----------
    name:
        Registry key (``repro crn simulate --crn <name>``).
    crn:
        The network, including its initial condition.
    predicate:
        Convergence predicate over the count-level engine interface (must be
        a picklable module-level callable for parallel sweeps).
    description:
        One line for ``--help`` / ``repro protocols`` output.
    default_population:
        Default ``n`` for single-shot CLI runs.
    default_chemical_budget:
        Chemical-time budget as a function of ``n`` (converted to a
        parallel-time budget through the compiled rate scale).
    """

    name: str
    crn: CRN
    predicate: Callable[..., bool]
    description: str
    default_population: int
    default_chemical_budget: Callable[[int], float]


CRN_WORKLOADS: dict[str, CRNWorkload] = {}


def register_crn_workload(workload: CRNWorkload) -> CRNWorkload:
    """Register a named CRN workload (overwrites an existing entry)."""
    CRN_WORKLOADS[workload.name] = workload
    return workload


def get_crn_workload(name: str) -> CRNWorkload:
    """Look up a registered CRN workload, raising :class:`SimulationError`."""
    try:
        return CRN_WORKLOADS[name]
    except KeyError:
        raise SimulationError(
            f"unknown CRN workload {name!r}; registered: "
            f"{', '.join(sorted(CRN_WORKLOADS))}"
        ) from None


# -- predicates (module-level, picklable) ------------------------------------


def majority_decided_predicate(simulator) -> bool:
    """Approximate majority has decided: every agent holds one opinion."""
    n = simulator.population_size
    return simulator.count("A") == n or simulator.count("B") == n


def susceptibles_exhausted_predicate(simulator) -> bool:
    """The one-way epidemic is complete: no susceptible agent remains."""
    return simulator.count("S") == 0


def epidemic_extinct_predicate(simulator) -> bool:
    """The SIR infection has died out (possibly before reaching anyone)."""
    return simulator.count("I") == 0


def predator_prey_absorbed_predicate(simulator) -> bool:
    """The oscillator hit an absorbing boundary (an extinction)."""
    return simulator.count("R") == 0 or simulator.count("F") == 0


def single_leader_predicate(simulator) -> bool:
    """Leader election by duel is done: exactly one leader remains."""
    return simulator.count("L") == 1


# -- the shipped library ------------------------------------------------------


def _register_builtin_crn_workloads() -> None:
    register_crn_workload(
        CRNWorkload(
            name="approximate-majority",
            crn=CRN.from_spec(
                [
                    "A + B -> A + U",  # the sender's opinion is erased ...
                    "B + A -> B + U",  # ... in either orientation
                    "A + U -> A + A",
                    "B + U -> B + B",
                ],
                name="approximate-majority",
                fractions={"A": 0.52, "B": 0.48},
            ),
            predicate=majority_decided_predicate,
            description=(
                "3-state approximate majority (Angluin-Aspnes-Eisenstat) from "
                "a 52/48 split until consensus"
            ),
            default_population=100_000,
            default_chemical_budget=lambda n: 16.0 * max(4.0, math.log2(n)),
        )
    )
    register_crn_workload(
        CRNWorkload(
            name="epidemic",
            crn=CRN.from_spec(
                ["I + S -> I + I"],
                name="epidemic",
                seeds={"I": 1},
                fractions={"S": 1.0},
            ),
            predicate=susceptibles_exhausted_predicate,
            description="one-way epidemic from a single infected agent",
            default_population=100_000,
            default_chemical_budget=lambda n: 8.0 * max(4.0, math.log2(n)),
        )
    )
    register_crn_workload(
        CRNWorkload(
            name="sir",
            crn=CRN.from_spec(
                [
                    "S + I -> I + I @ 2.0",
                    "I -> R @ 1.0",
                ],
                name="sir",
                seeds={"I": 1},
                fractions={"S": 1.0},
            ),
            predicate=epidemic_extinct_predicate,
            description=(
                "SIR epidemic (R0 = 2) with unimolecular recovery, until the "
                "infection dies out"
            ),
            default_population=100_000,
            default_chemical_budget=lambda n: 30.0 + 10.0 * max(4.0, math.log2(n)),
        )
    )
    register_crn_workload(
        CRNWorkload(
            name="predator-prey",
            crn=CRN.from_spec(
                [
                    "G + R -> R + R @ 1.0",  # rabbits reproduce by grazing
                    "R + F -> F + F @ 1.0",  # foxes reproduce by predation
                    "F -> G @ 1.0",          # foxes die, closing the cycle
                ],
                name="predator-prey",
                fractions={"G": 0.4, "R": 0.4, "F": 0.2},
            ),
            predicate=predator_prey_absorbed_predicate,
            description=(
                "conserving predator-prey oscillator (grass/rabbits/foxes); "
                "'converges' only when a random extinction absorbs it"
            ),
            default_population=10_000,
            default_chemical_budget=lambda n: 100.0,
        )
    )
    register_crn_workload(
        CRNWorkload(
            name="leader",
            crn=CRN.from_spec(
                ["L + L -> L + F"],
                name="leader",
                fractions={"L": 1.0},
            ),
            predicate=single_leader_predicate,
            description="leader election by duel (L + L -> L + F) from all leaders",
            default_population=2_000,
            default_chemical_budget=lambda n: 4.0 * n,
        )
    )


_register_builtin_crn_workloads()
