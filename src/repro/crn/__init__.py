"""Declarative CRN front-end: reaction networks compiled onto every engine.

Specify a protocol as a chemical reaction network in three lines, compile
it, and run it on any engine::

    from repro.crn import CRN, compile_crn

    crn = CRN.from_spec(["L + L -> L + F"], name="leader", fractions={"L": 1.0})
    engine = compile_crn(crn).build("batched", 1_000_000, seed=0)
    engine.run_until(lambda sim: sim.count("L") == 1, max_parallel_time=4e6)

See :mod:`repro.crn.model` for the mass-action semantics,
:mod:`repro.crn.compile` for the two lowering modes (exact-time ``uniform``
and jump-chain ``thinned``), :mod:`repro.crn.ssa` for the exact Gillespie
reference, and :mod:`repro.crn.library` for the shipped networks
(``CRN_WORKLOADS``).
"""

from repro.crn.compile import CRN_MODES, CompiledCRN, CRNProtocol, compile_crn
from repro.crn.library import (
    CRN_WORKLOADS,
    CRNWorkload,
    get_crn_workload,
    register_crn_workload,
)
from repro.crn.model import CRN, Reaction, parse_reaction, parse_reactions
from repro.crn.ssa import SSAResult, simulate_ssa

__all__ = [
    "CRN",
    "CRN_MODES",
    "CRN_WORKLOADS",
    "CRNProtocol",
    "CRNWorkload",
    "CompiledCRN",
    "Reaction",
    "SSAResult",
    "compile_crn",
    "get_crn_workload",
    "parse_reaction",
    "parse_reactions",
    "register_crn_workload",
    "simulate_ssa",
]
