"""Adaptive multiscale engine: exact SSA → tau-leaping → mean-field ODE.

Every existing engine is *interaction-bound*: simulating parallel time ``t``
costs ``Theta(n t)`` work because each of the ``n t`` interactions (null or
not) is drawn, so ``n = 10^6`` is the practical ceiling (BENCH_crn.json).
This module trades exactness for *count-bound* cost: per step it partitions
the compiled reaction channels into

``exact``
    Channels whose minimum reactant count is below the *critical threshold*
    fire one event at a time as an exact continuous-time jump process —
    small-count fluctuations (a lone infected agent, the last few minority
    agents) are where discreteness decides the outcome.
``tau-leap``
    Channels with intermediate counts advance by Poisson leaps whose length
    is chosen by the Cao–Gillespie selector: the leap ``tau`` bounds the
    expected relative change of every reactant count by ``leap_eps``, so
    propensities are near-constant across the leap.  Draws whose mean is a
    large fraction of a channel's firing headroom use binomial clamping, and
    a leap that would drive any count negative is halved and redrawn.
``ODE``
    When every active channel's reactant counts exceed the *ODE threshold*,
    relative fluctuations are ``O(1/sqrt(count))`` and the whole system
    advances deterministically along the mean-field ODE (an embedded
    Dormand–Prince RK45 with adaptive step control; no scipy dependency).

A :class:`RegimeController` owns the partition and applies hysteresis — a
channel leaves a regime only after crossing ``HYSTERESIS`` times the entry
threshold — so trajectories hovering at a boundary do not thrash between
integrators.

Propensity model (why this is engine-shaped, not CRN-shaped)
------------------------------------------------------------
The engine consumes any :class:`~repro.protocols.base.FiniteStateProtocol`
through its compiled transition table.  Under the paper's uniform sequential
scheduler, the ordered state pair ``(a, b)`` is drawn with probability
``w_ab(c) / (n (n-1))`` where ``w_ab = c_a c_b`` (``c_a (c_a - 1)`` on the
diagonal), and an explicit outcome with probability ``p`` fires.  In
parallel-time units (``n`` interactions per unit) the channel therefore
fires at rate ``p * w_ab(c) / (n - 1)`` — exactly the event process the
interaction-bound engines realise, minus the null interactions they spend
time drawing.  For a CRN lowered in ``uniform`` mode these channel rates sum
to the mass-action propensities divided by the rate scale ``Gamma``
(``repro.crn.compile``), so chemical-time statistics convert through the
same ``parallel = Gamma * chemical`` mapping as every other engine.

Because the propensity model *is* the uniform well-mixed scheduler,
non-uniform scheduling policies are rejected: a weighted, two-block or
quiescing scenario changes the pair distribution per agent identity, which
a count-level mean-field treatment cannot express (see ``DESIGN.md``,
Multiscale CRN engine).

Determinism is per ``(seed, leap_eps, regime_thresholds, backend)``: a run
is exactly reproducible from its seed, but trajectories are *not* bitwise
comparable across engines (the approximation changes the sampled process,
not just the stream).  Validation is distributional — tau-leap moments must
match the SSA reference (``benchmarks/bench_multiscale.py``).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Hashable

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.engine.configuration import Configuration
from repro.engine.running import (
    CountTracePoint,
    run_until_predicate,
    run_with_trace,
)
from repro.engine.scheduler import SchedulerSpec
from repro.exceptions import SimulationError
from repro.obs.recorder import RECORDER as _REC
from repro.protocols.base import FiniteStateProtocol
from repro.protocols.compiled import compile_transition_table

__all__ = [
    "DEFAULT_CRITICAL_THRESHOLD",
    "DEFAULT_LEAP_EPS",
    "DEFAULT_ODE_THRESHOLD",
    "HYSTERESIS",
    "MultiscaleSimulator",
    "ReactionSystem",
    "RegimeController",
    "integer_counts",
]

#: Default Cao–Gillespie leap tolerance: bound on the expected relative
#: propensity change per leap.  0.05 is the literature's standard setting.
DEFAULT_LEAP_EPS = 0.05
#: Channels whose minimum reactant count is below this are simulated exactly.
DEFAULT_CRITICAL_THRESHOLD = 20.0
#: All active channels' reactant counts must exceed this before the system
#: switches to the mean-field ODE (relative fluctuation ~ 3e-3 at 1e5).
DEFAULT_ODE_THRESHOLD = 1e5
#: A regime is left only after crossing this multiple of its entry
#: threshold, so counts hovering at a boundary do not thrash integrators.
HYSTERESIS = 2.0

#: A leap shorter than this multiple of the mean exact-event spacing is not
#: worth its overhead; run a burst of exact events instead (Cao's rule).
_EXACT_MULTIPLE = 10.0
#: Number of exact events per burst before regimes are reclassified.
_EXACT_BURST = 64
#: Halve-and-redraw attempts before a failing leap falls back to exact.
_MAX_LEAP_RETRIES = 8
#: Populations above this must supply an explicit initial configuration
#: (building one from per-agent ``initial_state`` calls would cost O(n)).
_MAX_PER_AGENT_INIT = 10_000_000

#: RK45 (Dormand–Prince) Butcher tableau.
_DP_C = np.array([0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0])
_DP_A = (
    (),
    (1 / 5,),
    (3 / 40, 9 / 40),
    (44 / 45, -56 / 15, 32 / 9),
    (19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729),
    (9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656),
    (35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84),
)
#: 5th-order solution weights (same as the last A row: FSAL pair).
_DP_B5 = np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0.0])
#: 4th-order embedded weights for the error estimate.
_DP_B4 = np.array(
    [
        5179 / 57600,
        0.0,
        7571 / 16695,
        393 / 640,
        -92097 / 339200,
        187 / 2100,
        1 / 40,
    ]
)


def integer_counts(values: np.ndarray, total: int) -> np.ndarray:
    """Round non-negative float counts to integers summing exactly to ``total``.

    Largest-remainder rounding: floor everything, then hand the missing
    agents to the largest fractional parts (or reclaim from the smallest,
    if float drift pushed the sum high).  Used whenever the ODE regime hands
    a continuous state back to a stochastic regime.
    """
    clipped = np.maximum(values, 0.0)
    floors = np.floor(clipped)
    deficit = total - int(floors.sum())
    if deficit > 0:
        order = np.argsort(-(clipped - floors), kind="stable")
        floors[order[:deficit]] += 1.0
    elif deficit < 0:
        order = np.argsort(clipped - floors, kind="stable")
        taken = 0
        for position in order:
            if taken == -deficit:
                break
            if floors[position] > 0:
                floors[position] -= 1.0
                taken += 1
    return floors


class ReactionSystem:
    """The per-channel reaction view of a compiled transition table at size ``n``.

    One *channel* is one explicit outcome of one ordered state pair: channel
    ``e`` has reactant state indices ``reactant_a[e], reactant_b[e]``, fires
    at parallel-time rate ``rate_coeff[e] * w(c)`` (``rate_coeff = p/(n-1)``,
    ``w`` the ordered-pair weight) and applies the net stoichiometry column
    ``stoich[:, e]``.  Channels whose net stoichiometry is zero (state swaps)
    are dropped: they change no count, and the engine's clock is parallel
    time rather than interactions, so they carry no information here.
    """

    def __init__(self, protocol: FiniteStateProtocol, population_size: int) -> None:
        table = compile_transition_table(protocol)
        self.states: tuple[Hashable, ...] = table.states
        self.index = table.index
        self.population_size = population_size
        size = table.num_states

        reactant_a: list[int] = []
        reactant_b: list[int] = []
        coeff: list[float] = []
        columns: list[np.ndarray] = []
        for i in range(size):
            for j in range(size):
                for k in range(int(table.outcome_count[i, j])):
                    column = np.zeros(size, dtype=np.int64)
                    column[i] -= 1
                    column[j] -= 1
                    column[int(table.outcome_receiver[i, j, k])] += 1
                    column[int(table.outcome_sender[i, j, k])] += 1
                    if not column.any():
                        continue  # pure state swap: a count-level no-op
                    reactant_a.append(i)
                    reactant_b.append(j)
                    coeff.append(
                        float(table.outcome_probability[i, j, k])
                        / (population_size - 1)
                    )
                    columns.append(column)

        self.num_species = size
        self.num_channels = len(columns)
        self.reactant_a = np.array(reactant_a, dtype=np.int64)
        self.reactant_b = np.array(reactant_b, dtype=np.int64)
        self.rate_coeff = np.array(coeff, dtype=np.float64)
        self.stoich = (
            np.stack(columns, axis=1)
            if columns
            else np.zeros((size, 0), dtype=np.int64)
        )
        self.is_diagonal = self.reactant_a == self.reactant_b
        # Cao's g-factors: every channel is a pair interaction, so reactant
        # species get order 2; species some channel consumes twice get the
        # count-dependent 2 + 1/(c-1) correction at runtime.
        self.is_reactant = np.zeros(size, dtype=bool)
        self.is_reactant[self.reactant_a] = True
        self.is_reactant[self.reactant_b] = True
        self.needs_two = np.zeros(size, dtype=bool)
        if self.num_channels:
            self.needs_two[self.reactant_a[self.is_diagonal]] = True
        for array in (
            self.reactant_a,
            self.reactant_b,
            self.rate_coeff,
            self.stoich,
            self.is_diagonal,
            self.is_reactant,
            self.needs_two,
        ):
            array.setflags(write=False)

    def propensities(self, counts: np.ndarray) -> np.ndarray:
        """Parallel-time channel rates at float ``counts`` (clipped at 0)."""
        ca = counts[self.reactant_a]
        cb = np.where(self.is_diagonal, ca - 1.0, counts[self.reactant_b])
        return self.rate_coeff * np.maximum(ca, 0.0) * np.maximum(cb, 0.0)

    def min_reactant(self, counts: np.ndarray) -> np.ndarray:
        """Per-channel minimum reactant count — the regime-deciding scale."""
        return np.minimum(counts[self.reactant_a], counts[self.reactant_b])

    def g_factors(self, counts: np.ndarray) -> np.ndarray:
        """Cao's per-species ``g_i`` at the current counts."""
        g = np.where(self.is_reactant, 2.0, 1.0)
        if self.needs_two.any():
            doubled = self.needs_two & (counts > 1.0)
            g = g + np.where(doubled, 1.0 / np.maximum(counts - 1.0, 1.0), 0.0)
        return g

    def derivative(self, counts: np.ndarray) -> np.ndarray:
        """Mean-field ODE right-hand side (counts per unit parallel time)."""
        return self.stoich @ self.propensities(counts)


class RegimeController:
    """Stateful exact / tau-leap / ODE partition with hysteresis.

    Per channel, a *critical* flag (exact handling) is set when the minimum
    reactant count drops below ``critical`` and cleared only once it exceeds
    ``critical * HYSTERESIS``.  Globally, the *ODE* flag is set when every
    active channel's minimum reactant count reaches ``ode`` (and none is
    critical) and cleared only when one drops below ``ode / HYSTERESIS``.
    Channels with zero propensity never influence either decision.
    """

    def __init__(
        self,
        num_channels: int,
        critical: float = DEFAULT_CRITICAL_THRESHOLD,
        ode: float = DEFAULT_ODE_THRESHOLD,
        hysteresis: float = HYSTERESIS,
    ) -> None:
        if not critical > 0:
            raise SimulationError(
                f"critical regime threshold must be positive, got {critical}"
            )
        if not ode > critical:
            raise SimulationError(
                f"ODE regime threshold ({ode}) must exceed the critical "
                f"threshold ({critical})"
            )
        if not hysteresis >= 1.0:
            raise SimulationError(f"hysteresis must be >= 1, got {hysteresis}")
        self.critical_threshold = float(critical)
        self.ode_threshold = float(ode)
        self.hysteresis = float(hysteresis)
        self._critical = np.ones(num_channels, dtype=bool)
        self._initialised = False
        self._ode = False
        self.switches = 0

    @property
    def in_ode(self) -> bool:
        """Whether the controller currently assigns the whole system to ODE."""
        return self._ode

    def critical_mask(self) -> np.ndarray:
        """The current per-channel critical flags (a copy)."""
        return self._critical.copy()

    def classify(
        self, min_reactant: np.ndarray, active: np.ndarray
    ) -> tuple[str, np.ndarray]:
        """Update the partition; return ``("ode"|"stochastic", critical_mask)``."""
        if not self._initialised:
            self._critical = min_reactant < self.critical_threshold
            self._initialised = True
        else:
            became_critical = min_reactant < self.critical_threshold
            recovered = min_reactant >= self.critical_threshold * self.hysteresis
            flipped = (became_critical & ~self._critical) | (
                recovered & self._critical
            )
            if flipped.any():
                self._critical = np.where(
                    became_critical, True, np.where(recovered, False, self._critical)
                )
        if active.any():
            floor = float(min_reactant[active].min())
        else:
            floor = np.inf
        if self._ode:
            if floor < self.ode_threshold / self.hysteresis:
                self._ode = False
                self.switches += 1
        else:
            if floor >= self.ode_threshold and not (self._critical & active).any():
                self._ode = True
                self.switches += 1
        return ("ode" if self._ode else "stochastic"), self._critical


class MultiscaleSimulator:
    """Count-level engine advancing a protocol through adaptive regimes.

    Implements the same interface as the other count-level engines
    (``count`` / ``configuration`` / ``run_interactions`` / ``run_until`` /
    ``run_with_trace``), so harness code, predicates and the CLI treat it as
    ``engine="multiscale"``.  ``run_interactions(k)`` advances ``k / n``
    units of parallel time; ``interactions`` reports the *effective*
    interaction count ``round(parallel_time * n)`` — the work an
    interaction-bound engine would have spent to get here, which is what
    makes "effective interactions/s" comparable across BENCH files.

    Parameters
    ----------
    leap_eps:
        Cao–Gillespie tolerance: bound on the expected relative propensity
        change per leap, in ``(0, 0.5]``.  Smaller is more accurate and
        slower.
    regime_thresholds:
        ``(critical, ode)`` count thresholds of the
        :class:`RegimeController`.  ``None`` uses the defaults.
    backend:
        Array backend supplying the fused tau-leap kernel
        (:meth:`repro.backend.ArrayBackend.tau_leap_kernel`).
    scheduler:
        Accepted for interface parity; only the uniform ``"sequential"``
        policy is valid — the propensity model *is* uniform mixing (see the
        module docstring), so any other policy raises ``SimulationError``.
    """

    def __init__(
        self,
        protocol: FiniteStateProtocol,
        population_size: int,
        seed: int | None = None,
        initial_configuration: Configuration | None = None,
        scheduler: SchedulerSpec | str | None = None,
        backend: "ArrayBackend | str | None" = None,
        leap_eps: float = DEFAULT_LEAP_EPS,
        regime_thresholds: tuple[float, float] | None = None,
    ) -> None:
        if population_size < 2:
            raise SimulationError(
                f"population must contain at least 2 agents, got {population_size}"
            )
        if not 0.0 < leap_eps <= 0.5:
            raise SimulationError(
                f"leap_eps must be in (0, 0.5], got {leap_eps}"
            )
        spec = SchedulerSpec.coerce(scheduler, default="sequential")
        if spec.name != "sequential":
            raise SimulationError(
                f"the multiscale engine assumes uniform mixing (its propensity "
                f"model is the mean-field limit of the sequential scheduler); "
                f"scheduler {spec.name!r} is not supported — run non-uniform "
                f"scenarios on the agent/count/batched/vector engines"
            )
        self.scheduler_spec = spec
        self.protocol = protocol
        self.population_size = population_size
        self.leap_eps = float(leap_eps)
        if regime_thresholds is None:
            critical, ode = DEFAULT_CRITICAL_THRESHOLD, DEFAULT_ODE_THRESHOLD
        else:
            try:
                critical, ode = (float(value) for value in regime_thresholds)
            except (TypeError, ValueError):
                raise SimulationError(
                    f"regime_thresholds must be a (critical, ode) pair of "
                    f"numbers, got {regime_thresholds!r}"
                ) from None
        self.regime_thresholds = (critical, ode)

        self.system = ReactionSystem(protocol, population_size)
        self.controller = RegimeController(
            self.system.num_channels, critical=critical, ode=ode
        )
        self.backend = resolve_backend(backend)
        self._rng = np.random.default_rng(seed)
        self._kernel = self.backend.tau_leap_kernel(
            self.system.reactant_a,
            self.system.reactant_b,
            self.system.rate_coeff,
            self.system.stoich,
            self._rng,
        )

        if initial_configuration is not None:
            if initial_configuration.size != population_size:
                raise SimulationError(
                    f"initial configuration has size {initial_configuration.size}, "
                    f"expected {population_size}"
                )
            source = initial_configuration.counts
        elif population_size <= _MAX_PER_AGENT_INIT:
            source = Counter(
                protocol.initial_state(agent_id)
                for agent_id in range(population_size)
            )
        else:
            raise SimulationError(
                f"building an initial configuration from per-agent initial_state "
                f"calls would cost O(n) at n={population_size}; pass "
                f"initial_configuration explicitly (CompiledCRN.build does)"
            )
        self._counts = np.zeros(self.system.num_species, dtype=np.float64)
        for state, count in source.items():
            try:
                self._counts[self.system.index[state]] = count
            except KeyError:
                raise SimulationError(
                    f"initial configuration contains state {state!r} outside "
                    f"the protocol's state set"
                ) from None
        self._seen = self._counts > 0.0
        self._ode_fractional = False

        self.parallel_time = 0.0
        #: Event/step counters per regime, for benchmarks and tests.
        self.exact_events = 0
        self.leaps = 0
        self.ode_steps = 0

    # -- inspection -----------------------------------------------------------

    @property
    def interactions(self) -> int:
        """Effective interactions: ``round(parallel_time * n)``."""
        return int(round(self.parallel_time * self.population_size))

    @property
    def regime(self) -> str:
        """The controller's current global regime (``"stochastic"``/``"ode"``)."""
        return "ode" if self.controller.in_ode else "stochastic"

    def regime_stats(self) -> dict[str, int]:
        """Per-regime work counters (exact events, leaps, ODE steps, switches)."""
        return {
            "exact_events": self.exact_events,
            "leaps": self.leaps,
            "ode_steps": self.ode_steps,
            "regime_switches": self.controller.switches,
        }

    def _integer_snapshot(self) -> np.ndarray:
        if self._ode_fractional:
            return integer_counts(self._counts, self.population_size)
        return self._counts

    def configuration(self) -> Configuration:
        """The current configuration (ODE counts rounded, sum preserved)."""
        snapshot = self._integer_snapshot()
        return Configuration(
            {
                state: int(snapshot[position])
                for position, state in enumerate(self.system.states)
                if snapshot[position] > 0
            }
        )

    def count(self, state: Hashable) -> int:
        """Current count of ``state`` (rounded while in the ODE regime)."""
        position = self.system.index.get(state)
        if position is None:
            return 0
        return int(self._integer_snapshot()[position])

    def states_seen(self) -> frozenset[Hashable]:
        """All states that have had positive count at any point of the run."""
        return frozenset(
            state
            for position, state in enumerate(self.system.states)
            if self._seen[position]
        )

    def outputs(self) -> Counter:
        """Histogram of outputs over the population."""
        snapshot = self._integer_snapshot()
        histogram: Counter = Counter()
        for position, state in enumerate(self.system.states):
            count = int(snapshot[position])
            if count:
                histogram[self.protocol.output(state)] += count
        return histogram

    # -- stepping -------------------------------------------------------------

    def run_interactions(self, count: int) -> None:
        """Advance ``count / n`` units of parallel time."""
        if count < 0:
            raise SimulationError(f"interaction count must be >= 0, got {count}")
        self._advance_to(self.parallel_time + count / self.population_size)

    def run_parallel_time(self, time: float) -> None:
        """Advance ``time`` further units of parallel time."""
        if time < 0:
            raise SimulationError(f"parallel time must be >= 0, got {time}")
        self._advance_to(self.parallel_time + time)

    def run_until(
        self,
        predicate: Callable[["MultiscaleSimulator"], bool],
        max_parallel_time: float,
        check_interval: int | None = None,
    ) -> float:
        """Run until ``predicate(self)`` holds; return the parallel time."""
        return run_until_predicate(self, predicate, max_parallel_time, check_interval)

    def run_with_trace(
        self, total_parallel_time: float, samples: int
    ) -> list[CountTracePoint]:
        """Run for ``total_parallel_time``; return evenly spaced snapshots."""
        return run_with_trace(self, total_parallel_time, samples)

    # -- the regime loop ------------------------------------------------------

    def _advance_to(self, target: float) -> None:
        if _REC.enabled:
            # Mirror the per-regime work counters into the telemetry
            # recorder as deltas around the advance; the regime loop itself
            # stays clock-free (determinism: regime decisions depend only
            # on counts and the RNG stream, never on telemetry).
            t0 = _REC.now_ns()
            exact0, leaps0 = self.exact_events, self.leaps
            ode0, switches0 = self.ode_steps, self.controller.switches
            try:
                self._advance_to_inner(target)
            finally:
                _REC.add_time("multiscale.advance", _REC.now_ns() - t0)
                _REC.count("multiscale.exact_events", self.exact_events - exact0)
                _REC.count("multiscale.leaps", self.leaps - leaps0)
                _REC.count("multiscale.ode_steps", self.ode_steps - ode0)
                _REC.count(
                    "multiscale.regime_switches",
                    self.controller.switches - switches0,
                )
            return
        self._advance_to_inner(target)

    def _advance_to_inner(self, target: float) -> None:
        guard = 1e-12 * max(1.0, abs(target))
        while self.parallel_time < target - guard:
            lam = self._kernel.propensities(self._counts)
            active = lam > 0.0
            if not active.any():
                # Absorbed: nothing can ever fire again, jump the clock.
                self.parallel_time = target
                return
            regime, critical = self.controller.classify(
                self.system.min_reactant(self._counts), active
            )
            if regime == "ode":
                self._ode_advance(target)
                continue
            if self._ode_fractional:
                self._leave_ode_counts()
                lam = self._kernel.propensities(self._counts)
                active = lam > 0.0
                if not active.any():
                    self.parallel_time = target
                    return
            noncritical = active & ~critical
            if not noncritical.any():
                # Everything active is critical: plain exact SSA.
                self._exact_burst(target)
                continue
            total = float(lam.sum())
            tau1 = self._cao_tau(lam, noncritical, target - self.parallel_time)
            if tau1 < _EXACT_MULTIPLE / total:
                self._exact_burst(target)
                continue
            self._leap(lam, noncritical, critical & active, tau1, target)
        self.parallel_time = target

    def _leave_ode_counts(self) -> None:
        """Round the state back to integers when leaving the ODE regime."""
        if self._ode_fractional:
            self._counts = integer_counts(self._counts, self.population_size)
            self._ode_fractional = False

    def _note_seen(self) -> None:
        self._seen |= self._counts > 0.0

    def _cao_tau(
        self, lam: np.ndarray, mask: np.ndarray, remaining: float
    ) -> float:
        """The Cao–Gillespie leap length over the non-critical channels."""
        system = self.system
        lam_masked = np.where(mask, lam, 0.0)
        mu = system.stoich @ lam_masked
        sigma2 = (system.stoich.astype(np.float64) ** 2) @ lam_masked
        relevant = np.zeros(system.num_species, dtype=bool)
        relevant[system.reactant_a[mask]] = True
        relevant[system.reactant_b[mask]] = True
        bound = np.maximum(
            self.leap_eps * self._counts / system.g_factors(self._counts), 1.0
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            by_mean = np.where(mu != 0.0, bound / np.abs(mu), np.inf)
            by_var = np.where(sigma2 > 0.0, bound * bound / sigma2, np.inf)
        candidates = np.minimum(by_mean, by_var)[relevant]
        tau = float(candidates.min()) if candidates.size else np.inf
        return min(tau, remaining)

    def _exact_burst(self, target: float) -> None:
        """A burst of exact CTMC events (the SSA fallback regime)."""
        system = self.system
        for _ in range(_EXACT_BURST):
            lam = self._kernel.propensities(self._counts)
            total = float(lam.sum())
            if total <= 0.0:
                self.parallel_time = target
                return
            wait = self._rng.exponential(1.0 / total)
            if self.parallel_time + wait >= target:
                # Memorylessness: the discarded residual clock is immaterial.
                self.parallel_time = target
                return
            self.parallel_time += wait
            cumulative = np.cumsum(lam)
            channel = int(
                np.searchsorted(cumulative, self._rng.random() * total, side="right")
            )
            channel = min(channel, system.num_channels - 1)
            self._counts += system.stoich[:, channel]
            self.exact_events += 1
            self._note_seen()

    def _leap(
        self,
        lam: np.ndarray,
        noncritical: np.ndarray,
        critical_active: np.ndarray,
        tau1: float,
        target: float,
    ) -> None:
        """One tau-leap: Poisson/binomial advance plus at most one critical event."""
        system = self.system
        remaining = target - self.parallel_time
        a_critical = float(lam[critical_active].sum())
        tau2 = (
            self._rng.exponential(1.0 / a_critical) if a_critical > 0.0 else np.inf
        )
        tau = min(tau1, tau2, remaining)
        for _ in range(_MAX_LEAP_RETRIES):
            ok, new_counts = self._kernel.leap(
                self._counts, noncritical, tau, self._rng
            )
            if ok and tau2 <= tau and a_critical > 0.0:
                cumulative = np.cumsum(np.where(critical_active, lam, 0.0))
                channel = int(
                    np.searchsorted(
                        cumulative, self._rng.random() * a_critical, side="right"
                    )
                )
                channel = min(channel, system.num_channels - 1)
                new_counts = new_counts + system.stoich[:, channel]
                ok = bool((new_counts >= 0.0).all())
            if ok:
                self._counts = new_counts
                self.parallel_time += tau
                self.leaps += 1
                self._note_seen()
                return
            tau /= 2.0
        # Clamping kept failing: the counts are effectively critical.
        self._exact_burst(target)

    def _ode_advance(self, target: float) -> None:
        """Integrate the mean-field ODE until ``target`` or a regime exit."""
        system = self.system
        exit_threshold = self.controller.ode_threshold / self.controller.hysteresis
        y = self._counts.astype(np.float64, copy=True)
        t = self.parallel_time
        rtol = 1e-6
        atol = 1e-9 * self.population_size
        h = min(1.0, target - t)
        k1 = system.derivative(y)
        stalls = 0
        while t < target:
            h = min(h, target - t)
            stages = [k1]
            for row in range(1, 7):
                increment = sum(
                    coefficient * stage
                    for coefficient, stage in zip(_DP_A[row], stages)
                )
                stages.append(system.derivative(y + h * increment))
            y5 = y + h * sum(b * k for b, k in zip(_DP_B5, stages))
            y4 = y + h * sum(b * k for b, k in zip(_DP_B4, stages))
            scale = atol + rtol * np.maximum(np.abs(y), np.abs(y5))
            error = float(np.sqrt(np.mean(((y5 - y4) / scale) ** 2)))
            if error <= 1.0:
                t += h
                y = np.maximum(y5, 0.0)
                k1 = system.derivative(y)
                self.ode_steps += 1
                stalls = 0
                lam = system.propensities(y)
                floor_counts = system.min_reactant(y)[lam > 0.0]
                if floor_counts.size and float(floor_counts.min()) < exit_threshold:
                    break
            else:
                stalls += 1
                if stalls > 60:
                    raise SimulationError(
                        "the mean-field ODE integrator stalled (step size "
                        "underflow); the system may be too stiff for the ODE "
                        "regime — raise the ODE threshold via regime_thresholds"
                    )
            factor = 0.9 * error ** -0.2 if error > 0.0 else 5.0
            h *= min(5.0, max(0.2, factor))
            h = max(h, 1e-14 * max(1.0, abs(target)))
        self._counts = y
        self._ode_fractional = True
        self._note_seen()
        self.parallel_time = min(t, target)
