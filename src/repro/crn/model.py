"""Declarative chemical reaction networks (CRNs) over agent populations.

Population protocols are formally equivalent to chemical reaction networks
whose reactions preserve the number of molecules: a bimolecular reaction
``A + B -> C + D`` is an interaction rule, a unimolecular reaction
``A -> B`` is a spontaneous state change, and the rate constant is the
paper's transition probability up to a global time rescale.  This module is
the *front end* of that correspondence: a tiny declarative model —
:class:`Reaction`, :class:`CRN`, a text parser — that turns a three-line
spec like ::

    crn = CRN.from_spec(
        ["L + L -> L + F @ 1.0"], name="leader", fractions={"L": 1.0}
    )

into a validated network that :func:`repro.crn.compile.compile_crn` lowers
onto every simulation engine in the repository.

Semantics (stochastic mass action)
----------------------------------

A CRN over a population of ``n`` agents is a continuous-time Markov chain
on species counts ``c``.  With the *interaction volume* ``v = (n - 1) / 2``
(the convention under which the lowered population protocol reproduces the
chain exactly — see ``DESIGN.md``, CRN front-end), reaction propensities
are:

* unimolecular ``A -> ... @ k``: ``k * c(A)``;
* bimolecular ``A + B -> ... @ k`` with ``A != B``: ``k * c(A) * c(B) / v``;
* bimolecular ``A + A -> ... @ k``: ``k * c(A) * (c(A) - 1) / (2 v)``.

Reactant order is meaningful for the *outcome* (position ``i`` of the
reactant tuple maps to position ``i`` of the product tuple) but not for the
propensity: ``A + B -> A + U`` and ``B + A -> B + U`` are different
reactions (the second converts the ``A``).

Validation errors raise :class:`~repro.exceptions.SimulationError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.exceptions import SimulationError

__all__ = [
    "CRN",
    "Reaction",
    "parse_reaction",
    "parse_reactions",
]

#: Species names must be parseable back out of the text form, so they may
#: not contain whitespace or the ``+``, ``->``, ``@``, ``:`` or ``,``
#: separators.
_SPECIES_NAME = re.compile(r"^[A-Za-z0-9_.\-]+$")


def _check_species_name(name: object) -> str:
    if not isinstance(name, str) or not _SPECIES_NAME.match(name):
        raise SimulationError(
            f"invalid species name {name!r}; names are non-empty strings over "
            f"letters, digits, '_', '.' and '-'"
        )
    return name


@dataclass(frozen=True)
class Reaction:
    """One reaction: ordered reactants, ordered products, a rate constant.

    Population protocols conserve the number of agents, so a reaction must
    have the same arity on both sides — ``1 -> 1`` (unimolecular) or
    ``2 -> 2`` (bimolecular).  Position is meaningful: reactant ``i``
    becomes product ``i``, so ``A + B -> A + U`` converts the ``B`` in
    either interaction orientation.
    """

    reactants: tuple[str, ...]
    products: tuple[str, ...]
    rate: float = 1.0

    def __post_init__(self) -> None:
        reactants = tuple(_check_species_name(s) for s in self.reactants)
        products = tuple(_check_species_name(s) for s in self.products)
        object.__setattr__(self, "reactants", reactants)
        object.__setattr__(self, "products", products)
        # Coerce the rate before anything formats it: every later error
        # message renders the reaction through text(), which needs a float.
        shape = f"{' + '.join(reactants)} -> {' + '.join(products)}"
        try:
            rate = float(self.rate)
        except (TypeError, ValueError):
            raise SimulationError(
                f"rate constant of {shape} must be a number, got {self.rate!r}"
            ) from None
        if not rate > 0 or rate != rate or rate == float("inf"):
            raise SimulationError(
                f"rate constant of {shape} must be positive and finite, got {rate}"
            )
        object.__setattr__(self, "rate", rate)
        if len(reactants) not in (1, 2):
            raise SimulationError(
                f"reaction {self.text()} must have 1 or 2 reactants, got "
                f"{len(reactants)} (population protocols are at most bimolecular)"
            )
        if len(products) != len(reactants):
            raise SimulationError(
                f"reaction {self.text()} does not conserve the number of agents: "
                f"{len(reactants)} reactants but {len(products)} products"
            )
        if sorted(products) == sorted(reactants):
            # Covers positional identity (A+B -> A+B) and the pure swap
            # (A+B -> B+A): neither changes any species count, but both
            # would inflate the rate scale and slow every real reaction.
            raise SimulationError(
                f"reaction {self.text()} is a no-op (the product multiset "
                f"equals the reactant multiset, so no species count ever "
                f"changes); remove it"
            )

    @property
    def is_unimolecular(self) -> bool:
        """Whether the reaction has a single reactant (``A -> B`` form)."""
        return len(self.reactants) == 1

    def species(self) -> tuple[str, ...]:
        """Species touched by this reaction, reactants first, deduplicated."""
        seen: dict[str, None] = {}
        for name in (*self.reactants, *self.products):
            seen.setdefault(name)
        return tuple(seen)

    def text(self) -> str:
        """The reaction in its parseable text form."""
        left = " + ".join(self.reactants)
        right = " + ".join(self.products)
        return f"{left} -> {right} @ {self.rate:g}"

    def canonical(self) -> tuple:
        """Hash- and JSON-stable form used in sweep cache keys."""
        return (self.reactants, self.products, self.rate)


def _parse_side(text: str, reaction_text: str) -> tuple[str, ...]:
    names = tuple(part.strip() for part in text.split("+"))
    if any(not name for name in names):
        raise SimulationError(
            f"malformed reaction {reaction_text!r}: empty species in {text!r}"
        )
    return tuple(_check_species_name(name) for name in names)


def parse_reaction(text: str) -> Reaction:
    """Parse one reaction from its text form.

    The grammar is ``REACTANTS -> PRODUCTS [@ RATE]`` where each side is one
    or two ``+``-separated species names and the optional rate constant
    defaults to ``1.0``::

        parse_reaction("L + F -> L + L @ 2.0")
        parse_reaction("I -> R")          # unimolecular, rate 1
    """
    if not isinstance(text, str):
        raise SimulationError(f"a reaction spec must be a string, got {text!r}")
    body, at, rate_text = text.partition("@")
    rate = 1.0
    if at:
        try:
            rate = float(rate_text.strip())
        except ValueError:
            raise SimulationError(
                f"malformed rate constant {rate_text.strip()!r} in reaction {text!r}"
            ) from None
    left, arrow, right = body.partition("->")
    if not arrow:
        raise SimulationError(
            f"malformed reaction {text!r}; expected 'REACTANTS -> PRODUCTS [@ RATE]'"
        )
    return Reaction(
        reactants=_parse_side(left, text),
        products=_parse_side(right, text),
        rate=rate,
    )


def parse_reactions(text: str) -> tuple[Reaction, ...]:
    """Parse a block of reactions, one per line or ``;``-separated.

    Blank lines and ``#`` comments are skipped, so a CRN can be stated as a
    small indented block::

        parse_reactions('''
            S + I -> I + I @ 2.0   # infection
            I -> R                 # recovery
        ''')
    """
    reactions = []
    for chunk in text.replace(";", "\n").splitlines():
        line = chunk.split("#", 1)[0].strip()
        if line:
            reactions.append(parse_reaction(line))
    if not reactions:
        raise SimulationError(f"no reactions found in {text!r}")
    return tuple(reactions)


def _normalise_reactions(
    reactions: "str | Reaction | Iterable[str | Reaction]",
) -> tuple[Reaction, ...]:
    if isinstance(reactions, Reaction):
        return (reactions,)
    if isinstance(reactions, str):
        return parse_reactions(reactions)
    out: list[Reaction] = []
    for entry in reactions:
        if isinstance(entry, Reaction):
            out.append(entry)
        elif isinstance(entry, str):
            out.extend(parse_reactions(entry))
        else:
            raise SimulationError(
                f"reactions must be Reaction objects or spec strings, got {entry!r}"
            )
    if not out:
        raise SimulationError("a CRN needs at least one reaction")
    return tuple(out)


@dataclass(frozen=True)
class CRN:
    """A named chemical reaction network plus its initial condition.

    The initial condition has two parts, resolved at a concrete population
    size by :meth:`initial_counts`:

    ``seeds``
        Exact agent counts assigned first (``{"I": 1}`` seeds one infected
        agent regardless of ``n``).
    ``fractions``
        Relative weights for the remaining ``n - sum(seeds)`` agents,
        apportioned deterministically by largest remainder (``{"A": 0.52,
        "B": 0.48}``).

    Instances are frozen, hashable and picklable, so a CRN can travel inside
    a :class:`~repro.harness.parallel.TrialSpec` to worker processes and
    participate (via :meth:`canonical`) in sweep cache keys.  Prefer
    :meth:`from_spec`, which accepts plain strings and mappings.
    """

    name: str
    reactions: tuple[Reaction, ...]
    seeds: tuple[tuple[str, int], ...] = ()
    fractions: tuple[tuple[str, float], ...] = ()

    @classmethod
    def from_spec(
        cls,
        reactions: "str | Reaction | Iterable[str | Reaction]",
        name: str = "crn",
        seeds: Mapping[str, int] | None = None,
        fractions: Mapping[str, float] | None = None,
    ) -> "CRN":
        """Build a CRN from reaction spec strings and initial-condition maps."""
        return cls(
            name=name,
            reactions=_normalise_reactions(reactions),
            seeds=tuple(sorted((seeds or {}).items())),
            fractions=tuple(sorted((fractions or {}).items())),
        )

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SimulationError(f"CRN name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "reactions", _normalise_reactions(self.reactions))
        seen_shapes: set[tuple] = set()
        for reaction in self.reactions:
            shape = (reaction.reactants, reaction.products)
            if shape in seen_shapes:
                raise SimulationError(
                    f"CRN {self.name!r} declares reaction {reaction.text()} twice; "
                    f"merge the rate constants into one reaction"
                )
            seen_shapes.add(shape)
        seeds = tuple(sorted(self.seeds))
        for species, count in seeds:
            _check_species_name(species)
            if not isinstance(count, int) or count < 0:
                raise SimulationError(
                    f"seed count of species {species!r} must be a non-negative "
                    f"int, got {count!r}"
                )
        object.__setattr__(self, "seeds", tuple((s, c) for s, c in seeds if c > 0))
        fractions = tuple(sorted(self.fractions))
        cleaned: list[tuple[str, float]] = []
        for species, weight in fractions:
            _check_species_name(species)
            try:
                weight = float(weight)
            except (TypeError, ValueError):
                raise SimulationError(
                    f"initial fraction of species {species!r} must be a number, "
                    f"got {weight!r}"
                ) from None
            if not weight > 0 or weight == float("inf") or weight != weight:
                raise SimulationError(
                    f"initial fraction of species {species!r} must be positive "
                    f"and finite, got {weight}"
                )
            cleaned.append((species, weight))
        object.__setattr__(self, "fractions", tuple(cleaned))
        if not self.fractions:
            raise SimulationError(
                f"CRN {self.name!r} needs at least one species with a positive "
                f"initial fraction (seeds alone cannot cover every population size)"
            )

    # -- structure -----------------------------------------------------------

    def species(self) -> tuple[str, ...]:
        """All species, in first-appearance order (reactions, then init)."""
        seen: dict[str, None] = {}
        for reaction in self.reactions:
            for name in reaction.species():
                seen.setdefault(name)
        for name, _ in (*self.seeds, *self.fractions):
            seen.setdefault(name)
        return tuple(seen)

    def is_conserved(self, weights: Mapping[str, float]) -> bool:
        """Whether ``sum(weights[s] * c(s))`` is invariant under every reaction.

        Species absent from ``weights`` count with weight 0.  With all
        weights 1 this is the agent-count conservation that every valid
        reaction satisfies by construction; other weightings express
        problem-specific invariants (e.g. ``S + I + R`` in the SIR model).
        """
        for reaction in self.reactions:
            before = sum(weights.get(s, 0.0) for s in reaction.reactants)
            after = sum(weights.get(s, 0.0) for s in reaction.products)
            if abs(before - after) > 1e-12 * max(1.0, abs(before)):
                return False
        return True

    # -- initial condition ----------------------------------------------------

    def initial_counts(self, population_size: int) -> dict[str, int]:
        """Resolve the initial condition at a concrete population size.

        Seeds are assigned exactly; the remaining agents are apportioned to
        the fraction species by largest remainder (deterministic, ties broken
        by species order), so the counts always sum to ``population_size``.
        """
        if population_size < 2:
            raise SimulationError(
                f"population must contain at least 2 agents, got {population_size}"
            )
        counts: dict[str, int] = {species: 0 for species in self.species()}
        seeded = 0
        for species, count in self.seeds:
            counts[species] += count
            seeded += count
        remaining = population_size - seeded
        if remaining < 0:
            raise SimulationError(
                f"CRN {self.name!r} seeds {seeded} agents but the population "
                f"only has {population_size}"
            )
        if remaining:
            total_weight = sum(weight for _, weight in self.fractions)
            quotas = [
                (species, remaining * weight / total_weight)
                for species, weight in self.fractions
            ]
            assigned = 0
            floors: list[tuple[str, int, float]] = []
            for species, quota in quotas:
                base = int(quota)
                floors.append((species, base, quota - base))
                assigned += base
            floors.sort(key=lambda item: -item[2])
            leftover = remaining - assigned
            for position, (species, base, _) in enumerate(floors):
                counts[species] += base + (1 if position < leftover else 0)
        return {species: count for species, count in counts.items() if count > 0}

    # -- identity -------------------------------------------------------------

    def canonical(self) -> tuple:
        """Hash- and JSON-stable description (drives sweep cache keys).

        Every rate constant, product orientation, seed and fraction appears,
        so two CRNs differing in any of them — notably a single rate
        constant — never share a cache key.
        """
        return (
            self.name,
            tuple(reaction.canonical() for reaction in self.reactions),
            self.seeds,
            self.fractions,
        )

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"CRN {self.name!r}: {len(self.species())} species, "
            f"{len(self.reactions)} reactions"
        )
