"""Exact stochastic simulation (Gillespie direct method) of a CRN.

The engines simulate a lowered CRN through interaction sampling; this module
simulates the *same* continuous-time Markov chain directly on species
counts, one exponential holding time and one reaction per step.  It is
``O(reactions)`` Python work per event — only viable at small populations —
and exists as the ground truth the engine lowerings are validated against
(``tests/crn/test_cross_engine_crn.py``,
``benchmarks/bench_crn_kinetics.py``).

Propensities follow the convention of :mod:`repro.crn.model` (interaction
volume ``v = (n - 1) / 2``), which is exactly the chain the uniform lowering
realises after its ``Gamma`` time rescale: sampling the SSA at chemical time
``t`` corresponds to sampling an engine at parallel time ``Gamma * t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.crn.model import CRN
from repro.exceptions import SimulationError

__all__ = ["SSAResult", "simulate_ssa"]


@dataclass(frozen=True)
class SSAResult:
    """One exact SSA trajectory, sampled at fixed chemical times.

    Attributes
    ----------
    sample_times:
        The requested chemical times, ascending.
    counts:
        ``counts[species][i]`` is the count of ``species`` at
        ``sample_times[i]``.
    final_time:
        Chemical time reached (the last sample time, or the absorption
        time if the chain died earlier — counts are constant from there on).
    reactions_fired:
        Total reaction events executed.
    absorbed:
        Whether the chain reached a configuration with zero total
        propensity before the last sample time.
    """

    sample_times: tuple[float, ...]
    counts: dict[str, tuple[int, ...]]
    final_time: float
    reactions_fired: int
    absorbed: bool

    def at(self, index: int) -> dict[str, int]:
        """The sampled configuration at ``sample_times[index]``."""
        return {species: values[index] for species, values in self.counts.items()}


def simulate_ssa(
    crn: CRN,
    population_size: int,
    sample_times: Sequence[float],
    seed: int | None = None,
) -> SSAResult:
    """Run one exact Gillespie trajectory of ``crn`` at ``population_size``.

    The chain starts from ``crn.initial_counts(population_size)`` and is
    sampled at the given ascending chemical times.
    """
    times = [float(t) for t in sample_times]
    if not times or any(t < 0 for t in times) or sorted(times) != times:
        raise SimulationError(
            f"sample_times must be non-empty, non-negative and ascending, "
            f"got {sample_times!r}"
        )
    rng = np.random.default_rng(seed)
    species = crn.species()
    index = {name: position for position, name in enumerate(species)}
    counts = [0] * len(species)
    for name, count in crn.initial_counts(population_size).items():
        counts[index[name]] = count
    volume = (population_size - 1) / 2.0

    reactions = []
    for reaction in crn.reactions:
        reactant_idx = tuple(index[name] for name in reaction.reactants)
        product_idx = tuple(index[name] for name in reaction.products)
        reactions.append((reaction, reactant_idx, product_idx))

    def propensity(entry) -> float:
        reaction, reactant_idx, _ = entry
        if reaction.is_unimolecular:
            return reaction.rate * counts[reactant_idx[0]]
        a, b = reactant_idx
        if a == b:
            return reaction.rate * counts[a] * (counts[a] - 1) / (2.0 * volume)
        return reaction.rate * counts[a] * counts[b] / volume

    samples: list[list[int]] = []
    now = 0.0
    fired = 0
    absorbed = False
    cursor = 0
    while cursor < len(times):
        propensities = [propensity(entry) for entry in reactions]
        total = sum(propensities)
        if total <= 0.0:
            absorbed = True
            break
        step = rng.exponential(1.0 / total)
        while cursor < len(times) and now + step > times[cursor]:
            samples.append(list(counts))
            cursor += 1
        now += step
        if cursor >= len(times):
            now = times[-1]
            break
        draw = rng.random() * total
        cumulative = 0.0
        chosen = reactions[-1]
        for entry, value in zip(reactions, propensities):
            cumulative += value
            if draw < cumulative:
                chosen = entry
                break
        _, reactant_idx, product_idx = chosen
        for position in reactant_idx:
            counts[position] -= 1
        for position in product_idx:
            counts[position] += 1
        fired += 1
    while cursor < len(times):
        # Absorbed (or exactly exhausted): the configuration is frozen.
        samples.append(list(counts))
        cursor += 1

    return SSAResult(
        sample_times=tuple(times),
        counts={
            name: tuple(sample[position] for sample in samples)
            for name, position in index.items()
        },
        final_time=min(now, times[-1]) if not absorbed else now,
        reactions_fired=fired,
        absorbed=absorbed,
    )
