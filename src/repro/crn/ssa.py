"""Exact stochastic simulation (Gillespie direct method) of a CRN.

The engines simulate a lowered CRN through interaction sampling; this module
simulates the *same* continuous-time Markov chain directly on species
counts, one exponential holding time and one reaction per step.  It exists
as the ground truth the engine lowerings are validated against
(``tests/crn/test_cross_engine_crn.py``, ``tests/crn/test_multiscale.py``,
``benchmarks/bench_crn_kinetics.py``).

Propensities follow the convention of :mod:`repro.crn.model` (interaction
volume ``v = (n - 1) / 2``), which is exactly the chain the uniform lowering
realises after its ``Gamma`` time rescale: sampling the SSA at chemical time
``t`` corresponds to sampling an engine at parallel time ``Gamma * t``.

Per-event work is incremental: a compiled dependency graph maps each
reaction to the propensities its firing invalidates, so only those are
recomputed (the classic "next reaction"-style optimisation, applied to the
direct method).  The optimisation is stream-preserving by construction —
every recomputed propensity uses the exact floating-point expression of the
naive full recomputation, the total is re-summed in reaction order, and the
generator is consumed one ``exponential`` (plus, per fired event, one
``random``) at a time — so trajectories are bit-for-bit identical to the
pre-optimisation implementation for any (network, n, seed).
``tests/crn/test_ssa_golden.py`` pins that stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.crn.model import CRN
from repro.exceptions import SimulationError
from repro.obs.recorder import RECORDER as _REC

__all__ = ["SSAResult", "simulate_ssa"]


@dataclass(frozen=True)
class SSAResult:
    """One exact SSA trajectory, sampled at fixed chemical times.

    Attributes
    ----------
    sample_times:
        The requested chemical times, ascending.
    counts:
        ``counts[species][i]`` is the count of ``species`` at
        ``sample_times[i]``.
    final_time:
        Chemical time reached (the last sample time, or the absorption
        time if the chain died earlier — counts are constant from there on).
    reactions_fired:
        Total reaction events executed.
    absorbed:
        Whether the chain reached a configuration with zero total
        propensity before the last sample time.
    """

    sample_times: tuple[float, ...]
    counts: dict[str, tuple[int, ...]]
    final_time: float
    reactions_fired: int
    absorbed: bool

    def at(self, index: int) -> dict[str, int]:
        """The sampled configuration at ``sample_times[index]``."""
        return {species: values[index] for species, values in self.counts.items()}


def simulate_ssa(
    crn: CRN,
    population_size: int,
    sample_times: Sequence[float],
    seed: int | None = None,
) -> SSAResult:
    """Run one exact Gillespie trajectory of ``crn`` at ``population_size``.

    The chain starts from ``crn.initial_counts(population_size)`` and is
    sampled at the given ascending chemical times.
    """
    times = [float(t) for t in sample_times]
    if not times or any(t < 0 for t in times) or sorted(times) != times:
        raise SimulationError(
            f"sample_times must be non-empty, non-negative and ascending, "
            f"got {sample_times!r}"
        )
    telemetry_t0 = _REC.now_ns() if _REC.enabled else 0
    rng = np.random.default_rng(seed)
    species = crn.species()
    index = {name: position for position, name in enumerate(species)}
    counts = [0] * len(species)
    for name, count in crn.initial_counts(population_size).items():
        counts[index[name]] = count
    volume = (population_size - 1) / 2.0

    # Compile the network once: per-reaction propensity descriptors, sparse
    # net stoichiometry, and the dependency graph (reaction j fired ->
    # propensities to recompute).  UNI/DIAG/PAIR keep the *exact*
    # floating-point expressions of the naive per-event recomputation (see
    # the module docstring: the RNG stream is pinned).
    UNI, DIAG, PAIR = 0, 1, 2
    table: list[tuple[int, int, int, float]] = []
    net_changes: list[list[tuple[int, int]]] = []
    for reaction in crn.reactions:
        reactant_idx = tuple(index[name] for name in reaction.reactants)
        product_idx = tuple(index[name] for name in reaction.products)
        if reaction.is_unimolecular:
            table.append((UNI, reactant_idx[0], reactant_idx[0], reaction.rate))
        else:
            a, b = reactant_idx
            table.append((DIAG if a == b else PAIR, a, b, reaction.rate))
        net: dict[int, int] = {}
        for position in reactant_idx:
            net[position] = net.get(position, 0) - 1
        for position in product_idx:
            net[position] = net.get(position, 0) + 1
        net_changes.append(
            [(position, change) for position, change in net.items() if change]
        )
    depends: list[list[int]] = [[] for _ in species]
    for number, (_, a, b, _) in enumerate(table):
        depends[a].append(number)
        if b != a:
            depends[b].append(number)
    affected: list[tuple[int, ...]] = [
        tuple(
            sorted(
                {
                    dependent
                    for position, _ in changes
                    for dependent in depends[position]
                }
            )
        )
        for changes in net_changes
    ]

    def propensity(number: int) -> float:
        mode, a, b, rate = table[number]
        if mode == UNI:
            return rate * counts[a]
        if mode == DIAG:
            return rate * counts[a] * (counts[a] - 1) / (2.0 * volume)
        return rate * counts[a] * counts[b] / volume

    propensities = [propensity(number) for number in range(len(table))]
    last = len(table) - 1
    samples: list[list[int]] = []
    now = 0.0
    fired = 0
    absorbed = False
    cursor = 0
    while cursor < len(times):
        # Re-summed in reaction order each event so the value (and hence
        # every RNG draw) matches a full recomputation bit-for-bit.
        total = sum(propensities)
        if total <= 0.0:
            absorbed = True
            break
        step = rng.exponential(1.0 / total)
        while cursor < len(times) and now + step > times[cursor]:
            samples.append(list(counts))
            cursor += 1
        now += step
        if cursor >= len(times):
            now = times[-1]
            break
        draw = rng.random() * total
        cumulative = 0.0
        chosen = last
        for number, value in enumerate(propensities):
            cumulative += value
            if draw < cumulative:
                chosen = number
                break
        for position, change in net_changes[chosen]:
            counts[position] += change
        for number in affected[chosen]:
            propensities[number] = propensity(number)
        fired += 1
    while cursor < len(times):
        # Absorbed (or exactly exhausted): the configuration is frozen.
        samples.append(list(counts))
        cursor += 1

    if _REC.enabled:
        # Post-hoc accounting only: the event loop above never reads a
        # clock, so the exact trajectory (and RNG stream) is telemetry-free.
        _REC.add_time("ssa.simulate", _REC.now_ns() - telemetry_t0)
        _REC.count("ssa.runs")
        _REC.count("ssa.reactions_fired", fired)
    return SSAResult(
        sample_times=tuple(times),
        counts={
            name: tuple(sample[position] for sample in samples)
            for name, position in index.items()
        },
        final_time=min(now, times[-1]) if not absorbed else now,
        reactions_fired=fired,
        absorbed=absorbed,
    )
