"""Compile a declarative CRN onto the repository's simulation engines.

:func:`compile_crn` lowers a :class:`~repro.crn.model.CRN` to a generated
:class:`~repro.protocols.base.FiniteStateProtocol` (:class:`CRNProtocol`)
whose states are the species.  That single artefact runs on *every* engine:
the agent and vector engines execute it directly, and the count/batched
engines flatten it through the existing compiled transition tables
(:func:`repro.protocols.compiled.compile_transition_table`).

Two lowering modes
------------------

``"uniform"`` (default — exact kinetics *and* exact times)
    Each ordered species pair carries its reactions with probability
    ``k / Gamma``, where the *rate scale* ``Gamma`` is the largest total
    rate constant over ordered pairs.  Under the paper's uniform scheduler
    the simulated process is then **exactly** the stochastic mass-action
    chain of the CRN (interaction volume ``v = (n - 1) / 2``; see
    ``repro.crn.model``) with every propensity divided by ``Gamma`` — i.e.
    Gillespie-equivalent up to the global time rescale
    ``parallel_time = Gamma * chemical_time``
    (:meth:`CompiledCRN.to_chemical_time`).  Valid on all four engines.

``"thinned"`` (exact reaction sequence, event-clock time)
    The compiler factors per-species *activity rates*
    ``r_s = sqrt(max pair total touching s)`` and maps them through the
    count-level ``state-weighted`` scheduler: ordered pairs are selected
    with probability proportional to ``(r_a c_a)(r_b c_b)`` and each
    reaction fires with probability ``k / (r_a r_b)``.  Every reaction's
    per-interaction probability is again proportional to its mass-action
    propensity, so the *embedded jump chain* (the sequence of reactions, and
    therefore every hitting/absorption statistic) is exactly Gillespie's —
    but far fewer interactions are spent on slow or inert pairs when rate
    constants span orders of magnitude.  The price is the clock: the
    interaction count no longer maps to chemical time by a constant
    (``DESIGN.md``, CRN front-end).  Count/batched engines only (they are
    the engines that can run ``state-weighted`` exactly); species that touch
    no reaction keep a tiny ``inert_rate`` so absorbing configurations (a
    lone leader among followers) remain schedulable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.crn.model import CRN
from repro.engine.configuration import Configuration
from repro.engine.scheduler import SchedulerSpec
from repro.exceptions import SimulationError
from repro.protocols.base import FiniteStateProtocol, RandomizedTransition

__all__ = ["CRN_MODES", "CRNProtocol", "CompiledCRN", "compile_crn"]

#: Lowering modes understood by :func:`compile_crn`.
CRN_MODES = ("uniform", "thinned")

#: Relative activity kept by species that participate in no reaction under
#: the thinned lowering, so a configuration in which only such species
#: remain alongside one reactive agent is still schedulable.
_DEFAULT_INERT_RATE = 1e-3


class CRNProtocol(FiniteStateProtocol):
    """The finite-state protocol generated for one CRN lowering.

    States are the CRN's species names.  The transition distribution of each
    ordered pair is precomputed by :func:`compile_crn`; this class only
    serves it through the standard :class:`FiniteStateProtocol` interface,
    so every engine, the termination analysis and the compiled-table
    machinery treat a CRN like any hand-written protocol.

    ``initial_state`` covers the seed-plus-single-default initial conditions
    that are expressible without knowing ``n`` (one infected agent, all
    leaders, ...).  Multi-species fractions need the population size —
    build those configurations through
    :meth:`CompiledCRN.initial_configuration` (the CRN runners always do).
    """

    is_uniform = True

    def __init__(
        self,
        crn: CRN,
        mode: str,
        transition_map: Mapping[tuple[str, str], tuple[RandomizedTransition, ...]],
    ) -> None:
        self.crn = crn
        self.mode = mode
        self._species = crn.species()
        self._transitions = dict(transition_map)
        seeds = list(crn.seeds)
        self._seed_plan: list[tuple[int, str]] = []
        cumulative = 0
        for species, count in seeds:
            cumulative += count
            self._seed_plan.append((cumulative, species))
        self._default_species = (
            crn.fractions[0][0] if len(crn.fractions) == 1 else None
        )

    def states(self) -> Sequence[Hashable]:
        return self._species

    def initial_state(self, agent_id: int) -> Hashable:
        for threshold, species in self._seed_plan:
            if agent_id < threshold:
                return species
        if self._default_species is None:
            raise SimulationError(
                f"{self.crn.describe()} splits its initial fractions over "
                f"several species, which depends on the population size; build "
                f"the engine with CompiledCRN.initial_configuration(n)"
            )
        return self._default_species

    def transitions(
        self, receiver: Hashable, sender: Hashable
    ) -> Sequence[RandomizedTransition]:
        return self._transitions.get((receiver, sender), ())

    def describe(self) -> str:
        return (
            f"CRNProtocol({self.crn.name}, {len(self._species)} species, "
            f"{len(self.crn.reactions)} reactions, {self.mode})"
        )


@dataclass(frozen=True)
class CompiledCRN:
    """The result of lowering one CRN: protocol, scheduler and time mapping.

    Attributes
    ----------
    crn / mode:
        The source network and the lowering mode (``"uniform"`` or
        ``"thinned"``).
    protocol:
        The generated :class:`CRNProtocol`.
    rate_scale:
        The uniform-mode rate scale ``Gamma`` (largest total rate constant
        over ordered species pairs).  In uniform mode this is the exact
        chemical-to-parallel time factor; in thinned mode it is only the
        budget heuristic (thinned runs spend at most comparably many
        interactions per reaction event).
    state_rates:
        Per-species activity rates of the thinned lowering (``None`` in
        uniform mode).
    """

    crn: CRN
    mode: str
    protocol: CRNProtocol
    rate_scale: float
    state_rates: tuple[tuple[str, float], ...] | None = None

    @property
    def time_exact(self) -> bool:
        """Whether parallel time maps to chemical time by a constant."""
        return self.mode == "uniform"

    def scheduler_spec(self) -> SchedulerSpec | None:
        """The scheduler the lowering targets.

        ``None`` in uniform mode — the engines run their default policies
        (sequential, or matching on the vector engine).  In thinned mode, a
        ``state-weighted`` spec carrying the compiler's activity rates.
        """
        if self.state_rates is None:
            return None
        return SchedulerSpec(name="state-weighted", options=(("rates", self.state_rates),))

    def initial_configuration(self, population_size: int) -> Configuration:
        """The CRN's initial condition resolved at ``population_size``."""
        return Configuration(self.crn.initial_counts(population_size))

    def to_parallel_time(self, chemical_time: float) -> float:
        """Parallel time corresponding to ``chemical_time`` (uniform mode)."""
        if not self.time_exact:
            raise SimulationError(
                "the thinned lowering has no constant chemical-time mapping; "
                "compile with mode='uniform' for time statistics"
            )
        return self.rate_scale * chemical_time

    def to_chemical_time(self, parallel_time: float) -> float:
        """Chemical time corresponding to ``parallel_time`` (uniform mode)."""
        if not self.time_exact:
            raise SimulationError(
                "the thinned lowering has no constant chemical-time mapping; "
                "compile with mode='uniform' for time statistics"
            )
        return parallel_time / self.rate_scale

    def build(
        self,
        engine: str,
        population_size: int,
        seed: int | None = None,
        **engine_options,
    ):
        """Construct ``engine`` running this CRN at ``population_size``.

        Thin wrapper over :func:`repro.engine.selection.build_engine` that
        supplies the resolved initial configuration and the lowering's
        scheduler.  The engine × scheduler compatibility matrix applies: the
        thinned lowering builds only on the count and batched engines.
        """
        from repro.engine.selection import build_engine

        return build_engine(
            engine,
            self.protocol,
            population_size,
            seed=seed,
            initial_configuration=self.initial_configuration(population_size),
            scheduler=self.scheduler_spec(),
            **engine_options,
        )


def _pair_entries(crn: CRN) -> dict[tuple[str, str], list[tuple[str, str, float]]]:
    """Expand reactions into per-ordered-pair outcome entries.

    A bimolecular reaction with written reactants ``(R1, R2)`` fires in both
    interaction orientations (``(R1, R2)`` and, when distinct, ``(R2, R1)``
    with the products reversed accordingly).  A unimolecular reaction of
    ``A`` fires whenever an ``A`` agent is the *receiver*, whatever the
    sender: one entry per ordered pair ``(A, X)`` leaving the sender
    unchanged.  Under the uniform scheduler these conventions give exactly
    the mass-action propensities of ``repro.crn.model`` after the global
    rescale (receiver-uniformity makes the unimolecular rate ``k * c(A)``).
    """
    species = crn.species()
    entries: dict[tuple[str, str], list[tuple[str, str, float]]] = {}

    def add(pair: tuple[str, str], outcome: tuple[str, str, float]) -> None:
        entries.setdefault(pair, []).append(outcome)

    for reaction in crn.reactions:
        if reaction.is_unimolecular:
            (source,), (target,) = reaction.reactants, reaction.products
            for other in species:
                add((source, other), (target, other, reaction.rate))
        else:
            (r1, r2), (p1, p2) = reaction.reactants, reaction.products
            add((r1, r2), (p1, p2, reaction.rate))
            if r1 != r2:
                add((r2, r1), (p2, p1, reaction.rate))
    return entries


def compile_crn(
    crn: CRN,
    mode: str = "uniform",
    rate_scale: float | None = None,
    inert_rate: float = _DEFAULT_INERT_RATE,
) -> CompiledCRN:
    """Lower ``crn`` to a :class:`CompiledCRN` (see the module docstring).

    Parameters
    ----------
    crn:
        The network to compile.
    mode:
        ``"uniform"`` (exact kinetics and times on every engine) or
        ``"thinned"`` (exact reaction sequence through the
        ``state-weighted`` scheduler on the count/batched engines).
    rate_scale:
        Uniform mode only: override the automatic rate scale ``Gamma`` with
        a larger value (slows simulated time but leaves the chain exact;
        useful to align time axes across several networks).
    inert_rate:
        Thinned mode only: relative activity kept by species that touch no
        reaction (must be in ``(0, 1]``).

    Raises
    ------
    SimulationError
        For an unknown mode, a ``rate_scale`` below the automatic one (the
        per-pair probabilities would exceed 1), or invalid options.
    """
    if mode not in CRN_MODES:
        raise SimulationError(
            f"unknown CRN lowering mode {mode!r}; expected one of {', '.join(CRN_MODES)}"
        )
    entries = _pair_entries(crn)
    pair_totals = {
        pair: sum(rate for _, _, rate in outcomes)
        for pair, outcomes in entries.items()
    }
    gamma = max(pair_totals.values())

    if mode == "uniform":
        if rate_scale is not None:
            if rate_scale < gamma:
                raise SimulationError(
                    f"rate_scale {rate_scale} is below the CRN's automatic rate "
                    f"scale {gamma}; per-pair probabilities would exceed 1"
                )
            gamma = float(rate_scale)
        denominator = {pair: gamma for pair in entries}
        state_rates = None
    else:
        if rate_scale is not None:
            raise SimulationError(
                "rate_scale only applies to the uniform lowering; the thinned "
                "lowering derives per-species activity rates instead"
            )
        if not 0.0 < inert_rate <= 1.0:
            raise SimulationError(f"inert_rate must be in (0, 1], got {inert_rate}")
        peak: dict[str, float] = {species: 0.0 for species in crn.species()}
        for (a, b), total in pair_totals.items():
            peak[a] = max(peak[a], total)
            peak[b] = max(peak[b], total)
        rates = {species: value ** 0.5 for species, value in peak.items()}
        floor = inert_rate * max(rates.values())
        rates = {species: max(rate, floor) for species, rate in rates.items()}
        denominator = {(a, b): rates[a] * rates[b] for (a, b) in entries}
        state_rates = tuple(sorted(rates.items()))

    transition_map: dict[tuple[str, str], tuple[RandomizedTransition, ...]] = {}
    for pair, outcomes in entries.items():
        scale = denominator[pair]
        transition_map[pair] = tuple(
            RandomizedTransition(
                receiver_out=receiver_out,
                sender_out=sender_out,
                probability=rate / scale,
            )
            for receiver_out, sender_out, rate in outcomes
        )

    protocol = CRNProtocol(crn, mode, transition_map)
    protocol.validate()
    return CompiledCRN(
        crn=crn,
        mode=mode,
        protocol=protocol,
        rate_scale=gamma,
        state_rates=state_rates,
    )
