"""Approximate majority baseline.

The 3-state approximate-majority protocol (Angluin, Aspnes, Eisenstat) is the
canonical example of a fast constant-state computation and one of the
downstream tasks (exact majority) that the nonuniform polylog protocols cited
by the paper solve with an initial estimate of ``log n``.  We include the
3-state protocol as

* a realistic downstream protocol for the composition machinery of
  :mod:`repro.core.composition` (the size estimate sets the stage length), and
* a finite-state protocol exercised by the count-based engine and the
  termination/density experiments (its initial configurations are dense
  whenever both opinions start with a constant fraction of the population).

States: ``"X"`` and ``"Y"`` (the two opinions) and ``"B"`` (blank/undecided).
Transitions (both orderings):

* ``X, Y -> X, B`` and ``Y, X -> Y, B`` — opposite opinions: the sender is
  blanked,
* ``X, B -> X, X`` and ``Y, B -> Y, Y`` — an opinionated agent recruits a
  blank one.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.exceptions import ProtocolError
from repro.protocols.base import FiniteStateProtocol, RandomizedTransition


class ApproximateMajorityProtocol(FiniteStateProtocol):
    """Three-state approximate majority over opinions ``X`` and ``Y``.

    Parameters
    ----------
    x_fraction:
        Fraction of agents initialised with opinion ``X`` (the rest start
        with ``Y``).  Agents are assigned deterministically by id so the same
        initial margin is reproducible across engines.
    """

    is_uniform = True

    OPINION_X = "X"
    OPINION_Y = "Y"
    BLANK = "B"

    def __init__(self, x_fraction: float = 0.6) -> None:
        if not 0.0 <= x_fraction <= 1.0:
            raise ProtocolError(f"x_fraction must be in [0, 1], got {x_fraction}")
        self.x_fraction = x_fraction

    def states(self) -> Sequence[Hashable]:
        return (self.OPINION_X, self.OPINION_Y, self.BLANK)

    def initial_state(self, agent_id: int) -> Hashable:
        # Deterministic striping: agent ids are assigned X at rate x_fraction.
        # Using the fractional part keeps the margin stable for any n.
        position = (agent_id * 0.6180339887498949) % 1.0
        return self.OPINION_X if position < self.x_fraction else self.OPINION_Y

    def transitions(
        self, receiver: Hashable, sender: Hashable
    ) -> Sequence[RandomizedTransition]:
        x, y, blank = self.OPINION_X, self.OPINION_Y, self.BLANK
        if {receiver, sender} == {x, y}:
            # The sender is blanked regardless of orientation.
            return (RandomizedTransition(receiver_out=receiver, sender_out=blank),)
        if receiver in (x, y) and sender == blank:
            return (RandomizedTransition(receiver_out=receiver, sender_out=receiver),)
        if sender in (x, y) and receiver == blank:
            return (RandomizedTransition(receiver_out=sender, sender_out=sender),)
        return ()

    def output(self, state: Hashable) -> str:
        """The opinion an agent currently reports (blank agents report ``"B"``)."""
        return state

    def describe(self) -> str:
        return f"ApproximateMajority(x_fraction={self.x_fraction})"


def majority_consensus_predicate(simulator) -> bool:
    """Predicate: the population has reached consensus on a single opinion."""
    x = simulator.count(ApproximateMajorityProtocol.OPINION_X)
    y = simulator.count(ApproximateMajorityProtocol.OPINION_Y)
    return x == 0 or y == 0
