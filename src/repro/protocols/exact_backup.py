"""Probability-1 exact upper bound on ``log2 n`` (Section 3.3's backup protocol).

Section 3.3 of the paper observes that many applications only need an *upper
bound* on ``log n``, and that a slow, error-free backup protocol can guarantee
one with probability 1:

    transitions ``l_i, l_i -> l_{i+1}, f_{i+1}`` for all ``i``, and
    ``f_i, f_j -> f_i, f_i`` for ``j < i``, with all agents starting in ``l_0``.

Two *active* agents at the same level ``i`` merge into a single active agent
at level ``i + 1`` (the other becomes a follower).  The total "mass"
``sum over active agents of 2^level`` is invariant and equal to ``n``, so the
maximum level ever reachable is ``floor(log2 n)``; and because any two active
agents sharing a level can still merge, the population keeps merging until the
active levels are exactly the binary representation of ``n`` — at which point
the maximum level *equals* ``floor(log2 n)`` with probability 1, after
``O(n)`` expected time.

Every agent additionally tracks the largest level it has ever observed
(``best``), which spreads by epidemic; this is the value the agent reports.
(The paper only gives the follower rule ``f_i, f_j -> f_i, f_i``; tracking the
maximum in every agent is pure bookkeeping that changes neither the merging
dynamics nor the probability-1 guarantee, and it makes *every* agent's output
converge to ``floor(log2 n)``, matching the paper's "all agents store k_ex".)

The level approaches its final value from below, so ``best + 1 >= log2 n``
holds with probability 1 once the protocol stabilises;
:mod:`repro.core.probability_one` reports ``max(k + slack, best + 1)`` to
obtain the Section 3.3 guarantee.  (The paper states the stabilised value as
``2^(k_ex-1) < n <= 2^(k_ex)``; pure pairwise merging yields
``floor(log2 n)``, hence the explicit ``+ 1``; the guarantee "upper bound on
``log2 n``, exceeding it by at most 1" is unchanged.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.protocols.base import AgentProtocol
from repro.rng import RandomSource

ACTIVE = "l"
FOLLOWER = "f"


@dataclass(frozen=True, slots=True)
class BackupState:
    """State of one agent of the backup protocol.

    Attributes
    ----------
    kind:
        ``"l"`` for an active level token, ``"f"`` for a follower.
    level:
        The token's merge level (only meaningful while active; frozen once a
        follower).
    best:
        The largest level this agent has ever observed — its reported value.
    """

    kind: str = ACTIVE
    level: int = 0
    best: int = 0


class ExactUpperBoundBackup(AgentProtocol[BackupState]):
    """The slow probability-1 protocol computing ``floor(log2 n)`` from below.

    The output of an agent is the largest level it has observed; with
    probability 1 every agent's output converges to ``floor(log2 n)`` in
    ``O(n)`` expected time, approaching it from below.
    """

    is_uniform = True

    def initial_state(self, agent_id: int) -> BackupState:
        return BackupState()

    def transition(
        self, receiver: BackupState, sender: BackupState, rng: RandomSource
    ) -> tuple[BackupState, BackupState]:
        observed = max(receiver.best, sender.best, receiver.level, sender.level)

        # l_i, l_i -> l_{i+1}, f_{i+1}
        if (
            receiver.kind == ACTIVE
            and sender.kind == ACTIVE
            and receiver.level == sender.level
        ):
            merged_level = receiver.level + 1
            observed = max(observed, merged_level)
            return (
                BackupState(kind=ACTIVE, level=merged_level, best=observed),
                BackupState(kind=FOLLOWER, level=merged_level, best=observed),
            )

        # Otherwise both agents simply learn the maximum level observed so far
        # (the follower rule f_i, f_j -> f_i, f_i for j < i, applied to the
        # bookkeeping field of every agent).
        new_receiver = BackupState(kind=receiver.kind, level=receiver.level, best=observed)
        new_sender = BackupState(kind=sender.kind, level=sender.level, best=observed)
        return new_receiver, new_sender

    def output(self, state: BackupState) -> int:
        """The agent's current lower approximation of ``floor(log2 n)``."""
        return state.best

    def state_signature(self, state: BackupState) -> Hashable:
        return (state.kind, state.level, state.best)

    def describe(self) -> str:
        return "ExactUpperBoundBackup"


def backup_stabilized(simulation) -> bool:
    """Predicate: merging has finished and every agent reports the same value.

    Merging has finished when no two active tokens share a level (the active
    levels then spell the binary representation of ``n``, so the maximum
    level is ``floor(log2 n)``); the run has stabilised once, additionally,
    every agent's ``best`` equals that maximum.
    """
    active_levels: set[int] = set()
    best_values: set[int] = set()
    max_level = 0
    for state in simulation.states:
        best_values.add(state.best)
        max_level = max(max_level, state.level, state.best)
        if state.kind == ACTIVE:
            if state.level in active_levels:
                return False
            active_levels.add(state.level)
    return best_values == {max_level}
