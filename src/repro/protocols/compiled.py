"""Compilation of finite-state protocols into dense integer transition tables.

The configuration-level engines only ever see a :class:`FiniteStateProtocol`
through its ``transitions(receiver, sender)`` method, which is a Python call
returning freshly inspected :class:`RandomizedTransition` objects.  That is
fine for a per-interaction engine, but the batched engine
(:class:`repro.engine.batched_simulator.BatchedCountSimulator`) needs to ask
"what happens to the ordered state pair ``(i, j)``" millions of times per
second and to feed outcome distributions straight into numpy multinomial
draws.

:func:`compile_transition_table` therefore flattens a protocol once, up
front, into index space:

* states are numbered ``0 .. S-1`` in the order reported by
  :meth:`FiniteStateProtocol.states`,
* for every ordered pair ``(i, j)`` the explicit (non-identity) outcomes are
  stored in three dense ``(S, S, K)`` arrays (receiver output index, sender
  output index, probability), where ``K`` is the maximum number of outcomes
  of any pair, and
* the *residual* probability mass of each pair — transitions the protocol
  leaves unspecified plus outcomes that map the pair to itself — is folded
  into a ``(S, S)`` ``null_probability`` array.

The compiled table is immutable and engine-agnostic: the batched engine uses
the arrays directly, while the sequential fallback inside a batch uses the
same arrays one pair at a time, so both paths sample from exactly the same
distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

import numpy as np

from repro.exceptions import ProtocolError
from repro.protocols.base import FiniteStateProtocol, RandomizedTransition

__all__ = ["CompiledTransitionTable", "compile_transition_table"]

#: Probability below which an outcome is treated as absent (guards against
#: float dust when folding duplicate outcomes).
_PROBABILITY_EPSILON = 1e-15


@dataclass(frozen=True)
class CompiledTransitionTable:
    """A finite-state protocol flattened into index space.

    Attributes
    ----------
    states:
        The state set, in index order (``states[i]`` has index ``i``).
    index:
        Inverse mapping ``state -> index``.
    outcome_receiver / outcome_sender:
        ``(S, S, K)`` integer arrays; entry ``[i, j, k]`` is the receiver /
        sender output state index of the ``k``-th explicit outcome of the
        ordered input pair ``(i, j)``.  Entries beyond ``outcome_count[i, j]``
        are padding (zero).
    outcome_probability:
        ``(S, S, K)`` float array of the corresponding probabilities.
    outcome_count:
        ``(S, S)`` integer array: number of explicit (state-changing)
        outcomes of each ordered pair.
    null_probability:
        ``(S, S)`` float array: residual probability that the pair is left
        unchanged (unspecified mass plus explicit identity outcomes).
    is_null:
        ``(S, S)`` boolean array: ``True`` where the pair is a pure null
        transition (``outcome_count == 0``).
    """

    states: tuple[Hashable, ...]
    index: Mapping[Hashable, int]
    outcome_receiver: np.ndarray
    outcome_sender: np.ndarray
    outcome_probability: np.ndarray
    outcome_count: np.ndarray
    null_probability: np.ndarray
    is_null: np.ndarray = field(repr=False)

    @property
    def num_states(self) -> int:
        """Number of states ``S``."""
        return len(self.states)

    @property
    def max_outcomes(self) -> int:
        """Maximum number of explicit outcomes over all ordered pairs ``K``."""
        return int(self.outcome_probability.shape[2])

    def outcomes(self, receiver: Hashable, sender: Hashable) -> tuple[RandomizedTransition, ...]:
        """Reconstruct the explicit outcomes of one ordered state pair.

        Convenience for tests and debugging; engines use the arrays directly.
        """
        i = self.index[receiver]
        j = self.index[sender]
        count = int(self.outcome_count[i, j])
        return tuple(
            RandomizedTransition(
                receiver_out=self.states[int(self.outcome_receiver[i, j, k])],
                sender_out=self.states[int(self.outcome_sender[i, j, k])],
                probability=float(self.outcome_probability[i, j, k]),
            )
            for k in range(count)
        )

    def reactive_pair_count(self) -> int:
        """Number of ordered pairs with at least one state-changing outcome."""
        return int(np.count_nonzero(~self.is_null))


def compile_transition_table(protocol: FiniteStateProtocol) -> CompiledTransitionTable:
    """Flatten ``protocol`` into a :class:`CompiledTransitionTable`.

    Identity outcomes (``(a, b) -> (a, b)``) and unspecified mass are folded
    into the null probability of the pair; duplicate outcomes are merged by
    summing their probabilities.

    Raises
    ------
    ProtocolError
        If the protocol reports duplicate states, a transition produces a
        state outside the declared state set, or the probabilities of some
        ordered pair sum to more than 1.
    """
    states = tuple(protocol.states())
    if not states:
        raise ProtocolError(f"{protocol.describe()} declares an empty state set")
    if len(set(states)) != len(states):
        raise ProtocolError(f"{protocol.describe()} declares duplicate states")
    index = {state: position for position, state in enumerate(states)}
    size = len(states)

    # First pass: gather merged explicit outcomes per ordered pair.
    per_pair: dict[tuple[int, int], dict[tuple[int, int], float]] = {}
    max_outcomes = 0
    for i, a in enumerate(states):
        for j, b in enumerate(states):
            merged: dict[tuple[int, int], float] = {}
            total = 0.0
            for outcome in protocol.transitions(a, b):
                total += outcome.probability
                if (outcome.receiver_out, outcome.sender_out) == (a, b):
                    continue  # identity outcome: folded into the null mass
                try:
                    r_out = index[outcome.receiver_out]
                    s_out = index[outcome.sender_out]
                except KeyError as error:
                    raise ProtocolError(
                        f"transition ({a!r}, {b!r}) produces state {error.args[0]!r} "
                        f"outside the declared state set"
                    ) from None
                merged[(r_out, s_out)] = merged.get((r_out, s_out), 0.0) + outcome.probability
            if total > 1.0 + 1e-9:
                raise ProtocolError(
                    f"transition probabilities for ({a!r}, {b!r}) sum to {total} > 1"
                )
            cleaned = {
                key: probability
                for key, probability in merged.items()
                if probability > _PROBABILITY_EPSILON
            }
            if cleaned:
                per_pair[(i, j)] = cleaned
                max_outcomes = max(max_outcomes, len(cleaned))

    width = max(max_outcomes, 1)
    outcome_receiver = np.zeros((size, size, width), dtype=np.int64)
    outcome_sender = np.zeros((size, size, width), dtype=np.int64)
    outcome_probability = np.zeros((size, size, width), dtype=np.float64)
    outcome_count = np.zeros((size, size), dtype=np.int64)
    null_probability = np.ones((size, size), dtype=np.float64)

    for (i, j), merged in per_pair.items():
        for position, ((r_out, s_out), probability) in enumerate(sorted(merged.items())):
            outcome_receiver[i, j, position] = r_out
            outcome_sender[i, j, position] = s_out
            outcome_probability[i, j, position] = probability
        outcome_count[i, j] = len(merged)
        null_probability[i, j] = max(0.0, 1.0 - sum(merged.values()))

    for array in (outcome_receiver, outcome_sender, outcome_probability,
                  outcome_count, null_probability):
        array.setflags(write=False)
    is_null = outcome_count == 0
    is_null.setflags(write=False)

    return CompiledTransitionTable(
        states=states,
        index=index,
        outcome_receiver=outcome_receiver,
        outcome_sender=outcome_sender,
        outcome_probability=outcome_probability,
        outcome_count=outcome_count,
        null_probability=null_probability,
        is_null=is_null,
    )
