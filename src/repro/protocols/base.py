"""Abstract interfaces for population protocols.

Two complementary views of a protocol are supported, matching the two
simulation engines in :mod:`repro.engine`:

``AgentProtocol``
    The *agent-level* view used by the paper's pseudocode: each agent carries
    an arbitrary (possibly unbounded) state object, and the transition is an
    algorithm run by the pair ``(receiver, sender)`` with access to random
    bits.  This is the natural representation for the paper's main protocol,
    whose agents store several integer fields.

``FiniteStateProtocol``
    The *configuration-level* view of classic constant-state protocols: a
    finite state set and a transition relation over ordered pairs.  Protocols
    in this form can be simulated by counts
    (:class:`repro.engine.count_simulator.CountSimulator`), which is far
    faster for large populations, and they can be analysed symbolically by
    the termination machinery (:mod:`repro.termination.producibility`).

A :class:`FiniteStateProtocol` can always be lifted to an
:class:`AgentProtocol` via :meth:`FiniteStateProtocol.as_agent_protocol`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Generic, Hashable, Iterable, Mapping, Sequence, TypeVar

from repro.exceptions import ProtocolError
from repro.rng import RandomSource

StateT = TypeVar("StateT")
HashableState = Hashable

#: Convenience alias: the output an agent exposes (``None`` when undefined).
ProtocolOutput = Any


@dataclass(frozen=True)
class RandomizedTransition:
    """One probabilistic outcome of an ordered interaction ``(a, b)``.

    A finite-state randomized protocol maps each ordered pair of input states
    to a distribution over output pairs; each entry of that distribution is a
    :class:`RandomizedTransition` carrying its probability (the paper's *rate
    constant* ``rho`` in Section 4).
    """

    receiver_out: Hashable
    sender_out: Hashable
    probability: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ProtocolError(
                f"transition probability must be in (0, 1], got {self.probability}"
            )


class AgentProtocol(ABC, Generic[StateT]):
    """Agent-level population protocol.

    Subclasses define how a single agent is initialised and how an ordered
    pair of agents updates on interaction.  The paper's notion of a *uniform*
    protocol corresponds to :meth:`initial_state` and :meth:`transition`
    never consulting the population size; nonuniform baselines (such as the
    Figure-1 counter protocol) receive ``n`` through their constructor and
    report ``is_uniform = False``.
    """

    #: Whether the transition algorithm is independent of the population size.
    is_uniform: bool = True

    @abstractmethod
    def initial_state(self, agent_id: int) -> StateT:
        """Return the initial state of agent ``agent_id``.

        A *leaderless* protocol (all agents start identical) must ignore
        ``agent_id``; protocols with an initial leader typically special-case
        ``agent_id == 0``.
        """

    @abstractmethod
    def transition(
        self, receiver: StateT, sender: StateT, rng: RandomSource
    ) -> tuple[StateT, StateT]:
        """Return the post-interaction states ``(receiver', sender')``.

        Implementations must not mutate the input states; the engines rely on
        value semantics to support snapshots, traces and rollback in tests.
        """

    def output(self, state: StateT) -> ProtocolOutput:
        """Return the output an agent in ``state`` exposes (default: the state)."""
        return state

    def state_signature(self, state: StateT) -> Hashable:
        """Return a hashable signature identifying ``state``.

        Used for counting distinct states (the paper's space complexity is
        measured in the number of distinct agent states).  The default works
        for hashable states; protocols with unhashable state objects override
        this.
        """
        return state  # type: ignore[return-value]

    def describe(self) -> str:
        """One-line human-readable description (used by the CLI and reports)."""
        return type(self).__name__


class FiniteStateProtocol(ABC):
    """Configuration-level protocol over a finite (hashable) state set.

    The transition structure is exposed as a mapping from ordered state pairs
    to a list of :class:`RandomizedTransition`.  Deterministic protocols
    simply return a single outcome with probability 1.  Pairs absent from the
    mapping are *null transitions* (both agents keep their states).
    """

    is_uniform: bool = True

    @abstractmethod
    def states(self) -> Sequence[Hashable]:
        """Return the full state set (finite)."""

    @abstractmethod
    def initial_state(self, agent_id: int) -> Hashable:
        """Initial state of agent ``agent_id``."""

    @abstractmethod
    def transitions(
        self, receiver: Hashable, sender: Hashable
    ) -> Sequence[RandomizedTransition]:
        """Return the distribution over outcomes for the ordered pair."""

    def output(self, state: Hashable) -> ProtocolOutput:
        """Output exposed by an agent in ``state`` (default: the state itself)."""
        return state

    # -- derived helpers -----------------------------------------------------

    def transition_table(self) -> Mapping[tuple[Hashable, Hashable], Sequence[RandomizedTransition]]:
        """Materialise the full transition table over ``states() x states()``.

        Null transitions are omitted.  The termination analysis
        (:mod:`repro.termination.producibility`) consumes this table.
        """
        table: dict[tuple[Hashable, Hashable], Sequence[RandomizedTransition]] = {}
        for a in self.states():
            for b in self.states():
                outcomes = [
                    outcome
                    for outcome in self.transitions(a, b)
                    if (outcome.receiver_out, outcome.sender_out) != (a, b)
                ]
                if outcomes:
                    table[(a, b)] = outcomes
        return table

    def validate(self) -> None:
        """Check that all transition outputs stay inside the declared state set.

        Raises
        ------
        ProtocolError
            If a transition produces a state outside :meth:`states`, or the
            probabilities for some ordered pair sum to more than 1.
        """
        state_set = set(self.states())
        for a in state_set:
            for b in state_set:
                outcomes = self.transitions(a, b)
                total = 0.0
                for outcome in outcomes:
                    total += outcome.probability
                    if outcome.receiver_out not in state_set:
                        raise ProtocolError(
                            f"transition ({a!r}, {b!r}) produces unknown state "
                            f"{outcome.receiver_out!r}"
                        )
                    if outcome.sender_out not in state_set:
                        raise ProtocolError(
                            f"transition ({a!r}, {b!r}) produces unknown state "
                            f"{outcome.sender_out!r}"
                        )
                if total > 1.0 + 1e-9:
                    raise ProtocolError(
                        f"transition probabilities for ({a!r}, {b!r}) sum to {total} > 1"
                    )

    def as_agent_protocol(self) -> "FiniteStateAgentAdapter":
        """Lift this protocol to the agent-level interface."""
        return FiniteStateAgentAdapter(self)

    def compiled(self):
        """Compile this protocol into dense integer transition tables.

        Returns a :class:`repro.protocols.compiled.CompiledTransitionTable`,
        the representation consumed by the batched configuration-level engine
        (:class:`repro.engine.batched_simulator.BatchedCountSimulator`).
        """
        from repro.protocols.compiled import compile_transition_table

        return compile_transition_table(self)

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{type(self).__name__} ({len(list(self.states()))} states)"


class FiniteStateAgentAdapter(AgentProtocol[Hashable]):
    """Adapter running a :class:`FiniteStateProtocol` under the agent engine.

    Sampling among the randomized outcomes uses the shared
    :class:`repro.rng.RandomSource` so adapted protocols remain reproducible.
    """

    def __init__(self, protocol: FiniteStateProtocol) -> None:
        self._protocol = protocol
        self.is_uniform = protocol.is_uniform

    @property
    def finite_protocol(self) -> FiniteStateProtocol:
        """The wrapped configuration-level protocol."""
        return self._protocol

    def initial_state(self, agent_id: int) -> Hashable:
        return self._protocol.initial_state(agent_id)

    def transition(
        self, receiver: Hashable, sender: Hashable, rng: RandomSource
    ) -> tuple[Hashable, Hashable]:
        outcomes = self._protocol.transitions(receiver, sender)
        if not outcomes:
            return receiver, sender
        draw = rng.random()
        cumulative = 0.0
        for outcome in outcomes:
            cumulative += outcome.probability
            if draw < cumulative:
                return outcome.receiver_out, outcome.sender_out
        # Residual probability mass corresponds to the null transition.
        return receiver, sender

    def output(self, state: Hashable) -> ProtocolOutput:
        return self._protocol.output(state)

    def describe(self) -> str:
        return f"agent-adapter({self._protocol.describe()})"


class FunctionalFiniteStateProtocol(FiniteStateProtocol):
    """A finite-state protocol defined from plain data.

    Convenient for tests, examples and the termination experiments, where
    small transition tables are easier to state literally than as a class.

    Parameters
    ----------
    state_set:
        The finite set of states.
    transition_map:
        Mapping ``(receiver, sender) -> [(receiver', sender', probability), ...]``.
        Pairs not present are null transitions.
    initial:
        Either a single state (leaderless: everyone starts there) or a callable
        ``agent_id -> state``.
    uniform:
        Whether the protocol should report itself as uniform.
    output_map:
        Optional mapping from state to output value.
    """

    def __init__(
        self,
        state_set: Iterable[Hashable],
        transition_map: Mapping[tuple[Hashable, Hashable], Sequence[tuple[Hashable, Hashable, float]]],
        initial: Hashable | Callable[[int], Hashable],
        uniform: bool = True,
        output_map: Mapping[Hashable, ProtocolOutput] | None = None,
    ) -> None:
        self._states = tuple(state_set)
        self._transition_map = {
            pair: tuple(
                RandomizedTransition(receiver_out=r, sender_out=s, probability=p)
                for (r, s, p) in outcomes
            )
            for pair, outcomes in transition_map.items()
        }
        self._initial = initial
        self.is_uniform = uniform
        self._output_map = dict(output_map) if output_map else None
        self.validate()

    def states(self) -> Sequence[Hashable]:
        return self._states

    def initial_state(self, agent_id: int) -> Hashable:
        if callable(self._initial):
            return self._initial(agent_id)
        return self._initial

    def transitions(
        self, receiver: Hashable, sender: Hashable
    ) -> Sequence[RandomizedTransition]:
        return self._transition_map.get((receiver, sender), ())

    def output(self, state: Hashable) -> ProtocolOutput:
        if self._output_map is None:
            return state
        return self._output_map.get(state, state)
