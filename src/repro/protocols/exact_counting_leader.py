"""Leader-driven exact population counting (Michail [32] style).

With a pre-elected leader, a uniform protocol can count the exact population
size and *terminate*: the leader absorbs one "token" from every other agent
(marking it counted), while keeping an interaction counter that serves as a
probabilistic timer; when the timer indicates that with high probability every
agent has been counted, the leader terminates and broadcasts the count.

This protocol plays two roles in the reproduction:

* It is the example the paper cites (Section 1.1 and Related work) of a
  *terminating* uniform protocol made possible by an initial leader — the
  initial configuration is not dense, so Theorem 4.1 does not apply.
* It is the slow (``O(n log n)``) exact-counting baseline against which the
  paper's ``O(log^2 n)`` approximate protocol is positioned.

The timer threshold follows the coupon-collector structure of the original
protocol: after the leader has had ``c * k * (1 + ln k)`` interactions, where
``k`` is the number of tokens collected so far, every agent has interacted
with the leader w.h.p.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable

from repro.exceptions import ProtocolError
from repro.protocols.base import AgentProtocol
from repro.rng import RandomSource


@dataclass(frozen=True, slots=True)
class LeaderCountingState:
    """State of one agent in the leader-driven exact-counting protocol.

    Attributes
    ----------
    is_leader:
        Whether this agent is the (unique) initial leader.
    counted:
        For non-leaders: whether the leader has already absorbed this agent's
        token.
    tally:
        For the leader: number of agents counted so far (including itself).
    timer:
        For the leader: number of interactions since the tally last increased.
    terminated:
        Whether the termination signal has been produced/observed.
    announced_size:
        The final population size broadcast by the leader (``None`` until
        termination).
    """

    is_leader: bool = False
    counted: bool = False
    tally: int = 1
    timer: int = 0
    terminated: bool = False
    announced_size: int | None = None


class LeaderExactCounting(AgentProtocol[LeaderCountingState]):
    """Terminating exact counting with an initial leader.

    Parameters
    ----------
    patience:
        Multiplicative constant of the leader's coupon-collector timer.  The
        leader terminates once it has gone ``patience * tally * (1 + ln tally)``
        consecutive interactions without meeting an uncounted agent.  Larger
        values trade time for a lower probability of undercounting.
    """

    is_uniform = True

    def __init__(self, patience: float = 4.0) -> None:
        if patience <= 0:
            raise ProtocolError(f"patience must be positive, got {patience}")
        self.patience = patience

    def initial_state(self, agent_id: int) -> LeaderCountingState:
        return LeaderCountingState(is_leader=(agent_id == 0))

    def _timer_threshold(self, tally: int) -> float:
        import math

        return self.patience * tally * (1.0 + math.log(max(tally, 2)))

    def transition(
        self,
        receiver: LeaderCountingState,
        sender: LeaderCountingState,
        rng: RandomSource,
    ) -> tuple[LeaderCountingState, LeaderCountingState]:
        new_receiver, new_sender = receiver, sender

        # Spread the termination signal and the announced size by epidemic.
        if receiver.terminated or sender.terminated:
            announced = receiver.announced_size or sender.announced_size
            new_receiver = replace(
                new_receiver, terminated=True, announced_size=announced
            )
            new_sender = replace(new_sender, terminated=True, announced_size=announced)
            return new_receiver, new_sender

        leader_side = None
        other_side = None
        if receiver.is_leader and not sender.is_leader:
            leader_side, other_side = "receiver", "sender"
        elif sender.is_leader and not receiver.is_leader:
            leader_side, other_side = "sender", "receiver"

        if leader_side is None:
            # No leader involved: nothing to do (non-leaders are passive).
            return new_receiver, new_sender

        leader = new_receiver if leader_side == "receiver" else new_sender
        other = new_receiver if other_side == "receiver" else new_sender

        if not other.counted:
            leader = replace(leader, tally=leader.tally + 1, timer=0)
            other = replace(other, counted=True)
        else:
            timer = leader.timer + 1
            leader = replace(leader, timer=timer)
            if timer >= self._timer_threshold(leader.tally):
                leader = replace(
                    leader, terminated=True, announced_size=leader.tally
                )

        if leader_side == "receiver":
            return leader, other
        return other, leader

    def output(self, state: LeaderCountingState) -> int | None:
        """The announced exact population size (``None`` until broadcast)."""
        return state.announced_size

    def state_signature(self, state: LeaderCountingState) -> Hashable:
        return (
            state.is_leader,
            state.counted,
            state.tally,
            state.timer,
            state.terminated,
            state.announced_size,
        )

    def describe(self) -> str:
        return f"LeaderExactCounting(patience={self.patience})"


def exact_counting_terminated(simulation) -> bool:
    """Predicate: every agent has observed the termination signal."""
    return all(state.terminated for state in simulation.states)
