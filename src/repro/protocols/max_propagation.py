"""Max-propagation by epidemic.

Transitions of the form ``i, j -> j, j`` for ``i <= j`` spread the maximum of
the agents' initial values to the entire population in ``O(log n)`` time.
The paper's protocol uses this twice: to agree on ``logSize2`` (the maximum of
the initial geometric variables) and, within each epoch, to agree on the
maximum ``gr``.

:class:`MaxPropagationProtocol` is the agent-level form over arbitrary
comparable values; it also serves as the reference implementation the core
protocol's ``Propagate-Max-*`` subroutines are tested against.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.protocols.base import AgentProtocol
from repro.rng import RandomSource


class MaxPropagationProtocol(AgentProtocol[int]):
    """Propagate the maximum of the agents' initial values.

    Parameters
    ----------
    initial_value:
        Callable mapping an agent id to its initial (comparable) value.  For
        the paper's usage this is an independent geometric random sample per
        agent; tests use deterministic assignments.
    """

    is_uniform = True

    def __init__(self, initial_value: Callable[[int], int]) -> None:
        self._initial_value = initial_value

    def initial_state(self, agent_id: int) -> int:
        return self._initial_value(agent_id)

    def transition(
        self, receiver: int, sender: int, rng: RandomSource
    ) -> tuple[int, int]:
        maximum = receiver if receiver >= sender else sender
        return maximum, maximum

    def output(self, state: int) -> int:
        return state

    def state_signature(self, state: int) -> Hashable:
        return state

    def describe(self) -> str:
        return "MaxPropagation"


def geometric_max_initializer(seed: int | None, p: float = 0.5) -> Callable[[int], int]:
    """Build an initializer assigning each agent an i.i.d. ``p``-geometric value.

    The values are drawn lazily but deterministically per agent id (the draw
    for agent ``i`` does not depend on how many other agents exist), so the
    resulting protocol remains uniform.
    """
    from repro.rng import RandomSource

    def initializer(agent_id: int) -> int:
        # Derive a per-agent stream so the value of agent i is independent of n.
        agent_source = RandomSource(seed=None if seed is None else seed * 1_000_003 + agent_id)
        return agent_source.geometric(p)

    return initializer
