"""Leader-election protocols used as baselines and composition targets.

Two protocols are provided:

:class:`PairwiseEliminationLeaderElection`
    The classic uniform two-state protocol ``L, L -> L, F``: all agents start
    as leader candidates and a candidate is demoted whenever two candidates
    meet.  It stabilises to exactly one leader with probability 1 but needs
    ``Theta(n)`` parallel time — the slow baseline that motivates the
    polylog-time literature discussed in the paper's introduction.

:class:`NonuniformCounterLeaderElection`
    The Figure-1 style *nonuniform* protocol: candidates increment a counter
    on every interaction and a candidate that reaches a hard-coded threshold
    (``counter_threshold``, meant to be ``~c * log2 n``) declares the election
    finished (sets a ``terminated`` flag which then spreads by epidemic).
    This is the representative example the paper gives of protocols that need
    the value ``log n`` "hardcoded into the reactions" — the protocols our
    size-estimation protocol is meant to make uniform, and the protocols whose
    uniform variants Theorem 4.1 proves cannot be terminating.  It is also
    the downstream protocol used by the composition examples and by the
    termination experiments (the same transition algorithm run on a larger
    population terminates prematurely, illustrating the proof of
    Theorem 4.1).

Both protocols elect a *unique* leader only eventually; the counter variant is
tuned for the demonstration above rather than for optimal leader-election
guarantees (it mirrors the simplified fragment shown in the paper's Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable, Sequence

from repro.exceptions import ProtocolError
from repro.protocols.base import (
    AgentProtocol,
    FiniteStateProtocol,
    RandomizedTransition,
)
from repro.rng import RandomSource


class PairwiseEliminationLeaderElection(AgentProtocol[str]):
    """Uniform two-state leader election ``L, L -> L, F``.

    Every agent starts in state ``"L"``; when two leaders meet the sender is
    demoted to follower ``"F"``.  Exactly one leader remains after
    ``Theta(n)`` parallel time.
    """

    is_uniform = True
    LEADER = "L"
    FOLLOWER = "F"

    def initial_state(self, agent_id: int) -> str:
        return self.LEADER

    def transition(self, receiver: str, sender: str, rng: RandomSource) -> tuple[str, str]:
        if receiver == self.LEADER and sender == self.LEADER:
            return self.LEADER, self.FOLLOWER
        return receiver, sender

    def output(self, state: str) -> bool:
        """``True`` iff the agent currently believes it is the leader."""
        return state == self.LEADER

    def describe(self) -> str:
        return "PairwiseEliminationLeaderElection"


class FiniteStatePairwiseElimination(FiniteStateProtocol):
    """Configuration-level view of pairwise-elimination leader election.

    The same ``L, L -> L, F`` dynamics as
    :class:`PairwiseEliminationLeaderElection`, expressed as a two-state
    :class:`FiniteStateProtocol` so the count-based and batched engines can
    run it at populations far beyond the agent engine's reach.
    """

    is_uniform = True
    LEADER = "L"
    FOLLOWER = "F"

    def states(self) -> Sequence[Hashable]:
        return (self.LEADER, self.FOLLOWER)

    def initial_state(self, agent_id: int) -> Hashable:
        return self.LEADER

    def transitions(
        self, receiver: Hashable, sender: Hashable
    ) -> Sequence[RandomizedTransition]:
        if receiver == self.LEADER and sender == self.LEADER:
            return (
                RandomizedTransition(receiver_out=self.LEADER, sender_out=self.FOLLOWER),
            )
        return ()

    def output(self, state: Hashable) -> bool:
        """``True`` iff the agent currently believes it is the leader."""
        return state == self.LEADER

    def describe(self) -> str:
        return "FiniteStatePairwiseElimination"


def unique_leader_predicate(simulator) -> bool:
    """Predicate for ``run_until``: exactly one leader candidate remains."""
    return simulator.count(FiniteStatePairwiseElimination.LEADER) == 1


@dataclass(frozen=True, slots=True)
class CounterLeaderState:
    """State of the Figure-1 counter protocol.

    Attributes
    ----------
    candidate:
        Whether the agent is still a leader candidate.
    counter:
        Number of interactions this candidate has counted so far.
    terminated:
        Whether the agent has observed (or produced) the termination signal.
    """

    candidate: bool = True
    counter: int = 0
    terminated: bool = False


class NonuniformCounterLeaderElection(AgentProtocol[CounterLeaderState]):
    """Figure-1 style leader election with a hard-coded counter threshold.

    Parameters
    ----------
    counter_threshold:
        The hard-coded value at which a candidate "terminates" the election.
        For the protocol to behave as intended this must be roughly
        ``c * log2 n`` for the population it is deployed into — which is
        exactly the nonuniform knowledge of ``n`` the paper's Figure 1
        criticises.  Deploying the same threshold into a much larger
        population produces the termination signal far too early, which is
        the phenomenon Theorem 4.1 formalises.
    eliminate_on_meeting:
        When ``True`` (default), two candidates meeting also demote the
        sender, so the protocol eventually has a single candidate; when
        ``False`` the protocol only counts interactions (the bare fragment of
        Figure 1).
    """

    is_uniform = False

    def __init__(self, counter_threshold: int, eliminate_on_meeting: bool = True) -> None:
        if counter_threshold < 1:
            raise ProtocolError(
                f"counter threshold must be at least 1, got {counter_threshold}"
            )
        self.counter_threshold = counter_threshold
        self.eliminate_on_meeting = eliminate_on_meeting

    def initial_state(self, agent_id: int) -> CounterLeaderState:
        return CounterLeaderState()

    def transition(
        self,
        receiver: CounterLeaderState,
        sender: CounterLeaderState,
        rng: RandomSource,
    ) -> tuple[CounterLeaderState, CounterLeaderState]:
        new_receiver, new_sender = receiver, sender

        # Termination signal spreads by epidemic.
        if receiver.terminated or sender.terminated:
            new_receiver = replace(new_receiver, terminated=True)
            new_sender = replace(new_sender, terminated=True)

        # Candidate elimination (optional).
        if (
            self.eliminate_on_meeting
            and new_receiver.candidate
            and new_sender.candidate
        ):
            new_sender = replace(new_sender, candidate=False)

        # Candidates count their interactions; reaching the hard-coded
        # threshold produces the termination signal.
        if new_receiver.candidate and not new_receiver.terminated:
            counter = new_receiver.counter + 1
            new_receiver = replace(
                new_receiver,
                counter=counter,
                terminated=counter >= self.counter_threshold,
            )
        if new_sender.candidate and not new_sender.terminated:
            counter = new_sender.counter + 1
            new_sender = replace(
                new_sender,
                counter=counter,
                terminated=counter >= self.counter_threshold,
            )
        return new_receiver, new_sender

    def output(self, state: CounterLeaderState) -> bool:
        """``True`` iff the agent is a (still-standing) leader candidate."""
        return state.candidate

    def state_signature(self, state: CounterLeaderState) -> Hashable:
        return (state.candidate, state.counter, state.terminated)

    def describe(self) -> str:
        return (
            f"NonuniformCounterLeaderElection(threshold={self.counter_threshold}, "
            f"eliminate={self.eliminate_on_meeting})"
        )


class FiniteStateCounterTermination(FiniteStateProtocol):
    """Configuration-level view of the Figure-1 counter protocol.

    The agent-level :class:`NonuniformCounterLeaderElection` has a *finite*
    reachable state space — ``(candidate, counter <= threshold, terminated)``
    — so for a fixed threshold it can be enumerated and run on the count-based
    and batched engines, which is what lets the Theorem 4.1 termination-time
    experiments reach populations of 10^5–10^7.  Transitions delegate to the
    agent protocol's (deterministic) transition function, so the two views
    stay in lock-step by construction.
    """

    is_uniform = False

    def __init__(self, counter_threshold: int, eliminate_on_meeting: bool = True) -> None:
        self._agent = NonuniformCounterLeaderElection(
            counter_threshold=counter_threshold,
            eliminate_on_meeting=eliminate_on_meeting,
        )
        self.counter_threshold = counter_threshold
        self.eliminate_on_meeting = eliminate_on_meeting

    def states(self) -> Sequence[Hashable]:
        # A counter at the threshold always comes with the terminated flag
        # (they are set in the same interaction), so the combination
        # ``counter == threshold, terminated == False`` is unreachable and
        # excluded — keeping it would let transitions drive the counter past
        # the threshold, outside the enumerated set.
        return tuple(
            CounterLeaderState(candidate=candidate, counter=counter, terminated=terminated)
            for candidate in (True, False)
            for counter in range(self.counter_threshold + 1)
            for terminated in (False, True)
            if terminated or counter < self.counter_threshold
        )

    def initial_state(self, agent_id: int) -> Hashable:
        return CounterLeaderState()

    def transitions(
        self, receiver: Hashable, sender: Hashable
    ) -> Sequence[RandomizedTransition]:
        # The agent transition never draws randomness, so passing no random
        # source is safe; it also never drives the counter past the
        # threshold, keeping outputs inside the enumerated state set.
        receiver_out, sender_out = self._agent.transition(receiver, sender, rng=None)
        if (receiver_out, sender_out) == (receiver, sender):
            return ()
        return (RandomizedTransition(receiver_out=receiver_out, sender_out=sender_out),)

    def output(self, state: Hashable) -> bool:
        """``True`` iff the agent is a (still-standing) leader candidate."""
        return state.candidate

    def describe(self) -> str:
        return (
            f"FiniteStateCounterTermination(threshold={self.counter_threshold}, "
            f"eliminate={self.eliminate_on_meeting})"
        )


def termination_signal_predicate(simulator) -> bool:
    """Predicate for ``run_until``: some agent has set the terminated flag.

    Works with any configuration-level engine running
    :class:`FiniteStateCounterTermination`.
    """
    return any(
        state.terminated and count > 0 for state, count in simulator.configuration().items()
    )
