"""Leader-election protocols used as baselines and composition targets.

Two protocols are provided:

:class:`PairwiseEliminationLeaderElection`
    The classic uniform two-state protocol ``L, L -> L, F``: all agents start
    as leader candidates and a candidate is demoted whenever two candidates
    meet.  It stabilises to exactly one leader with probability 1 but needs
    ``Theta(n)`` parallel time — the slow baseline that motivates the
    polylog-time literature discussed in the paper's introduction.

:class:`NonuniformCounterLeaderElection`
    The Figure-1 style *nonuniform* protocol: candidates increment a counter
    on every interaction and a candidate that reaches a hard-coded threshold
    (``counter_threshold``, meant to be ``~c * log2 n``) declares the election
    finished (sets a ``terminated`` flag which then spreads by epidemic).
    This is the representative example the paper gives of protocols that need
    the value ``log n`` "hardcoded into the reactions" — the protocols our
    size-estimation protocol is meant to make uniform, and the protocols whose
    uniform variants Theorem 4.1 proves cannot be terminating.  It is also
    the downstream protocol used by the composition examples and by the
    termination experiments (the same transition algorithm run on a larger
    population terminates prematurely, illustrating the proof of
    Theorem 4.1).

Both protocols elect a *unique* leader only eventually; the counter variant is
tuned for the demonstration above rather than for optimal leader-election
guarantees (it mirrors the simplified fragment shown in the paper's Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable

from repro.exceptions import ProtocolError
from repro.protocols.base import AgentProtocol
from repro.rng import RandomSource


class PairwiseEliminationLeaderElection(AgentProtocol[str]):
    """Uniform two-state leader election ``L, L -> L, F``.

    Every agent starts in state ``"L"``; when two leaders meet the sender is
    demoted to follower ``"F"``.  Exactly one leader remains after
    ``Theta(n)`` parallel time.
    """

    is_uniform = True
    LEADER = "L"
    FOLLOWER = "F"

    def initial_state(self, agent_id: int) -> str:
        return self.LEADER

    def transition(self, receiver: str, sender: str, rng: RandomSource) -> tuple[str, str]:
        if receiver == self.LEADER and sender == self.LEADER:
            return self.LEADER, self.FOLLOWER
        return receiver, sender

    def output(self, state: str) -> bool:
        """``True`` iff the agent currently believes it is the leader."""
        return state == self.LEADER

    def describe(self) -> str:
        return "PairwiseEliminationLeaderElection"


@dataclass(frozen=True, slots=True)
class CounterLeaderState:
    """State of the Figure-1 counter protocol.

    Attributes
    ----------
    candidate:
        Whether the agent is still a leader candidate.
    counter:
        Number of interactions this candidate has counted so far.
    terminated:
        Whether the agent has observed (or produced) the termination signal.
    """

    candidate: bool = True
    counter: int = 0
    terminated: bool = False


class NonuniformCounterLeaderElection(AgentProtocol[CounterLeaderState]):
    """Figure-1 style leader election with a hard-coded counter threshold.

    Parameters
    ----------
    counter_threshold:
        The hard-coded value at which a candidate "terminates" the election.
        For the protocol to behave as intended this must be roughly
        ``c * log2 n`` for the population it is deployed into — which is
        exactly the nonuniform knowledge of ``n`` the paper's Figure 1
        criticises.  Deploying the same threshold into a much larger
        population produces the termination signal far too early, which is
        the phenomenon Theorem 4.1 formalises.
    eliminate_on_meeting:
        When ``True`` (default), two candidates meeting also demote the
        sender, so the protocol eventually has a single candidate; when
        ``False`` the protocol only counts interactions (the bare fragment of
        Figure 1).
    """

    is_uniform = False

    def __init__(self, counter_threshold: int, eliminate_on_meeting: bool = True) -> None:
        if counter_threshold < 1:
            raise ProtocolError(
                f"counter threshold must be at least 1, got {counter_threshold}"
            )
        self.counter_threshold = counter_threshold
        self.eliminate_on_meeting = eliminate_on_meeting

    def initial_state(self, agent_id: int) -> CounterLeaderState:
        return CounterLeaderState()

    def transition(
        self,
        receiver: CounterLeaderState,
        sender: CounterLeaderState,
        rng: RandomSource,
    ) -> tuple[CounterLeaderState, CounterLeaderState]:
        new_receiver, new_sender = receiver, sender

        # Termination signal spreads by epidemic.
        if receiver.terminated or sender.terminated:
            new_receiver = replace(new_receiver, terminated=True)
            new_sender = replace(new_sender, terminated=True)

        # Candidate elimination (optional).
        if (
            self.eliminate_on_meeting
            and new_receiver.candidate
            and new_sender.candidate
        ):
            new_sender = replace(new_sender, candidate=False)

        # Candidates count their interactions; reaching the hard-coded
        # threshold produces the termination signal.
        if new_receiver.candidate and not new_receiver.terminated:
            counter = new_receiver.counter + 1
            new_receiver = replace(
                new_receiver,
                counter=counter,
                terminated=counter >= self.counter_threshold,
            )
        if new_sender.candidate and not new_sender.terminated:
            counter = new_sender.counter + 1
            new_sender = replace(
                new_sender,
                counter=counter,
                terminated=counter >= self.counter_threshold,
            )
        return new_receiver, new_sender

    def output(self, state: CounterLeaderState) -> bool:
        """``True`` iff the agent is a (still-standing) leader candidate."""
        return state.candidate

    def state_signature(self, state: CounterLeaderState) -> Hashable:
        return (state.candidate, state.counter, state.terminated)

    def describe(self) -> str:
        return (
            f"NonuniformCounterLeaderElection(threshold={self.counter_threshold}, "
            f"eliminate={self.eliminate_on_meeting})"
        )
