"""One-way epidemic.

The epidemic ``x, y -> x, x`` (an infected agent infects the other) is the
work-horse of fast population protocols: the paper uses it to propagate the
maximum ``logSize2`` and the per-epoch maximum geometric variables, and its
completion-time bounds (Lemma A.1, Corollaries 3.4-3.5) drive the choice of
the phase-clock threshold ``95 * logSize2``.

Two equivalent formulations are provided:

* :class:`EpidemicProtocol` — a two-state :class:`FiniteStateProtocol`
  (states ``"I"`` infected / ``"S"`` susceptible), suitable for the
  count-based engine and for very large populations; and
* :data:`EpidemicState` — the states themselves, exported for tests.

The companion module :mod:`repro.analysis.epidemic_theory` provides the
closed-form expectation ``(n-1)/n * H_{n-1}`` and the tail bounds these
simulations are validated against.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.exceptions import ProtocolError
from repro.protocols.base import FiniteStateProtocol, RandomizedTransition


class EpidemicState:
    """State labels of the two-state epidemic."""

    INFECTED: str = "I"
    SUSCEPTIBLE: str = "S"


class EpidemicProtocol(FiniteStateProtocol):
    """One-way epidemic ``i, s -> i, i`` started from ``initial_infected`` agents.

    Parameters
    ----------
    initial_infected:
        Number of agents that start infected; agents ``0 .. initial_infected-1``
        are the sources.  Defaults to 1 (the classic single-source epidemic of
        Lemma A.1).
    bidirectional:
        When ``True``, infection spreads regardless of which participant is
        the sender (transitions ``(i, s) -> (i, i)`` and ``(s, i) -> (i, i)``),
        matching the paper's usage where both participants observe each other.
        When ``False``, only the sender infects the receiver (the strict
        "one-way" epidemic), which is slower by a factor of two.
    """

    is_uniform = True

    def __init__(self, initial_infected: int = 1, bidirectional: bool = True) -> None:
        if initial_infected < 1:
            raise ProtocolError(
                f"at least one agent must start infected, got {initial_infected}"
            )
        self.initial_infected = initial_infected
        self.bidirectional = bidirectional

    def states(self) -> Sequence[Hashable]:
        return (EpidemicState.INFECTED, EpidemicState.SUSCEPTIBLE)

    def initial_state(self, agent_id: int) -> Hashable:
        if agent_id < self.initial_infected:
            return EpidemicState.INFECTED
        return EpidemicState.SUSCEPTIBLE

    def transitions(
        self, receiver: Hashable, sender: Hashable
    ) -> Sequence[RandomizedTransition]:
        infected, susceptible = EpidemicState.INFECTED, EpidemicState.SUSCEPTIBLE
        if receiver == susceptible and sender == infected:
            return (
                RandomizedTransition(receiver_out=infected, sender_out=infected),
            )
        if self.bidirectional and receiver == infected and sender == susceptible:
            return (
                RandomizedTransition(receiver_out=infected, sender_out=infected),
            )
        return ()

    def output(self, state: Hashable) -> bool:
        """``True`` when the agent has been infected."""
        return state == EpidemicState.INFECTED

    def describe(self) -> str:
        direction = "bidirectional" if self.bidirectional else "one-way"
        return f"Epidemic({direction}, sources={self.initial_infected})"


def epidemic_completion_predicate(simulator) -> bool:
    """Predicate for :meth:`CountSimulator.run_until`: everyone is infected."""
    return simulator.count(EpidemicState.SUSCEPTIBLE) == 0
