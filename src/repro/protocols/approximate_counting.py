"""Approximate size estimation of Alistarh et al. [2] (the paper's first stage).

Each agent generates one ``1/2``-geometric random variable and the population
propagates the maximum ``M = max_i G_i`` by epidemic.  Since
``E[M] ~ log2 n`` and ``log2 n - log2 ln n <= M <= 2 log2 n`` w.h.p.
(Lemma D.7 / Corollary A.2 of the paper), the resulting value ``k`` estimates
``log2 n`` within a *constant multiplicative factor*, i.e. it estimates ``n``
within a polynomial factor.

The paper's contribution improves this to a constant *additive* error on
``log2 n`` by averaging ``K = Theta(log n)`` such maxima; this module is both
the baseline it is compared against (benchmark ``T-BASE``) and the exact
mechanism used for ``logSize2`` inside the main protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable

from repro.protocols.base import AgentProtocol
from repro.rng import RandomSource


@dataclass(frozen=True, slots=True)
class ApproximateCountingState:
    """State of one agent of the Alistarh et al. protocol.

    Attributes
    ----------
    value:
        The agent's current estimate: initially ``None`` (the geometric
        variable is drawn lazily at the agent's first interaction, which keeps
        the initial configuration a single identical state), afterwards the
        maximum geometric value seen so far.
    """

    value: int | None = None


class AlistarhApproximateCounting(AgentProtocol[ApproximateCountingState]):
    """Uniform converging protocol computing ``max`` of per-agent geometric draws.

    The output of an agent is its current maximum (``None`` until its first
    interaction).  The protocol converges in ``O(log n)`` time w.h.p.; it is
    converging but, by Theorem 4.1, cannot be made terminating from its dense
    (all-identical) initial configuration.

    Parameters
    ----------
    success_probability:
        Parameter ``p`` of the geometric draws; the paper uses fair coins
        (``p = 1/2``).
    """

    is_uniform = True

    def __init__(self, success_probability: float = 0.5) -> None:
        if not 0.0 < success_probability < 1.0:
            raise ValueError(
                f"success probability must be in (0, 1), got {success_probability}"
            )
        self.success_probability = success_probability

    def initial_state(self, agent_id: int) -> ApproximateCountingState:
        return ApproximateCountingState()

    def _ensure_value(
        self, state: ApproximateCountingState, rng: RandomSource
    ) -> ApproximateCountingState:
        if state.value is None:
            return replace(state, value=rng.geometric(self.success_probability))
        return state

    def transition(
        self,
        receiver: ApproximateCountingState,
        sender: ApproximateCountingState,
        rng: RandomSource,
    ) -> tuple[ApproximateCountingState, ApproximateCountingState]:
        receiver = self._ensure_value(receiver, rng)
        sender = self._ensure_value(sender, rng)
        maximum = max(receiver.value, sender.value)  # type: ignore[arg-type]
        return replace(receiver, value=maximum), replace(sender, value=maximum)

    def output(self, state: ApproximateCountingState) -> int | None:
        """The agent's current estimate of ``log2 n`` (``None`` before first interaction)."""
        return state.value

    def state_signature(self, state: ApproximateCountingState) -> Hashable:
        return state.value

    def describe(self) -> str:
        return f"AlistarhApproximateCounting(p={self.success_probability})"


def approximate_counting_converged(simulation) -> bool:
    """Predicate: every agent holds the same (defined) estimate."""
    values = {simulation.protocol.output(state) for state in simulation.states}
    return len(values) == 1 and None not in values
