"""Library of population protocols used as substrates and baselines.

This package contains:

* the abstract interfaces every protocol implements
  (:mod:`repro.protocols.base`),
* classic building blocks the paper relies on (one-way epidemic,
  max-propagation by epidemic),
* baseline protocols from the related-work the paper positions itself
  against: the nonuniform counter protocol of Figure 1, pairwise-elimination
  leader election, 3-state approximate majority, the approximate counting
  protocol of Alistarh et al. [2], Michail's leader-driven exact counting
  [32], and
* the slow probability-1 exact upper-bound protocol of Section 3.3
  (:mod:`repro.protocols.exact_backup`).
"""

from repro.protocols.base import (
    AgentProtocol,
    FiniteStateProtocol,
    ProtocolOutput,
    RandomizedTransition,
)
from repro.protocols.compiled import CompiledTransitionTable, compile_transition_table
from repro.protocols.epidemic import EpidemicProtocol, EpidemicState
from repro.protocols.max_propagation import MaxPropagationProtocol
from repro.protocols.leader_election import (
    FiniteStateCounterTermination,
    FiniteStatePairwiseElimination,
    NonuniformCounterLeaderElection,
    PairwiseEliminationLeaderElection,
)
from repro.protocols.majority import ApproximateMajorityProtocol
from repro.protocols.approximate_counting import AlistarhApproximateCounting
from repro.protocols.exact_counting_leader import LeaderExactCounting
from repro.protocols.exact_backup import ExactUpperBoundBackup

__all__ = [
    "AgentProtocol",
    "FiniteStateProtocol",
    "ProtocolOutput",
    "RandomizedTransition",
    "CompiledTransitionTable",
    "compile_transition_table",
    "EpidemicProtocol",
    "EpidemicState",
    "MaxPropagationProtocol",
    "FiniteStateCounterTermination",
    "FiniteStatePairwiseElimination",
    "NonuniformCounterLeaderElection",
    "PairwiseEliminationLeaderElection",
    "ApproximateMajorityProtocol",
    "AlistarhApproximateCounting",
    "LeaderExactCounting",
    "ExactUpperBoundBackup",
]
