"""``repro store serve``: a stdlib HTTP daemon fronting a SqliteStore.

One server process owns the SQLite database; any number of drivers on any
number of hosts talk to it through :class:`~repro.store.http.HttpStore`.
The wire protocol is deliberately tiny — JSON bodies over six endpoints,
each a direct projection of one :class:`~repro.store.base.ResultStore`
method — so the client stays a ~hundred-line urllib wrapper and the server
inherits every consistency guarantee from the SqliteStore it fronts
(claims still serialise through ``BEGIN IMMEDIATE``; the HTTP layer adds
no coordination of its own).

Endpoints::

    GET  /health            -> {"ok": true, "store": "sqlite:..."}
    GET  /status            -> StoreStatus as JSON
    GET  /record?key=K      -> {"record": {...}} | 404
    POST /claim             {"key", "lease"?, "owner"?} -> Claim as JSON
    POST /append            {"key", "record", "wall_seconds"?} -> {"ok": true}
    POST /release           {"key", "owner"?} -> {"ok": true}
    POST /pending           {"keys": [...]} -> {"pending": [...]}

Records cross the wire in the exact :func:`record_to_dict` JSON form the
JSONL cache writes, so an HTTP round-trip is bit-identical to a local one.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.harness.cache import record_from_dict, record_to_dict
from repro.store.base import DEFAULT_LEASE_SECONDS
from repro.store.sqlite import SqliteStore

__all__ = ["StoreServer", "serve_store"]


def _status_payload(status) -> dict:
    return {
        "completed": status.completed,
        "leased": status.leased,
        "stale": status.stale,
        "leases": [
            {
                "key": entry.key,
                "owner": entry.owner,
                "expires": entry.expires,
                "stale": entry.stale,
            }
            for entry in status.leases
        ],
        "workloads": [
            {
                "workload": entry.workload,
                "trials": entry.trials,
                "interactions": entry.interactions,
                "wall_seconds": entry.wall_seconds,
            }
            for entry in status.workloads
        ],
    }


class _StoreRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the server's backing SqliteStore."""

    # The backing store hangs off the *server* object (set by StoreServer).
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    @property
    def store(self) -> SqliteStore:
        return self.server.store  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------------

    def _reply(self, payload: dict, code: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True, allow_nan=False).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            return {}
        return json.loads(self.rfile.read(length).decode("utf-8"))

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/health":
                self._reply({"ok": True, "store": self.store.describe()})
            elif parsed.path == "/status":
                self._reply(_status_payload(self.store.status()))
            elif parsed.path == "/record":
                key = parse_qs(parsed.query).get("key", [None])[0]
                if not key:
                    self._reply({"error": "missing key"}, code=400)
                    return
                record = self.store.get(key)
                if record is None:
                    self._reply({"error": "not found"}, code=404)
                else:
                    self._reply({"record": record_to_dict(record)})
            else:
                self._reply({"error": "unknown endpoint"}, code=404)
        except Exception as error:  # pragma: no cover - defensive
            self._reply({"error": str(error)}, code=500)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            body = self._read_body()
            if self.path == "/claim":
                claim = self.store.claim(
                    body["key"],
                    lease=body.get("lease"),
                    owner=body.get("owner"),
                )
                payload = {
                    "status": claim.status,
                    "owner": claim.owner,
                    "expires": claim.expires,
                }
                if claim.record is not None:
                    payload["record"] = record_to_dict(claim.record)
                self._reply(payload)
            elif self.path == "/append":
                self.store.append(
                    body["key"],
                    record_from_dict(body["record"]),
                    wall_seconds=body.get("wall_seconds"),
                )
                self._reply({"ok": True})
            elif self.path == "/release":
                self.store.release(body["key"], owner=body.get("owner"))
                self._reply({"ok": True})
            elif self.path == "/pending":
                self._reply({"pending": self.store.pending(list(body["keys"]))})
            else:
                self._reply({"error": "unknown endpoint"}, code=404)
        except (KeyError, TypeError, ValueError) as error:
            self._reply({"error": f"bad request: {error}"}, code=400)
        except Exception as error:  # pragma: no cover - defensive
            self._reply({"error": str(error)}, code=500)


class StoreServer:
    """A ``ThreadingHTTPServer`` fronting one SqliteStore.

    Usable inline from tests (``start()`` on port 0, then ``url``) or
    blocking from the CLI (``serve_forever()``).
    """

    def __init__(
        self,
        db_path,
        host: str = "127.0.0.1",
        port: int = 8512,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        verbose: bool = False,
    ) -> None:
        self.store = SqliteStore(db_path, lease_seconds=lease_seconds)
        self.httpd = ThreadingHTTPServer((host, port), _StoreRequestHandler)
        self.httpd.store = self.store  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "StoreServer":
        """Serve on a background thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-store", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass

    def stop(self) -> None:
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.httpd.server_close()
        self.store.close()

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_store(
    db_path,
    host: str = "127.0.0.1",
    port: int = 8512,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    verbose: bool = False,
) -> StoreServer:
    """Construct a :class:`StoreServer` (not yet serving)."""
    return StoreServer(
        db_path, host=host, port=port, lease_seconds=lease_seconds, verbose=verbose
    )
