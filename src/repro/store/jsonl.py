"""JSONL result store: the backwards-compatible single-driver default.

Wraps :class:`~repro.harness.cache.ResultCache` behind the
:class:`~repro.store.base.ResultStore` contract, so the claim-loop driver in
``harness/parallel.py`` runs unchanged against the same ``<dir>/<name>.jsonl``
files every existing sweep already produced.

Leases are tracked *in process only*: JSONL files have no atomic
compare-and-claim primitive, so this store is correct for any number of
worker processes under **one** driver (the driver serialises claims) but does
not coordinate multiple concurrent drivers — two drivers pointed at the same
directory would duplicate work, not corrupt it (appends themselves are
atomic; last-writer-wins on identical records).  Multi-driver sweeps should
use ``sqlite:`` or ``http:`` stores.
"""

from __future__ import annotations

from pathlib import Path

from repro.harness.cache import ResultCache
from repro.harness.results import RunRecord
from repro.obs.recorder import RECORDER as _REC
from repro.store.base import (
    CLAIM_ACQUIRED,
    CLAIM_DONE,
    CLAIM_LEASED,
    Claim,
    DEFAULT_LEASE_SECONDS,
    LeaseReport,
    ResultStore,
    StoreStatus,
    default_owner,
    workload_label,
)

__all__ = ["JsonlStore"]


class JsonlStore(ResultStore):
    """Single-driver store over a :class:`ResultCache` JSONL shard.

    Parameters
    ----------
    directory:
        Cache directory (created if missing), as for ``ResultCache``.
    name:
        Stem of the shard file (``<name>.jsonl``).
    lease_seconds:
        Nominal lease duration; in-process leases never expire (the holder
        is this very process — if it died, the leases died with it), so the
        value is informational only.
    cache:
        An existing ``ResultCache`` to wrap instead of opening one; used by
        ``run_trials(cache=...)`` so the legacy keyword keeps its exact
        behaviour.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        name: str = "sweep",
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        cache: ResultCache | None = None,
    ) -> None:
        if cache is None:
            if directory is None:
                raise ValueError("JsonlStore needs a directory or a cache")
            cache = ResultCache(directory, name=name)
        self.cache = cache
        self.lease_seconds = float(lease_seconds)
        self._leases: dict[str, str] = {}

    def describe(self) -> str:
        return f"jsonl:{self.cache.path}"

    def get(self, key: str) -> RunRecord | None:
        return self.cache.get(key)

    def append(
        self, key: str, record: RunRecord, wall_seconds: float | None = None
    ) -> None:
        if _REC.enabled:
            _REC.count("store.jsonl.appends")
        self.cache.put(key, record)
        self._leases.pop(key, None)

    def claim(
        self, key: str, lease: float | None = None, owner: str | None = None
    ) -> Claim:
        if _REC.enabled:
            _REC.count("store.jsonl.claims")
        record = self.cache.get(key)
        if record is not None:
            return Claim(status=CLAIM_DONE, record=record)
        owner = owner or default_owner()
        holder = self._leases.get(key)
        if holder is not None and holder != owner:
            return Claim(status=CLAIM_LEASED, owner=holder)
        self._leases[key] = owner
        return Claim(status=CLAIM_ACQUIRED, owner=owner)

    def release(self, key: str, owner: str | None = None) -> None:
        holder = self._leases.get(key)
        if holder is None:
            return
        if owner is None or holder == owner:
            del self._leases[key]

    def status(self) -> StoreStatus:
        leases = tuple(
            LeaseReport(key=key, owner=owner, expires=None, stale=False)
            for key, owner in sorted(self._leases.items())
        )
        records = [record for _, record in self.cache.items()]
        rows = (
            (
                workload_label(record),
                int((record.extra or {}).get("interactions", 0) or 0),
                0.0,
            )
            for record in records
        )
        return StoreStatus(
            completed=len(self.cache),
            leased=len(leases),
            stale=0,
            leases=leases,
            workloads=self._aggregate_workloads(rows),
        )
