"""HTTP result store: thin urllib client of ``repro store serve``.

Every :class:`~repro.store.base.ResultStore` method maps to one request
against the server in :mod:`repro.store.server`; records cross the wire in
the exact :func:`record_to_dict` JSON the JSONL cache writes, so results
fetched over HTTP are bit-identical to local ones.  The client holds no
state beyond the base URL — all coordination lives in the server's
SqliteStore — so any number of clients on any number of hosts are safe.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from urllib.parse import quote

from repro.harness.cache import record_from_dict, record_to_dict
from repro.harness.results import RunRecord
from repro.obs.recorder import RECORDER as _REC
from repro.store.base import (
    Claim,
    DEFAULT_LEASE_SECONDS,
    LeaseReport,
    ResultStore,
    StoreError,
    StoreStatus,
    WorkloadStats,
    default_owner,
)

__all__ = ["HttpStore"]


class HttpStore(ResultStore):
    """Client of a ``repro store serve`` daemon.

    Parameters
    ----------
    url:
        Base URL of the server, e.g. ``http://127.0.0.1:8512``.
    lease_seconds:
        Default lease duration sent with each claim.
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(
        self,
        url: str,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        timeout: float = 30.0,
    ) -> None:
        self.url = url.rstrip("/")
        self.lease_seconds = float(lease_seconds)
        self.timeout = float(timeout)

    def describe(self) -> str:
        return self.url

    # -- wire plumbing -------------------------------------------------------

    def _request(self, path: str, payload: dict | None = None) -> dict:
        url = f"{self.url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload, allow_nan=False).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            if error.code == 404 and path.startswith("/record"):
                return {}
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error", "")
            except Exception:
                detail = ""
            raise StoreError(
                f"store server {self.url} rejected {path}: "
                f"HTTP {error.code} {detail}".rstrip()
            ) from error
        except urllib.error.URLError as error:
            raise StoreError(
                f"cannot reach store server {self.url}: {error.reason}"
            ) from error

    # -- ResultStore contract ------------------------------------------------

    def health(self) -> dict:
        """Server identity probe (``GET /health``)."""
        return self._request("/health")

    def get(self, key: str) -> RunRecord | None:
        payload = self._request(f"/record?key={quote(key)}")
        if "record" not in payload:
            return None
        return record_from_dict(payload["record"])

    def pending(self, keys) -> list[str]:
        if not keys:
            return []
        return list(self._request("/pending", {"keys": list(keys)})["pending"])

    def append(
        self, key: str, record: RunRecord, wall_seconds: float | None = None
    ) -> None:
        if _REC.enabled:
            _REC.count("store.http.appends")
        self._request(
            "/append",
            {
                "key": key,
                "record": record_to_dict(record),
                "wall_seconds": wall_seconds,
            },
        )

    def claim(
        self, key: str, lease: float | None = None, owner: str | None = None
    ) -> Claim:
        if _REC.enabled:
            _REC.count("store.http.claims")
        payload = self._request(
            "/claim",
            {
                "key": key,
                "lease": self.lease_seconds if lease is None else float(lease),
                "owner": owner or default_owner(),
            },
        )
        record = payload.get("record")
        return Claim(
            status=payload["status"],
            record=None if record is None else record_from_dict(record),
            owner=payload.get("owner"),
            expires=payload.get("expires"),
        )

    def release(self, key: str, owner: str | None = None) -> None:
        self._request("/release", {"key": key, "owner": owner})

    def status(self) -> StoreStatus:
        payload = self._request("/status")
        return StoreStatus(
            completed=int(payload["completed"]),
            leased=int(payload["leased"]),
            stale=int(payload["stale"]),
            leases=tuple(
                LeaseReport(
                    key=entry["key"],
                    owner=entry["owner"],
                    expires=entry["expires"],
                    stale=bool(entry["stale"]),
                )
                for entry in payload.get("leases", ())
            ),
            workloads=tuple(
                WorkloadStats(
                    workload=entry["workload"],
                    trials=int(entry["trials"]),
                    interactions=int(entry["interactions"]),
                    wall_seconds=float(entry["wall_seconds"]),
                )
                for entry in payload.get("workloads", ())
            ),
        )
