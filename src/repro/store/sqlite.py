"""SQLite result store: atomic compare-and-claim for many drivers on one host.

One database file, two tables:

``results(key, record, workload, interactions, wall_seconds, appended_at)``
    Append-only finished trials.  ``record`` is the exact strict-JSON
    serialisation the JSONL cache writes (:func:`record_to_dict`), so the
    record round-trips bit-identically; the remaining columns are *store
    metadata* (denormalised for status reports) and never flow back into
    the record.
``leases(key, owner, acquired_at, expires_at)``
    At most one row per key: the live claim.  A lease either ends in
    ``append`` (the row is deleted in the same transaction that inserts the
    result) or expires — ``claim`` treats an ``expires_at`` in the past as
    vacant and atomically takes the row over, which is exactly how a crashed
    worker's trials get reclaimed.

Claims run inside ``BEGIN IMMEDIATE`` transactions, so the read-check-write
is a single critical section serialised by SQLite's write lock: two drivers
can never both observe "vacant" and both acquire.  WAL mode keeps readers
(status, pending) from blocking claimers.

Wall-clock reads (``time.time``) are confined to this layer by design —
lease expiry is *about* wall time — and carry a committed D302 waiver; the
trial records themselves remain fully deterministic.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path

from repro.harness.cache import record_from_dict, record_to_dict
from repro.harness.results import RunRecord
from repro.obs.recorder import RECORDER as _REC
from repro.store.base import (
    CLAIM_ACQUIRED,
    CLAIM_DONE,
    CLAIM_LEASED,
    Claim,
    DEFAULT_LEASE_SECONDS,
    LeaseReport,
    ResultStore,
    StoreError,
    StoreStatus,
    default_owner,
    workload_label,
)

__all__ = ["SqliteStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key          TEXT PRIMARY KEY,
    record       TEXT NOT NULL,
    workload     TEXT NOT NULL,
    interactions INTEGER NOT NULL DEFAULT 0,
    wall_seconds REAL NOT NULL DEFAULT 0.0,
    appended_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS leases (
    key         TEXT PRIMARY KEY,
    owner       TEXT NOT NULL,
    acquired_at REAL NOT NULL,
    expires_at  REAL NOT NULL
);
"""


class SqliteStore(ResultStore):
    """WAL-mode SQLite store with lease-expiry compare-and-claim.

    Safe for any number of processes (and threads — a lock serialises this
    handle) sharing one database file on one host.  For cross-host sweeps,
    front it with ``repro store serve`` and point drivers at the ``http:``
    URL.
    """

    def __init__(
        self,
        path: str | Path,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        timeout: float = 30.0,
    ) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.lease_seconds = float(lease_seconds)
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(
            str(self.path), timeout=timeout, check_same_thread=False
        )
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
        with self._lock:
            self._connection.executescript(_SCHEMA)
            self._connection.commit()

    def describe(self) -> str:
        return f"sqlite:{self.path}"

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    # -- reads ---------------------------------------------------------------

    def get(self, key: str) -> RunRecord | None:
        with self._lock:
            row = self._connection.execute(
                "SELECT record FROM results WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        return record_from_dict(json.loads(row[0]))

    def pending(self, keys) -> list[str]:
        if not keys:
            return []
        done: set[str] = set()
        with self._lock:
            # SQLite caps host parameters; chunk well below the default 999.
            for start in range(0, len(keys), 500):
                chunk = list(keys[start : start + 500])
                marks = ",".join("?" for _ in chunk)
                rows = self._connection.execute(
                    f"SELECT key FROM results WHERE key IN ({marks})", chunk
                ).fetchall()
                done.update(row[0] for row in rows)
        return [key for key in keys if key not in done]

    # -- writes --------------------------------------------------------------

    def append(
        self, key: str, record: RunRecord, wall_seconds: float | None = None
    ) -> None:
        if _REC.enabled:
            _REC.count("store.sqlite.appends")
        payload = json.dumps(
            record_to_dict(record), sort_keys=True, allow_nan=False
        )
        extra = record.extra or {}
        interactions = int(extra.get("interactions", 0) or 0)
        now = time.time()
        with self._lock:
            self._connection.execute("BEGIN IMMEDIATE")
            try:
                if wall_seconds is None:
                    # Derive execution time from the claim that started the
                    # trial, keeping all wall-clock bookkeeping inside the
                    # store layer (drivers stay clock-free for determinism).
                    lease_row = self._connection.execute(
                        "SELECT acquired_at FROM leases WHERE key = ?", (key,)
                    ).fetchone()
                    if lease_row is not None:
                        wall_seconds = max(0.0, now - lease_row[0])
                self._connection.execute(
                    "INSERT OR IGNORE INTO results "
                    "(key, record, workload, interactions, wall_seconds,"
                    " appended_at) VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        key,
                        payload,
                        workload_label(record),
                        interactions,
                        float(wall_seconds or 0.0),
                        now,
                    ),
                )
                self._connection.execute(
                    "DELETE FROM leases WHERE key = ?", (key,)
                )
                self._connection.commit()
            except BaseException:
                self._connection.rollback()
                raise

    def claim(
        self, key: str, lease: float | None = None, owner: str | None = None
    ) -> Claim:
        if _REC.enabled:
            _REC.count("store.sqlite.claims")
        owner = owner or default_owner()
        duration = self.lease_seconds if lease is None else float(lease)
        if duration <= 0:
            raise StoreError(f"lease must be positive, got {duration}")
        now = time.time()
        with self._lock:
            self._connection.execute("BEGIN IMMEDIATE")
            try:
                row = self._connection.execute(
                    "SELECT record FROM results WHERE key = ?", (key,)
                ).fetchone()
                if row is not None:
                    self._connection.commit()
                    return Claim(
                        status=CLAIM_DONE, record=record_from_dict(json.loads(row[0]))
                    )
                holder = self._connection.execute(
                    "SELECT owner, expires_at FROM leases WHERE key = ?", (key,)
                ).fetchone()
                if holder is not None and holder[1] > now and holder[0] != owner:
                    self._connection.commit()
                    return Claim(
                        status=CLAIM_LEASED, owner=holder[0], expires=holder[1]
                    )
                expires = now + duration
                self._connection.execute(
                    "INSERT INTO leases (key, owner, acquired_at, expires_at) "
                    "VALUES (?, ?, ?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET "
                    "owner=excluded.owner, acquired_at=excluded.acquired_at,"
                    " expires_at=excluded.expires_at",
                    (key, owner, now, expires),
                )
                self._connection.commit()
                return Claim(status=CLAIM_ACQUIRED, owner=owner, expires=expires)
            except BaseException:
                self._connection.rollback()
                raise

    def release(self, key: str, owner: str | None = None) -> None:
        with self._lock:
            if owner is None:
                self._connection.execute(
                    "DELETE FROM leases WHERE key = ?", (key,)
                )
            else:
                self._connection.execute(
                    "DELETE FROM leases WHERE key = ? AND owner = ?", (key, owner)
                )
            self._connection.commit()

    # -- reporting -----------------------------------------------------------

    def status(self) -> StoreStatus:
        now = time.time()
        with self._lock:
            completed = self._connection.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
            lease_rows = self._connection.execute(
                "SELECT key, owner, expires_at FROM leases ORDER BY key"
            ).fetchall()
            workload_rows = self._connection.execute(
                "SELECT workload, interactions, wall_seconds FROM results"
            ).fetchall()
        leases = tuple(
            LeaseReport(key=key, owner=owner, expires=expires, stale=expires <= now)
            for key, owner, expires in lease_rows
        )
        stale = sum(1 for entry in leases if entry.stale)
        return StoreStatus(
            completed=int(completed),
            leased=len(leases) - stale,
            stale=stale,
            leases=leases,
            workloads=self._aggregate_workloads(workload_rows),
        )
