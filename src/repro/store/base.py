"""The result-store abstraction: claim-based, resume-anywhere sweep storage.

The sweep harness historically persisted finished trials in one local JSONL
file (:class:`~repro.harness.cache.ResultCache`), written by a single driver
process.  Distributed sweeps need the storage layer to do more: *many*
drivers on many hosts share one store, each repeatedly claiming the next
unowned trial, running it, and appending the record — so duplicated work is
structurally impossible rather than merely unlikely, and a sweep resumes
from any mix of completed/leased/failed trials on any host.

:class:`ResultStore` is that contract.  Keys are the existing SHA-256 spec
hashes (:meth:`TrialSpec.cache_key`), so identical submissions deduplicate
through content addressing exactly as the local cache always did.  The four
core operations:

``claim(key, lease, owner)``
    Atomic compare-and-claim.  Returns one of three outcomes: ``done`` (a
    record already exists — here it is, no work to do), ``acquired`` (the
    caller now holds a lease and must run the trial), or ``leased``
    (another live worker holds it; come back later).  Leases expire: a
    worker that crashes mid-trial loses its lease after ``lease`` seconds
    and the trial is reclaimed by whoever asks next.
``append(key, record)``
    Publish a finished record and release the lease.  Append-only: a key is
    written once and never mutated, so records are immutable facts.
``get(key)`` / ``pending(keys)``
    Point lookup and batch which-of-these-are-missing, used by drivers to
    replay finished trials without claiming them.

Three implementations ship: :class:`~repro.store.jsonl.JsonlStore` (the
backwards-compatible single-driver wrapper of ``ResultCache``),
:class:`~repro.store.sqlite.SqliteStore` (WAL-mode SQLite, safe for many
processes on one host) and :class:`~repro.store.http.HttpStore` (thin
client of ``repro store serve``, for many hosts).

Store selection is deliberately *outside* the trial cache key: the same
spec must hit regardless of which store serves it, so every
:class:`StoreSpec` field is audited as key-excluded
(:data:`STORE_KEY_EXCLUDED_FIELDS`, enforced by ``repro check`` rules
``K404``/``K405``).
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import SimulationError
from repro.harness.results import RunRecord

__all__ = [
    "CLAIM_ACQUIRED",
    "CLAIM_DONE",
    "CLAIM_LEASED",
    "DEFAULT_LEASE_SECONDS",
    "STORE_KEY_EXCLUDED_FIELDS",
    "STORE_SCHEMES",
    "Claim",
    "LeaseReport",
    "ResultStore",
    "StoreError",
    "StoreSpec",
    "StoreStatus",
    "WorkloadStats",
    "default_owner",
    "parse_store_url",
    "workload_label",
]


class StoreError(SimulationError):
    """A result-store operation failed (bad URL, unreachable server, ...)."""


#: Lease duration a driver holds on a claimed trial before crashed workers'
#: claims become reclaimable.  Generous relative to any small-n trial; large
#: sweeps pass an explicit ``--lease`` sized to their slowest trial.
DEFAULT_LEASE_SECONDS = 300.0

#: Outcomes of :meth:`ResultStore.claim`.
CLAIM_ACQUIRED = "acquired"
CLAIM_DONE = "done"
CLAIM_LEASED = "leased"

#: URL schemes understood by :func:`parse_store_url`.
STORE_SCHEMES = ("jsonl", "sqlite", "http", "https")


@dataclass(frozen=True)
class Claim:
    """Outcome of one atomic compare-and-claim.

    Attributes
    ----------
    status:
        ``"done"`` (record exists, no work), ``"acquired"`` (caller holds
        the lease and must run the trial) or ``"leased"`` (someone else is
        running it).
    record:
        The finished record when ``status == "done"``.
    owner / expires:
        Lease holder and expiry (unix seconds) when ``status == "leased"``
        or ``"acquired"``; ``None`` where the store tracks no expiry (the
        single-driver JSONL store).
    """

    status: str
    record: RunRecord | None = None
    owner: str | None = None
    expires: float | None = None

    @property
    def acquired(self) -> bool:
        return self.status == CLAIM_ACQUIRED

    @property
    def done(self) -> bool:
        return self.status == CLAIM_DONE

    @property
    def leased(self) -> bool:
        return self.status == CLAIM_LEASED


@dataclass(frozen=True)
class LeaseReport:
    """One outstanding lease, as reported by :meth:`ResultStore.status`."""

    key: str
    owner: str
    expires: float | None
    stale: bool


@dataclass(frozen=True)
class WorkloadStats:
    """Completed-trial aggregates for one workload (see :func:`workload_label`)."""

    workload: str
    trials: int
    interactions: int
    wall_seconds: float

    @property
    def interactions_per_second(self) -> float | None:
        if self.wall_seconds <= 0:
            return None
        return self.interactions / self.wall_seconds


@dataclass(frozen=True)
class StoreStatus:
    """Snapshot of a store: completion counts, leases, throughput."""

    completed: int
    leased: int
    stale: int
    leases: tuple[LeaseReport, ...] = ()
    workloads: tuple[WorkloadStats, ...] = ()


def workload_label(record: RunRecord) -> str:
    """Grouping label of a record for per-workload status summaries.

    Records carry their provenance in ``extra``: CRN trials name the
    network, finite-state/vector trials at least name the engine.
    """
    extra = record.extra or {}
    crn = extra.get("crn")
    protocol = extra.get("protocol")
    engine = extra.get("engine", "?")
    if crn is not None:
        return f"crn:{crn}@{engine}"
    if protocol is not None:
        return f"{protocol}@{engine}"
    return str(engine)


def default_owner() -> str:
    """Host-unique worker identity used as the default lease owner."""
    return f"{os.uname().nodename}:{os.getpid()}"


@dataclass(frozen=True)
class StoreSpec:
    """Parsed store selection: *where results live*, never *what they are*.

    Every field here is deliberately excluded from the trial cache key —
    the same :class:`TrialSpec` must hit the same record no matter which
    store serves it (``jsonl`` today, ``http`` tomorrow).  The exclusion is
    machine-checked: each field must be listed in
    :data:`STORE_KEY_EXCLUDED_FIELDS` (rule ``K404``) and must not leak
    into the trial key payload (rule ``K405``), so adding a field without
    deciding its key status fails CI.

    Attributes
    ----------
    scheme:
        One of :data:`STORE_SCHEMES`.
    location:
        Scheme-specific address: a cache directory (``jsonl``), a database
        path (``sqlite``) or a base URL (``http``/``https``).
    lease_seconds:
        Driver-side default lease duration for claims through this store.
    name:
        JSONL only: stem of the cache file inside the directory.
    """

    scheme: str
    location: str
    lease_seconds: float = DEFAULT_LEASE_SECONDS
    name: str = "sweep"

    def __post_init__(self) -> None:
        if self.scheme not in STORE_SCHEMES:
            raise StoreError(
                f"unknown store scheme {self.scheme!r}; expected one of "
                f"{', '.join(STORE_SCHEMES)}"
            )
        if not self.location:
            raise StoreError(f"store URL {self.scheme}: needs a location")
        if self.lease_seconds <= 0:
            raise StoreError(
                f"lease_seconds must be positive, got {self.lease_seconds}"
            )

    def url(self) -> str:
        """The canonical URL form (``scheme:location``)."""
        if self.scheme in ("http", "https"):
            return self.location
        return f"{self.scheme}:{self.location}"


def parse_store_url(
    url: str,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    name: str = "sweep",
) -> StoreSpec:
    """Parse ``jsonl:DIR`` / ``sqlite:PATH`` / ``http://HOST:PORT``.

    The ``http`` scheme keeps the whole URL as the location (so
    ``http://host:8512`` round-trips); the on-disk schemes split on the
    first colon, so Windows-style or relative paths after the scheme are
    preserved verbatim.
    """
    scheme, separator, rest = url.partition(":")
    if not separator or not scheme:
        raise StoreError(
            f"malformed store URL {url!r}; expected jsonl:DIR, sqlite:PATH "
            f"or http://HOST:PORT"
        )
    if scheme in ("http", "https"):
        return StoreSpec(
            scheme=scheme, location=url, lease_seconds=lease_seconds, name=name
        )
    return StoreSpec(
        scheme=scheme, location=rest, lease_seconds=lease_seconds, name=name
    )


#: Every :class:`StoreSpec` field, by name, audited as excluded from the
#: trial cache key.  ``repro check`` (rule ``K404``) fails when a StoreSpec
#: field is missing here — adding a store field forces an explicit decision
#: — and rule ``K405`` fails if any of these names ever appears in the
#: :meth:`TrialSpec.cache_payload` key set or among TrialSpec's fields.
STORE_KEY_EXCLUDED_FIELDS = ("scheme", "location", "lease_seconds", "name")


class ResultStore(abc.ABC):
    """Claim/append/get/pending storage contract for distributed sweeps.

    Consistency guarantees every implementation must honour:

    * ``append`` is the *only* write of a record; a key, once appended, is
      immutable and every subsequent ``get``/``claim`` observes it.
    * ``claim`` is atomic: for one key, at most one live (unexpired) lease
      exists at any time, so two drivers can never both hold ``acquired``.
    * A lease either ends in ``append`` (normal completion) or expires
      (crashed worker); expiry makes the key claimable again, never lost.
    * Records are exactly the driver's :class:`RunRecord` values — the
      store layer neither inspects nor rewrites them beyond the JSON
      canonicalisation the JSONL cache always applied.
    """

    #: Default lease duration for claims when the caller passes none.
    lease_seconds: float = DEFAULT_LEASE_SECONDS

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line identity (scheme + location) for logs and CLI output."""

    @abc.abstractmethod
    def get(self, key: str) -> RunRecord | None:
        """Return the finished record for ``key``, or ``None``."""

    @abc.abstractmethod
    def append(
        self, key: str, record: RunRecord, wall_seconds: float | None = None
    ) -> None:
        """Publish a finished record and release any lease on ``key``.

        ``wall_seconds`` is optional driver-measured execution time, kept
        as store metadata (for throughput reports) strictly *outside* the
        record, so stored records stay bit-identical to serial runs.
        """

    @abc.abstractmethod
    def claim(
        self, key: str, lease: float | None = None, owner: str | None = None
    ) -> Claim:
        """Atomically claim ``key`` for execution (see :class:`Claim`)."""

    @abc.abstractmethod
    def release(self, key: str, owner: str | None = None) -> None:
        """Drop a lease without appending (a failed or abandoned trial)."""

    @abc.abstractmethod
    def status(self) -> StoreStatus:
        """Snapshot of completion counts, leases and per-workload totals."""

    def pending(self, keys: Sequence[str]) -> list[str]:
        """The subset of ``keys`` with no finished record, in input order.

        Implementations with a cheaper batch query override this.
        """
        return [key for key in keys if self.get(key) is None]

    def close(self) -> None:
        """Release any connections; further calls may fail."""

    # -- conveniences shared by all stores ----------------------------------

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _aggregate_workloads(
        rows: Iterable[tuple[str, int, float]],
    ) -> tuple[WorkloadStats, ...]:
        """Fold (label, interactions, wall_seconds) rows into per-workload stats."""
        totals: dict[str, list[float]] = {}
        for label, interactions, wall_seconds in rows:
            bucket = totals.setdefault(label, [0, 0, 0.0])
            bucket[0] += 1
            bucket[1] += int(interactions or 0)
            bucket[2] += float(wall_seconds or 0.0)
        return tuple(
            WorkloadStats(
                workload=label,
                trials=int(trials),
                interactions=int(interactions),
                wall_seconds=wall,
            )
            for label, (trials, interactions, wall) in sorted(totals.items())
        )
