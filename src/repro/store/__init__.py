"""Pluggable result stores for distributed sweeps (see :mod:`repro.store.base`).

The one function most callers need is :func:`open_store`, which turns a
``jsonl:DIR`` / ``sqlite:PATH`` / ``http://HOST:PORT`` URL (or a parsed
:class:`StoreSpec`) into a live :class:`ResultStore`.
"""

from __future__ import annotations

from repro.store.base import (
    CLAIM_ACQUIRED,
    CLAIM_DONE,
    CLAIM_LEASED,
    DEFAULT_LEASE_SECONDS,
    STORE_KEY_EXCLUDED_FIELDS,
    STORE_SCHEMES,
    Claim,
    LeaseReport,
    ResultStore,
    StoreError,
    StoreSpec,
    StoreStatus,
    WorkloadStats,
    default_owner,
    parse_store_url,
    workload_label,
)

__all__ = [
    "CLAIM_ACQUIRED",
    "CLAIM_DONE",
    "CLAIM_LEASED",
    "DEFAULT_LEASE_SECONDS",
    "STORE_KEY_EXCLUDED_FIELDS",
    "STORE_SCHEMES",
    "Claim",
    "LeaseReport",
    "ResultStore",
    "StoreError",
    "StoreSpec",
    "StoreStatus",
    "WorkloadStats",
    "default_owner",
    "open_store",
    "parse_store_url",
    "workload_label",
]


def open_store(
    store,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    name: str = "sweep",
) -> ResultStore:
    """Open a result store from a URL, a :class:`StoreSpec`, or pass through.

    Accepts ``jsonl:DIR`` (single-driver JSONL shard ``<DIR>/<name>.jsonl``),
    ``sqlite:PATH`` (multi-process, one host) and ``http(s)://HOST:PORT``
    (``repro store serve`` daemon, many hosts).  An already-open
    :class:`ResultStore` is returned unchanged, so APIs can take either.

    Implementations import lazily so ``jsonl:`` sweeps never touch sqlite3
    or the HTTP stack.
    """
    if isinstance(store, ResultStore):
        return store
    if isinstance(store, StoreSpec):
        spec = store
    else:
        spec = parse_store_url(str(store), lease_seconds=lease_seconds, name=name)
    if spec.scheme == "jsonl":
        from repro.store.jsonl import JsonlStore

        return JsonlStore(
            spec.location, name=spec.name, lease_seconds=spec.lease_seconds
        )
    if spec.scheme == "sqlite":
        from repro.store.sqlite import SqliteStore

        return SqliteStore(spec.location, lease_seconds=spec.lease_seconds)
    from repro.store.http import HttpStore

    return HttpStore(spec.location, lease_seconds=spec.lease_seconds)
