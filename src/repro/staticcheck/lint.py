"""Determinism contract lint (rules ``D3xx``) — stdlib ``ast`` only.

Reproducibility in this repository rests on one convention: *every* random
draw flows from an explicit, seeded :class:`numpy.random.Generator` (via
``repro.rng`` / ``spawn_seed``), and nothing on a simulation path reads the
wall clock.  These rules make the convention machine-checked:

``D301`` global RNG
    Any use of stdlib ``random`` (module import or ``from random import x``)
    or of a ``numpy.random`` *module-level* function (``np.random.seed``,
    ``np.random.random``, ...).  Constructing explicit generators is fine:
    ``default_rng``, ``Generator``, ``SeedSequence`` and the bit-generator
    classes are allowed.  The numba backend's nopython kernels carry a
    committed waiver — inside ``@njit`` the ``np.random`` module functions
    *are* the per-thread generator API, and every kernel seeds explicitly.
``D302`` wall clock
    Calls that read real time (``time.time``, ``time.perf_counter``,
    ``datetime.now``, ...).  Timing utilities that *measure* performance on
    purpose (``repro profile``, the benchmark harness) carry waivers; the
    simulation and harness paths must stay clock-free so reruns are
    bit-identical.

The lint is intentionally syntactic: it flags names, not data flow, so it
can run with zero third-party dependencies and zero imports of the checked
code.  Locations are ``path:line`` relative to the repository root, which is
what the waiver prefixes match against.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Sequence

from repro.staticcheck.diagnostics import ERROR, Diagnostic

__all__ = ["lint_paths", "lint_source"]

#: numpy.random attributes that construct explicit generators (allowed).
_ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",  # legacy class, still an *explicit* generator object
    }
)

#: time-module attributes that read the real clock.
_WALL_CLOCK_TIME = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
    }
)

#: datetime attributes that read the real clock.
_WALL_CLOCK_DATETIME = frozenset({"now", "utcnow", "today"})


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.diagnostics: list[Diagnostic] = []
        #: local aliases of the numpy module (``numpy``, ``np``, ...).
        self.numpy_aliases: set[str] = set()
        #: local aliases of ``numpy.random`` itself (``import numpy.random as nr``).
        self.numpy_random_aliases: set[str] = set()
        #: local aliases of the stdlib ``time`` module.
        self.time_aliases: set[str] = set()
        #: local aliases of the ``datetime`` module.
        self.datetime_aliases: set[str] = set()
        #: local names bound to the ``datetime``/``date`` classes.
        self.datetime_classes: set[str] = set()

    # -- imports ------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random" and alias.asname is None:
                self._d301(node, "import random", "stdlib random module imported")
            elif alias.name == "random":
                self._d301(
                    node, f"import random as {alias.asname}",
                    "stdlib random module imported",
                )
            elif alias.name == "numpy":
                self.numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname is None:
                    self.numpy_aliases.add("numpy")
                else:
                    self.numpy_random_aliases.add(alias.asname)
            elif alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level == 0 and module == "random":
            names = ", ".join(alias.name for alias in node.names)
            self._d301(
                node,
                f"from random import {names}",
                "stdlib random functions draw from the hidden global generator",
            )
        elif node.level == 0 and module == "numpy.random":
            for alias in node.names:
                if alias.name not in _ALLOWED_NP_RANDOM:
                    self._d301(
                        node,
                        f"from numpy.random import {alias.name}",
                        "numpy.random module-level functions use the hidden "
                        "global generator",
                    )
        elif node.level == 0 and module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.numpy_random_aliases.add(alias.asname or "random")
        elif node.level == 0 and module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_TIME:
                    self._d302(node, f"from time import {alias.name}")
        elif node.level == 0 and module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.datetime_classes.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- attribute access ---------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        rendered = self._dotted(node)
        if rendered is not None:
            parts = rendered.split(".")
            # np.random.<fn> (via a numpy alias)
            if (
                len(parts) == 3
                and parts[0] in self.numpy_aliases
                and parts[1] == "random"
                and parts[2] not in _ALLOWED_NP_RANDOM
            ):
                self._d301(
                    node,
                    rendered,
                    "numpy.random module-level functions use the hidden "
                    "global generator",
                )
            # nr.<fn> (via a numpy.random alias)
            elif (
                len(parts) == 2
                and parts[0] in self.numpy_random_aliases
                and parts[0] not in self.numpy_aliases
                and parts[1] not in _ALLOWED_NP_RANDOM
            ):
                self._d301(
                    node,
                    rendered,
                    "numpy.random module-level functions use the hidden "
                    "global generator",
                )
            elif (
                len(parts) == 2
                and parts[0] in self.time_aliases
                and parts[1] in _WALL_CLOCK_TIME
            ):
                self._d302(node, rendered)
            elif (
                len(parts) == 2
                and parts[0] in self.datetime_classes
                and parts[1] in _WALL_CLOCK_DATETIME
            ):
                self._d302(node, rendered)
            elif (
                len(parts) == 3
                and parts[0] in self.datetime_aliases
                and parts[1] in ("datetime", "date")
                and parts[2] in _WALL_CLOCK_DATETIME
            ):
                self._d302(node, rendered)
        self.generic_visit(node)

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _dotted(node: ast.Attribute) -> str | None:
        parts = [node.attr]
        value = node.value
        while isinstance(value, ast.Attribute):
            parts.append(value.attr)
            value = value.value
        if isinstance(value, ast.Name):
            parts.append(value.id)
            return ".".join(reversed(parts))
        return None

    def _d301(self, node: ast.AST, what: str, why: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                rule="D301",
                severity=ERROR,
                location=f"{self.path}:{node.lineno}",
                message=f"global RNG: {what} ({why})",
                hint=(
                    "draw from an explicit seeded generator: repro.rng."
                    "RandomSource or numpy.random.default_rng(spawn_seed(...))"
                ),
            )
        )

    def _d302(self, node: ast.AST, what: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                rule="D302",
                severity=ERROR,
                location=f"{self.path}:{node.lineno}",
                message=f"wall clock: {what} (reruns stop being bit-identical)",
                hint=(
                    "simulation/harness paths must be clock-free; intentional "
                    "timing code (profilers, benchmarks) needs a waiver"
                ),
            )
        )


def lint_source(source: str, path: str) -> list[Diagnostic]:
    """Lint one module's source text; ``path`` labels the diagnostics."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Diagnostic(
                rule="D300",
                severity=ERROR,
                location=f"{path}:{error.lineno or 0}",
                message=f"could not parse: {error.msg}",
                hint="fix the syntax error",
            )
        ]
    linter = _Linter(path)
    linter.visit(tree)
    return linter.diagnostics


def lint_paths(
    paths: Sequence[str | Path], root: str | Path = "."
) -> list[Diagnostic]:
    """Lint every ``*.py`` file under the given files/directories.

    Locations are reported relative to ``root`` so committed waiver prefixes
    (``src/repro/...``) match regardless of the working directory.
    """
    root = Path(root).resolve()
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if not entry.is_absolute():
            entry = root / entry
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    diagnostics: list[Diagnostic] = []
    for file in files:
        try:
            label = str(file.resolve().relative_to(root))
        except ValueError:
            label = str(file)
        diagnostics.extend(
            lint_source(file.read_text(encoding="utf-8"), path=label)
        )
    return diagnostics
