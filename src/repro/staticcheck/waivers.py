"""The repository's committed waivers: every exception, with its reason.

A waiver never hides a finding — waived diagnostics still print, marked with
the justification below, and a waiver that stops matching anything is itself
reported (rule ``W001``).  Additions to this list belong in code review, not
in a local config: the point is that the repo's recorded exceptions are the
*only* exceptions.
"""

from __future__ import annotations

from repro.staticcheck.diagnostics import Waiver

__all__ = ["BUILTIN_WAIVERS"]

BUILTIN_WAIVERS: tuple[Waiver, ...] = (
    Waiver(
        rule="D301",
        location="src/repro/backend/numba_backend.py",
        justification=(
            "nopython kernels: inside @njit the np.random module functions "
            "are numba's per-thread generator API; every kernel is seeded "
            "explicitly via np.random.seed(seed) at entry, so runs stay "
            "reproducible (see backend/numba_backend.py docstring)"
        ),
    ),
    Waiver(
        rule="D302",
        location="src/repro/cli.py",
        justification=(
            "`repro profile` exists to measure wall-clock throughput; "
            "time.perf_counter here is the feature, not a hazard — no "
            "simulation result depends on it"
        ),
    ),
    Waiver(
        rule="D302",
        location="src/repro/store/",
        justification=(
            "lease expiry is *about* wall-clock time: claims record "
            "acquired_at/expires_at so crashed drivers' trials are "
            "reclaimable, and throughput reports derive from append "
            "timestamps — all store metadata, never part of a RunRecord, "
            "so simulation results stay deterministic"
        ),
    ),
    Waiver(
        rule="D302",
        location="src/repro/obs/",
        justification=(
            "the telemetry recorder is the repository's single clock site: "
            "instrumented hot paths read time only through "
            "Recorder.now_ns() (time.perf_counter_ns, monotonic), metrics "
            "and manifests are observational — excluded from cache keys by "
            "contract K406 and never read back by any simulation path, so "
            "trajectories and records stay bit-identical with telemetry on "
            "or off (tests/obs/test_telemetry_identical.py)"
        ),
    ),
    Waiver(
        rule="P102",
        location="protocol:leader",
        justification=(
            "leader election's output is intentionally non-consensus: one "
            "agent outputs True among False followers, so the stable silent "
            "configuration {L, F} disagreeing on output is the spec, not a "
            "bug"
        ),
    ),
    Waiver(
        rule="P102",
        location="protocol:termination",
        justification=(
            "the counter-termination workload signals via the surviving "
            "candidate's output, so terminated candidate/follower states "
            "disagree by design (per-agent termination detection, paper "
            "Section 3.4)"
        ),
    ),
)
