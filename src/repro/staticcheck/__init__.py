"""Static analysis for the reproduction: ``repro check``.

Four analyzer families turn the repository's correctness conventions into
machine-checked contracts (see ``DESIGN.md``, "Static analysis"):

* :mod:`repro.staticcheck.semantic` — producibility-based protocol/CRN
  analysis (unreachable states, output instability, scheduler starvation,
  dead reactions);
* :mod:`repro.staticcheck.lint` — AST determinism lint (no global RNG, no
  wall clock on simulation paths);
* :mod:`repro.staticcheck.contracts` — cache-key completeness by
  perturbation and capability-matrix test coverage;
* :mod:`repro.staticcheck.typing_ratchet` — strict-mypy baseline ratchet.

Entry point: :func:`repro.staticcheck.runner.run_check` (the ``repro check``
subcommand).  Committed exceptions: :mod:`repro.staticcheck.waivers`.
"""

from repro.staticcheck.diagnostics import (
    Diagnostic,
    Waiver,
    apply_waivers,
    exit_code,
    load_waiver_file,
    render_json,
    render_text,
)
from repro.staticcheck.runner import FAMILIES, run_check

__all__ = [
    "Diagnostic",
    "FAMILIES",
    "Waiver",
    "apply_waivers",
    "exit_code",
    "load_waiver_file",
    "render_json",
    "render_text",
    "run_check",
]
