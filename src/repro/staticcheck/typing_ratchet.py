"""Mypy strict-typing ratchet (rules ``T6xx``).

The goal is monotone progress, not a flag day: ``mypy --strict`` runs over
the core packages and the per-package error counts are compared against a
committed baseline (``staticcheck_typing_baseline.json``).  A package whose
count *rises* fails the check (``T601``); a falling count is reported as
info (``T602``) with a prompt to re-baseline, so legacy debt can only burn
down.  Packages absent from the baseline are informational (``T603``) — the
first CI run after adding a package records its debt with
``repro check --only typing --update-baseline``.

mypy itself is an optional tool: when it is not importable (numpy-only dev
installs), the ratchet reports ``T600`` (info) and passes — the CI
static-analysis job installs mypy and runs the real comparison.  The strict
flags live in ``pyproject.toml`` under ``[tool.mypy]``.
"""

from __future__ import annotations

import importlib.util
import json
import re
import subprocess
import sys
from pathlib import Path
from typing import Mapping

from repro.staticcheck.diagnostics import ERROR, INFO, Diagnostic

__all__ = [
    "BASELINE_PATH",
    "DEFAULT_PACKAGES",
    "typing_diagnostics",
]

#: Packages under the strict ratchet (relative to ``src/repro``).
DEFAULT_PACKAGES = ("engine", "backend", "harness", "crn")

#: Committed per-package error-count baseline, relative to the repo root.
BASELINE_PATH = Path("staticcheck_typing_baseline.json")

#: mypy output line: ``path:line: error: message  [code]``.
_ERROR_LINE = re.compile(r"^(?P<path>[^:]+):\d+:\s*error:")


def _mypy_available() -> bool:
    return importlib.util.find_spec("mypy") is not None


def _run_mypy(root: Path, packages: tuple[str, ...]) -> tuple[int, str]:
    targets = [str(root / "src" / "repro" / package) for package in packages]
    process = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary", *targets],
        capture_output=True,
        text=True,
        cwd=root,
    )
    return process.returncode, process.stdout


def _counts_by_package(
    output: str, packages: tuple[str, ...]
) -> dict[str, int]:
    counts = {package: 0 for package in packages}
    for line in output.splitlines():
        match = _ERROR_LINE.match(line.strip())
        if not match:
            continue
        parts = Path(match.group("path")).parts
        # .../src/repro/<package>/...
        for package in packages:
            if "repro" in parts and package in parts[parts.index("repro") :]:
                counts[package] += 1
                break
    return counts


def typing_diagnostics(
    root: str | Path = ".",
    packages: tuple[str, ...] = DEFAULT_PACKAGES,
    update_baseline: bool = False,
) -> list[Diagnostic]:
    """Compare strict-mypy error counts against the committed baseline."""
    root = Path(root)
    baseline_file = root / BASELINE_PATH
    if not _mypy_available():
        return [
            Diagnostic(
                rule="T600",
                severity=INFO,
                location="typing",
                message="mypy is not installed; typing ratchet skipped",
                hint="pip install mypy (the CI static-analysis job runs it)",
            )
        ]
    returncode, output = _run_mypy(root, packages)
    if returncode not in (0, 1):  # 2 = usage/crash, not type errors
        return [
            Diagnostic(
                rule="T604",
                severity=ERROR,
                location="typing",
                message=f"mypy failed to run (exit {returncode}): {output[:200]}",
                hint="check [tool.mypy] in pyproject.toml",
            )
        ]
    counts = _counts_by_package(output, packages)
    baseline: Mapping[str, int] = {}
    if baseline_file.exists():
        baseline = json.loads(baseline_file.read_text(encoding="utf-8"))
    if update_baseline:
        baseline_file.write_text(
            json.dumps(counts, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return [
            Diagnostic(
                rule="T605",
                severity=INFO,
                location="typing",
                message=f"baseline updated: {counts}",
                hint=f"commit {BASELINE_PATH}",
            )
        ]
    diagnostics: list[Diagnostic] = []
    for package in packages:
        count = counts[package]
        location = f"typing:repro.{package}"
        if package not in baseline:
            diagnostics.append(
                Diagnostic(
                    rule="T603",
                    severity=INFO,
                    location=location,
                    message=(
                        f"{count} strict-mypy error(s); package not in the "
                        f"baseline yet"
                    ),
                    hint="record it: repro check --only typing --update-baseline",
                )
            )
        elif count > int(baseline[package]):
            diagnostics.append(
                Diagnostic(
                    rule="T601",
                    severity=ERROR,
                    location=location,
                    message=(
                        f"strict-mypy errors rose from {baseline[package]} "
                        f"to {count}: new typing debt"
                    ),
                    hint="fix the new violations (the ratchet only goes down)",
                )
            )
        elif count < int(baseline[package]):
            diagnostics.append(
                Diagnostic(
                    rule="T602",
                    severity=INFO,
                    location=location,
                    message=(
                        f"strict-mypy errors fell from {baseline[package]} "
                        f"to {count}: debt burned down"
                    ),
                    hint="lock it in: repro check --only typing --update-baseline",
                )
            )
    return diagnostics
