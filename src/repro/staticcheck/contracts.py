"""Cache-key and capability-matrix contract checks (rules ``K4xx``/``M5xx``).

Cache-key completeness (``K401``/``K402``/``K403``)
    The sweep result cache reuses a stored record whenever a new trial's
    :meth:`TrialSpec.cache_key` matches — so a spec field *not* hashed into
    the key silently serves stale results for different experiments.  The
    checker proves participation by perturbation: for every dataclass field
    it builds two otherwise-identical specs differing only in that field and
    requires their keys to differ.  Conditional fields (``scheduler_options``
    joins the payload only alongside a ``scheduler``; ``crn_mode`` only
    alongside a ``crn``) get per-field baselines that make them active.  A
    field with no registered perturbation is itself an error (``K402``), so
    adding a field to a spec without extending the audit — and therefore
    without thinking about the key — fails CI.

Store-field key exclusion (``K404``/``K405``)
    The inverse contract of ``K401``: *store selection* must stay **out** of
    the trial cache key — the same spec has to hit the same record whether a
    local JSONL shard, a SQLite database or an HTTP store serves it, or
    moving a sweep between stores would silently re-execute (or worse,
    fork) its results.  Every ``StoreSpec`` field must be explicitly listed
    in ``STORE_KEY_EXCLUDED_FIELDS`` (``K404`` — adding a store field
    without auditing it fails CI), and no excluded name may appear among
    ``TrialSpec``'s fields or in its canonical key payload (``K405``).

Telemetry key exclusion (``K406``)
    Same inverse contract for the observability layer: run manifests ride
    on records under ``RunRecord.extra["telemetry"]`` and describe *how* a
    trial ran, never *what* it is — so no manifest field name may collide
    with a ``TrialSpec`` field or cache-payload key, and flipping the
    process-global recorder on must leave every spec's ``cache_key()``
    byte-identical (proved by perturbation: the key is computed with
    telemetry off and on and compared).  Otherwise enabling ``--telemetry``
    would fork a sweep's cache.

Capability-matrix coverage (``M501``/``M502``/``M503``)
    ``ENGINE_SCHEDULER_CAPABILITY`` plus the registered policies' declared
    capabilities define which (engine × scheduler) cells exist; the backend
    seam adds (array-engine × backend) cells.  The cross-engine test grid
    declares what it exercises in two literal constants
    (``EXERCISED_CELLS`` / ``EXERCISED_BACKEND_CELLS`` in
    ``tests/engine/test_cross_engine.py``) that a test in the same module
    actually runs, and this checker cross-references the two sets *without
    importing the tests*: a declared-but-untested cell is an error (M501),
    as is a tested-but-undeclared cell (M502, the matrix is out of date).
"""

from __future__ import annotations

import ast
import dataclasses
import json
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.staticcheck.diagnostics import ERROR, Diagnostic

__all__ = [
    "FieldPerturbation",
    "audit_cache_key",
    "capability_matrix_diagnostics",
    "contract_diagnostics",
    "declared_backend_cells",
    "declared_scheduler_cells",
    "exercised_cells",
    "scheduler_spec_perturbations",
    "store_exclusion_diagnostics",
    "telemetry_exclusion_diagnostics",
    "trial_spec_perturbations",
]

#: Engines that consume the array-backend seam (agent/count are pure Python).
ARRAY_ENGINE_NAMES = ("batched", "vector", "multiscale")

#: Where the cross-engine grid declares its coverage.
GRID_TEST_PATH = Path("tests/engine/test_cross_engine.py")


@dataclasses.dataclass(frozen=True)
class FieldPerturbation:
    """How to prove one spec field participates in the cache key.

    ``base`` overrides the shared baseline kwargs (to activate conditional
    fields); ``variant`` is the value substituted for ``field`` in the
    perturbed copy.  The two instances must produce different keys.
    """

    field: str
    variant: object
    base: Mapping[str, object] = dataclasses.field(default_factory=dict)


def audit_cache_key(
    cls,
    baseline: Mapping[str, object],
    perturbations: Sequence[FieldPerturbation],
    key: Callable[[object], str],
    location: str,
) -> list[Diagnostic]:
    """Perturb every field of ``cls`` and require the key to change."""
    diagnostics: list[Diagnostic] = []
    covered = {perturbation.field for perturbation in perturbations}
    for field in dataclasses.fields(cls):
        if not field.init:
            continue
        if field.name not in covered:
            diagnostics.append(
                Diagnostic(
                    rule="K402",
                    severity=ERROR,
                    location=f"{location}.{field.name}",
                    message=(
                        f"field {field.name!r} has no registered cache-key "
                        f"perturbation: its participation in the key is "
                        f"unverified"
                    ),
                    hint=(
                        "extend the audit table in repro.staticcheck.contracts "
                        "(and the key itself, if the field was just added)"
                    ),
                )
            )
    for perturbation in perturbations:
        field_location = f"{location}.{perturbation.field}"
        kwargs = dict(baseline)
        kwargs.update(perturbation.base)
        try:
            base_spec = cls(**kwargs)
            variant_kwargs = dict(kwargs)
            variant_kwargs[perturbation.field] = perturbation.variant
            variant_spec = cls(**variant_kwargs)
        except Exception as error:
            diagnostics.append(
                Diagnostic(
                    rule="K403",
                    severity=ERROR,
                    location=field_location,
                    message=(
                        f"cache-key audit could not construct the perturbed "
                        f"spec: {error}"
                    ),
                    hint="fix the audit table's baseline/variant values",
                )
            )
            continue
        if kwargs[perturbation.field] == perturbation.variant:
            diagnostics.append(
                Diagnostic(
                    rule="K403",
                    severity=ERROR,
                    location=field_location,
                    message="perturbation variant equals the baseline value",
                    hint="pick a distinct variant in the audit table",
                )
            )
            continue
        if key(base_spec) == key(variant_spec):
            diagnostics.append(
                Diagnostic(
                    rule="K401",
                    severity=ERROR,
                    location=field_location,
                    message=(
                        f"changing field {perturbation.field!r} does not "
                        f"change the cache key: cached results would be "
                        f"reused across different experiments"
                    ),
                    hint="hash the field into the canonical key payload",
                )
            )
    return diagnostics


def _epidemic_crn():
    from repro.crn.library import CRN_WORKLOADS

    return CRN_WORKLOADS["epidemic"].crn


def _sir_crn():
    from repro.crn.library import CRN_WORKLOADS

    return CRN_WORKLOADS["sir"].crn


def trial_spec_perturbations() -> tuple[Mapping[str, object], list[FieldPerturbation]]:
    """Baseline kwargs and per-field perturbations for ``TrialSpec``."""
    from repro.core.parameters import ProtocolParameters
    from repro.protocols.epidemic import EpidemicProtocol, epidemic_completion_predicate

    baseline: Mapping[str, object] = {
        "kind": "finite-state",
        "population_size": 64,
        "size_index": 0,
        "run_index": 0,
        "base_seed": 7,
        "engine": "count",
        "max_parallel_time": 32.0,
        "check_interval": None,
        "protocol": "epidemic",
        "protocol_factory": None,
        "predicate": None,
        "engine_options": (),
        "scheduler": None,
        "scheduler_options": (),
        "params": None,
        "track_states": False,
        "crn": None,
        "crn_mode": "uniform",
        "leap_eps": None,
        "regime_thresholds": None,
    }
    crn_base = {
        "kind": "crn",
        "protocol": "epidemic",
        "crn": _epidemic_crn(),
        "crn_mode": "uniform",
    }
    # The multiscale knobs are conditional fields (they join the payload only
    # when set, and only the multiscale engine accepts them), so their
    # perturbations run on a multiscale CRN baseline.
    multiscale_base = dict(crn_base, engine="multiscale")
    perturbations = [
        FieldPerturbation("kind", "sequential", base={"params": ProtocolParameters()}),
        FieldPerturbation("population_size", 65),
        FieldPerturbation("size_index", 1),
        FieldPerturbation("run_index", 1),
        FieldPerturbation("base_seed", 8),
        FieldPerturbation("engine", "agent"),
        FieldPerturbation("max_parallel_time", 16.0),
        FieldPerturbation("check_interval", 16),
        FieldPerturbation("protocol", "majority"),
        FieldPerturbation("protocol_factory", EpidemicProtocol),
        FieldPerturbation("predicate", epidemic_completion_predicate),
        FieldPerturbation("engine_options", (("batch_size", 32),)),
        FieldPerturbation("scheduler", "state-weighted"),
        FieldPerturbation(
            "scheduler_options",
            (("default_rate", 0.5),),
            base={
                "scheduler": "state-weighted",
                "scheduler_options": (("default_rate", 1.0),),
            },
        ),
        FieldPerturbation("params", ProtocolParameters(epochs_factor=6)),
        FieldPerturbation("track_states", True),
        FieldPerturbation("crn", _sir_crn(), base=crn_base),
        FieldPerturbation("crn_mode", "thinned", base=crn_base),
        FieldPerturbation("leap_eps", 0.01, base=multiscale_base),
        FieldPerturbation(
            "regime_thresholds", (10.0, 1e4), base=multiscale_base
        ),
    ]
    return baseline, perturbations


def scheduler_spec_perturbations() -> tuple[Mapping[str, object], list[FieldPerturbation]]:
    """Baseline kwargs and per-field perturbations for ``SchedulerSpec``."""
    baseline: Mapping[str, object] = {
        "name": "state-weighted",
        "options": (("default_rate", 1.0),),
    }
    perturbations = [
        FieldPerturbation("name", "sequential", base={"options": ()}),
        FieldPerturbation("options", (("default_rate", 0.5),)),
    ]
    return baseline, perturbations


def cache_key_diagnostics() -> list[Diagnostic]:
    """Audit the frozen spec dataclasses that key the sweep result cache."""
    from repro.engine.scheduler import SchedulerSpec
    from repro.harness.parallel import TrialSpec

    baseline, perturbations = trial_spec_perturbations()
    diagnostics = audit_cache_key(
        TrialSpec,
        baseline,
        perturbations,
        key=lambda spec: spec.cache_key(),
        location="spec:TrialSpec",
    )
    baseline, perturbations = scheduler_spec_perturbations()
    diagnostics.extend(
        audit_cache_key(
            SchedulerSpec,
            baseline,
            perturbations,
            key=lambda spec: json.dumps(spec.cache_payload(), sort_keys=True),
            location="spec:SchedulerSpec",
        )
    )
    return diagnostics


# ---------------------------------------------------------------------------
# Store-field key exclusion
# ---------------------------------------------------------------------------


def store_exclusion_diagnostics() -> list[Diagnostic]:
    """Prove store-selection fields are *excluded* from the trial cache key.

    Two failure modes, each its own rule:

    ``K404``
        A ``StoreSpec`` field is missing from ``STORE_KEY_EXCLUDED_FIELDS``
        (or the list names a field that no longer exists) — someone added
        or renamed a store field without deciding its key status.
    ``K405``
        An excluded name collides with a ``TrialSpec`` field or appears in
        the canonical key payload — store selection would leak into the
        key, splitting identical trials across stores.
    """
    from repro.harness.parallel import TrialSpec
    from repro.store.base import STORE_KEY_EXCLUDED_FIELDS, StoreSpec

    diagnostics: list[Diagnostic] = []
    excluded = set(STORE_KEY_EXCLUDED_FIELDS)
    spec_fields = {
        field.name for field in dataclasses.fields(StoreSpec) if field.init
    }
    for name in sorted(spec_fields - excluded):
        diagnostics.append(
            Diagnostic(
                rule="K404",
                severity=ERROR,
                location=f"spec:StoreSpec.{name}",
                message=(
                    f"StoreSpec field {name!r} is not audited in "
                    f"STORE_KEY_EXCLUDED_FIELDS: its cache-key status is "
                    f"undecided"
                ),
                hint=(
                    "add the field to STORE_KEY_EXCLUDED_FIELDS in "
                    "repro.store.base (store selection must never key trials)"
                ),
            )
        )
    for name in sorted(excluded - spec_fields):
        diagnostics.append(
            Diagnostic(
                rule="K404",
                severity=ERROR,
                location=f"spec:StoreSpec.{name}",
                message=(
                    f"STORE_KEY_EXCLUDED_FIELDS lists {name!r} but StoreSpec "
                    f"has no such field"
                ),
                hint="the audit list and StoreSpec drifted; update one of them",
            )
        )
    baseline, _ = trial_spec_perturbations()
    payload_keys = set(TrialSpec(**baseline).cache_payload())
    trial_fields = {
        field.name for field in dataclasses.fields(TrialSpec) if field.init
    }
    for name in sorted(excluded):
        if name in trial_fields or name in payload_keys:
            where = "field set" if name in trial_fields else "key payload"
            diagnostics.append(
                Diagnostic(
                    rule="K405",
                    severity=ERROR,
                    location=f"spec:TrialSpec.{name}",
                    message=(
                        f"store-selection name {name!r} appears in TrialSpec's "
                        f"{where}: store choice would leak into the cache key "
                        f"and split identical trials across stores"
                    ),
                    hint=(
                        "rename one side; trial identity and result placement "
                        "must stay orthogonal"
                    ),
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# Telemetry key exclusion
# ---------------------------------------------------------------------------


def telemetry_exclusion_diagnostics(
    manifest_fields: Sequence[str] | None = None,
    telemetry_key: str | None = None,
) -> list[Diagnostic]:
    """Prove telemetry can never participate in trial identity (``K406``).

    Three sub-checks, all under one rule:

    1. Flipping the process-global recorder on must leave every audited
       spec's ``cache_key()`` byte-identical (perturbation over the K401
       baselines).
    2. The ``extra`` key manifests ride under (``"telemetry"``) must not be
       a ``TrialSpec`` field or cache-payload key.
    3. No top-level manifest field name may collide with a ``TrialSpec``
       field or payload key — a collision is how a future refactor would
       silently promote telemetry into identity.

    ``manifest_fields`` / ``telemetry_key`` default to the real constants
    from :mod:`repro.obs.manifest`; tests inject drifted values to prove
    the rule actually fires.
    """
    from repro.harness.parallel import TrialSpec
    from repro.obs.manifest import MANIFEST_FIELDS, TELEMETRY_KEY
    from repro.obs.recorder import RECORDER

    if manifest_fields is None:
        manifest_fields = MANIFEST_FIELDS
    if telemetry_key is None:
        telemetry_key = TELEMETRY_KEY

    diagnostics: list[Diagnostic] = []
    baseline, _ = trial_spec_perturbations()
    spec = TrialSpec(**baseline)

    prior = RECORDER.enabled
    try:
        RECORDER.enabled = False
        key_off = spec.cache_key()
        RECORDER.enabled = True
        key_on = spec.cache_key()
    finally:
        RECORDER.enabled = prior
    if key_off != key_on:
        diagnostics.append(
            Diagnostic(
                rule="K406",
                severity=ERROR,
                location="spec:TrialSpec.cache_key",
                message=(
                    "enabling the telemetry recorder changes cache_key(): "
                    "telemetry state leaks into trial identity, so a "
                    "--telemetry sweep would fork the cache of an identical "
                    "plain sweep"
                ),
                hint=(
                    "cache_payload() must not read repro.obs state; "
                    "telemetry belongs only under record.extra['telemetry']"
                ),
            )
        )

    payload_keys = set(spec.cache_payload())
    trial_fields = {
        field.name for field in dataclasses.fields(TrialSpec) if field.init
    }
    for name in sorted({telemetry_key, *manifest_fields}):
        if name in trial_fields or name in payload_keys:
            where = "field set" if name in trial_fields else "key payload"
            diagnostics.append(
                Diagnostic(
                    rule="K406",
                    severity=ERROR,
                    location=f"spec:TrialSpec.{name}",
                    message=(
                        f"telemetry/manifest name {name!r} appears in "
                        f"TrialSpec's {where}: manifest content would leak "
                        f"into the cache key and split identical trials by "
                        f"how they were observed"
                    ),
                    hint=(
                        "rename the manifest field (repro.obs.manifest."
                        "MANIFEST_FIELDS) or the spec field; trial identity "
                        "and observation must stay orthogonal"
                    ),
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# Capability-matrix coverage
# ---------------------------------------------------------------------------


def declared_scheduler_cells() -> set[tuple[str, str]]:
    """Every (engine, scheduler) cell the capability matrix declares runnable."""
    from repro.engine.selection import engine_scheduler_matrix

    return {
        (engine, scheduler)
        for engine, schedulers in engine_scheduler_matrix().items()
        for scheduler in schedulers
    }


def declared_backend_cells() -> set[tuple[str, str]]:
    """Every (array-engine, backend) cell the backend registry declares."""
    from repro.backend import BACKEND_NAMES

    return {
        (engine, backend)
        for engine in ARRAY_ENGINE_NAMES
        for backend in BACKEND_NAMES
    }


def exercised_cells(
    grid_path: str | Path,
) -> tuple[set[tuple[str, str]] | None, set[tuple[str, str]] | None]:
    """Parse the grid module's literal coverage constants (no test import)."""
    tree = ast.parse(Path(grid_path).read_text(encoding="utf-8"))
    found: dict[str, set[tuple[str, str]]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id in (
                "EXERCISED_CELLS",
                "EXERCISED_BACKEND_CELLS",
            ):
                value = ast.literal_eval(node.value)
                found[target.id] = {(str(a), str(b)) for a, b in value}
    return found.get("EXERCISED_CELLS"), found.get("EXERCISED_BACKEND_CELLS")


def capability_matrix_diagnostics(root: str | Path = ".") -> list[Diagnostic]:
    """Cross-check declared capability cells against the test grid's coverage."""
    grid_path = Path(root) / GRID_TEST_PATH
    location = str(GRID_TEST_PATH)
    if not grid_path.exists():
        return [
            Diagnostic(
                rule="M503",
                severity=ERROR,
                location=location,
                message="cross-engine grid test module not found",
                hint="run repro check from the repository root",
            )
        ]
    try:
        scheduler_cells, backend_cells = exercised_cells(grid_path)
    except (SyntaxError, ValueError) as error:
        return [
            Diagnostic(
                rule="M503",
                severity=ERROR,
                location=location,
                message=f"could not parse coverage constants: {error}",
                hint="EXERCISED_CELLS must be a literal of (engine, scheduler) pairs",
            )
        ]
    diagnostics: list[Diagnostic] = []
    for constant, exercised, declared, kind in (
        ("EXERCISED_CELLS", scheduler_cells, declared_scheduler_cells(), "scheduler"),
        ("EXERCISED_BACKEND_CELLS", backend_cells, declared_backend_cells(), "backend"),
    ):
        if exercised is None:
            diagnostics.append(
                Diagnostic(
                    rule="M503",
                    severity=ERROR,
                    location=location,
                    message=f"coverage constant {constant} not found",
                    hint="declare the grid's coverage as a module-level literal",
                )
            )
            continue
        for engine, other in sorted(declared - exercised):
            diagnostics.append(
                Diagnostic(
                    rule="M501",
                    severity=ERROR,
                    location=location,
                    message=(
                        f"declared {kind} cell ({engine}, {other}) is not "
                        f"exercised by the cross-engine test grid"
                    ),
                    hint=f"add the cell to the grid tests and to {constant}",
                )
            )
        for engine, other in sorted(exercised - declared):
            diagnostics.append(
                Diagnostic(
                    rule="M502",
                    severity=ERROR,
                    location=location,
                    message=(
                        f"{constant} lists ({engine}, {other}) but the "
                        f"capability matrix does not declare that {kind} cell"
                    ),
                    hint="the matrix and the grid drifted; update one of them",
                )
            )
    return diagnostics


def contract_diagnostics(root: str | Path = ".") -> list[Diagnostic]:
    """All contract checks: cache keys, store/telemetry exclusion, coverage."""
    return (
        cache_key_diagnostics()
        + store_exclusion_diagnostics()
        + telemetry_exclusion_diagnostics()
        + capability_matrix_diagnostics(root)
    )
