"""Protocol/CRN semantic analysis (rules ``P1xx`` and ``C2xx``).

The paper's producibility machinery (Section 4, ``termination/producibility``)
asks which states a *dense* configuration can ever produce; here the same
closure is generalised into a static analyzer that runs over every registered
protocol and CRN workload:

``P101`` unreachable state
    A declared state no interaction sequence can produce from the initial
    configuration — dead table rows that can hide typos in transition maps.
``P102`` output instability
    Two reachable states that are *mutually inert* (neither ordering of the
    pair has any effective transition) yet disagree on the protocol output.
    A silent (stably terminal) configuration supported on such a pair never
    reaches consensus — exactly the failure mode the paper's stable-output
    definitions rule out.  Protocols whose output is intentionally
    non-consensus (leader election: one ``True`` agent among ``False``
    followers) carry committed waivers.
``P103`` scheduler starvation
    A reachable *reactive* ordered pair whose state-weighted interaction
    rates multiply to zero: the policy can never schedule the pair, so a
    configuration supported on it is absorbing for the scheduler even though
    the protocol still has work to do.  This is the ``inert_rate`` hazard of
    the thinned CRN lowering made checkable.
``P104`` foreign initial state
    ``initial_state`` returns a state outside the declared state set.

``C201`` dead reaction
    A reaction that can never fire from the network's initial condition
    (reactant never present, or an ``A+A`` reaction whose reactant never
    reaches count 2).  Fireability is computed as a monotone fixpoint over
    present/multi species sets — an over-approximation, so every reported
    dead reaction really is dead.
``C202`` unreachable species
    A species never present in any reachable configuration.
``C203`` non-conserving reaction
    Reactant and product arity differ: not expressible as a population-
    protocol interaction (agents are conserved).
``C204`` invalid rate
    Non-positive or non-finite rate constant.
``C205`` extreme rate dynamic range
    ``max rate / min rate`` beyond ``1e6``: the uniform lowering's null-
    interaction padding makes such networks astronomically slow.
``C206`` tau-leap ill-conditioning
    ``max rate / min rate`` beyond ``1e3``: on the multiscale engine the
    fastest channel pins the Cao leap size, so slow channels see a fraction
    of an event per leap and their relative-change error control loses
    resolution — the leap tolerance has to be tightened to compensate.

Reachability here is the count-agnostic closure of
:mod:`repro.termination.producibility` (``Lambda``): it assumes every
reachable state can appear with multiplicity ≥ 2, which is exactly the
paper's dense-configuration regime (Theorem 4.1) and an over-approximation
otherwise — so *unreachable* verdicts are always sound.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Mapping, Sequence

from repro.staticcheck.diagnostics import ERROR, WARNING, Diagnostic

__all__ = [
    "analyze_crn",
    "analyze_protocol",
    "analyze_registries",
    "reachable_indices",
    "sample_initial_states",
    "starvation_diagnostics",
]

#: How many agent ids to probe when sampling initial states.
_INITIAL_SAMPLE = 64

#: C205 threshold: rate ratios beyond this make the uniform lowering crawl.
_RATE_RANGE_LIMIT = 1e6

#: C206 threshold: rate ratios beyond this make tau-leaping ill-conditioned
#: (the fast channel dictates the leap; slow-channel error control degrades).
_TAU_STIFFNESS_LIMIT = 1e3


def sample_initial_states(protocol) -> tuple[Hashable, ...]:
    """Distinct states ``initial_state`` assigns to agents ``0..63``.

    Covers the leader-style special cases (agent 0 seeded differently) and
    fraction-based assignments; protocols with richer initial conditions can
    pass explicit ``initial_states`` to :func:`analyze_protocol`.
    """
    states = []
    for agent_id in range(_INITIAL_SAMPLE):
        state = protocol.initial_state(agent_id)
        if state not in states:
            states.append(state)
    return tuple(states)


def reachable_indices(table, initial: Iterable[int]) -> frozenset[int]:
    """Closure of state indices under the compiled transition relation.

    The dense-configuration closure ``Lambda`` of the producibility analysis:
    every ordered pair over the current set (including a state with itself)
    is assumed schedulable, and both outcome states of every effective
    transition join the set.
    """
    reach = set(initial)
    frontier = list(reach)
    while frontier:
        next_frontier = []
        current = list(reach)
        for r in current:
            for s in current:
                count = int(table.outcome_count[r, s])
                for k in range(count):
                    for produced in (
                        int(table.outcome_receiver[r, s, k]),
                        int(table.outcome_sender[r, s, k]),
                    ):
                        if produced not in reach:
                            reach.add(produced)
                            next_frontier.append(produced)
        frontier = next_frontier
    return frozenset(reach)


def analyze_protocol(
    protocol,
    location: str,
    initial_states: Sequence[Hashable] | None = None,
    check_output_stability: bool = True,
) -> list[Diagnostic]:
    """Run the ``P1xx`` rules over one finite-state protocol."""
    diagnostics: list[Diagnostic] = []
    try:
        table = protocol.compiled()
    except Exception as error:  # ProtocolError or a broken user protocol
        return [
            Diagnostic(
                rule="P100",
                severity=ERROR,
                location=location,
                message=f"transition table failed to compile: {error}",
                hint="fix the protocol's states()/transitions() declarations",
            )
        ]
    if initial_states is None:
        initial_states = sample_initial_states(protocol)
    initial_indices = []
    for state in initial_states:
        if state not in table.index:
            diagnostics.append(
                Diagnostic(
                    rule="P104",
                    severity=ERROR,
                    location=location,
                    message=(
                        f"initial state {state!r} is not in the declared "
                        f"state set"
                    ),
                    hint="add it to states() or fix initial_state()",
                )
            )
        else:
            initial_indices.append(table.index[state])
    reach = reachable_indices(table, initial_indices)
    unreachable = [
        state for index, state in enumerate(table.states) if index not in reach
    ]
    if unreachable:
        rendered = ", ".join(repr(state) for state in unreachable[:5])
        if len(unreachable) > 5:
            rendered += f", ... ({len(unreachable) - 5} more)"
        diagnostics.append(
            Diagnostic(
                rule="P101",
                severity=WARNING,
                location=location,
                message=(
                    f"{len(unreachable)} of {len(table.states)} states are "
                    f"unreachable from the initial configuration: {rendered}"
                ),
                hint=(
                    "dead states often indicate transition-map typos; remove "
                    "them or extend the initial configuration"
                ),
            )
        )
    if check_output_stability:
        ordered = sorted(reach)
        unstable_pairs = []
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                if not (table.is_null[a, b] and table.is_null[b, a]):
                    continue
                out_a = protocol.output(table.states[a])
                out_b = protocol.output(table.states[b])
                if out_a != out_b:
                    unstable_pairs.append((table.states[a], table.states[b]))
        if unstable_pairs:
            example_a, example_b = unstable_pairs[0]
            diagnostics.append(
                Diagnostic(
                    rule="P102",
                    severity=WARNING,
                    location=location,
                    message=(
                        f"{len(unstable_pairs)} reachable mutually-inert state "
                        f"pair(s) disagree on output (e.g. {example_a!r} vs "
                        f"{example_b!r}): a silent configuration containing "
                        f"such a pair never reaches output consensus"
                    ),
                    hint=(
                        "add a resolving transition, or waive if the output "
                        "is intentionally non-consensus (e.g. leader election)"
                    ),
                )
            )
    return diagnostics


def starvation_diagnostics(
    table,
    reach: frozenset[int],
    rates: Mapping[Hashable, float],
    location: str,
    default_rate: float = 1.0,
) -> list[Diagnostic]:
    """``P103``: reachable reactive pairs a state-weighted policy never picks."""
    diagnostics = []
    for r in sorted(reach):
        for s in sorted(reach):
            if int(table.outcome_count[r, s]) == 0:
                continue
            rate_r = float(rates.get(table.states[r], default_rate))
            rate_s = float(rates.get(table.states[s], default_rate))
            if rate_r * rate_s == 0.0:
                starved = table.states[r] if rate_r == 0.0 else table.states[s]
                diagnostics.append(
                    Diagnostic(
                        rule="P103",
                        severity=ERROR,
                        location=location,
                        message=(
                            f"reactive pair ({table.states[r]!r}, "
                            f"{table.states[s]!r}) is reachable but state "
                            f"{starved!r} has interaction rate 0: the "
                            f"state-weighted scheduler can never fire it "
                            f"(absorbing configuration)"
                        ),
                        hint=(
                            "give the state a positive rate (the thinned CRN "
                            "lowering floors rates at inert_rate for exactly "
                            "this reason)"
                        ),
                    )
                )
    return diagnostics


def _crn_initial_sets(crn) -> tuple[set, set]:
    """(present, multi) species sets of the network's initial condition."""
    seeds = dict(crn.seeds)
    present = {species for species, count in seeds.items() if count > 0}
    multi = {species for species, count in seeds.items() if count >= 2}
    for species, fraction in dict(crn.fractions).items():
        if fraction > 0:
            present.add(species)
            # A positive fraction of a large population is >= 2 agents.
            multi.add(species)
    return present, multi


def analyze_crn(crn, location: str) -> list[Diagnostic]:
    """Run the ``C2xx`` rules (plus the thinned-lowering ``P103``) over a CRN."""
    diagnostics: list[Diagnostic] = []
    model_valid = True
    rates = []
    for index, reaction in enumerate(crn.reactions):
        reaction_location = f"{location}:reaction[{index}]"
        label = getattr(reaction, "text", lambda: repr(reaction))()
        if len(reaction.reactants) != len(reaction.products):
            model_valid = False
            diagnostics.append(
                Diagnostic(
                    rule="C203",
                    severity=ERROR,
                    location=reaction_location,
                    message=(
                        f"reaction {label} has {len(reaction.reactants)} "
                        f"reactant(s) but {len(reaction.products)} product(s); "
                        f"population protocols conserve agents"
                    ),
                    hint="balance the reaction (pad with an inert species)",
                )
            )
        rate = reaction.rate
        if not isinstance(rate, (int, float)) or not math.isfinite(rate) or rate <= 0:
            model_valid = False
            diagnostics.append(
                Diagnostic(
                    rule="C204",
                    severity=ERROR,
                    location=reaction_location,
                    message=f"reaction {label} has invalid rate {rate!r}",
                    hint="rate constants must be positive finite numbers",
                )
            )
        else:
            rates.append(float(rate))
    if rates and max(rates) / min(rates) > _RATE_RANGE_LIMIT:
        diagnostics.append(
            Diagnostic(
                rule="C205",
                severity=WARNING,
                location=location,
                message=(
                    f"rate constants span a {max(rates) / min(rates):.1e} "
                    f"dynamic range; the uniform lowering pads slow reactions "
                    f"with null interactions proportionally"
                ),
                hint="rescale rates or prefer the thinned lowering",
            )
        )
    if rates and max(rates) / min(rates) > _TAU_STIFFNESS_LIMIT:
        diagnostics.append(
            Diagnostic(
                rule="C206",
                severity=WARNING,
                location=location,
                message=(
                    f"rate constants span a {max(rates) / min(rates):.1e} "
                    f"dynamic range: tau-leaping is ill-conditioned (the "
                    f"fastest channel pins the leap size, so slow channels "
                    f"average under one event per leap and lose error-control "
                    f"resolution)"
                ),
                hint=(
                    "on the multiscale engine, tighten --leap-eps (smaller "
                    "epsilon) to keep slow-channel statistics faithful, or "
                    "run an exact engine"
                ),
            )
        )

    # Fireability fixpoint: which reactions can ever fire, which species can
    # ever be present, starting from seeds + fractions.
    present, multi = _crn_initial_sets(crn)
    pending = list(enumerate(crn.reactions))
    fired: set[int] = set()
    progress = True
    while progress:
        progress = False
        for index, reaction in list(pending):
            reactants = list(reaction.reactants)
            if any(species not in present for species in reactants):
                continue
            if (
                len(reactants) == 2
                and reactants[0] == reactants[1]
                and reactants[0] not in multi
            ):
                continue
            fired.add(index)
            pending.remove((index, reaction))
            progress = True
            for species in reaction.products:
                # Over-approximate counts: anything produced may reach 2.
                present.add(species)
                multi.add(species)
    for index, reaction in pending:
        diagnostics.append(
            Diagnostic(
                rule="C201",
                severity=ERROR,
                location=f"{location}:reaction[{index}]",
                message=(
                    f"reaction {reaction.text()} can never fire from the "
                    f"initial condition (seeds={dict(crn.seeds)}, "
                    f"fractions={dict(crn.fractions)})"
                ),
                hint=(
                    "seed the missing reactant (or remove the reaction); an "
                    "A+A reaction needs A to reach count 2"
                ),
            )
        )
    unreachable_species = [
        species for species in crn.species() if species not in present
    ]
    if unreachable_species:
        diagnostics.append(
            Diagnostic(
                rule="C202",
                severity=WARNING,
                location=location,
                message=(
                    f"species never present in any reachable configuration: "
                    f"{', '.join(unreachable_species)}"
                ),
                hint="seed them, produce them, or drop them from the network",
            )
        )

    # The thinned lowering's scheduler must still be able to fire every
    # reachable reactive pair (the inert_rate hazard, rule P103).
    if model_valid and not pending:
        from repro.crn.compile import compile_crn

        try:
            compiled = compile_crn(crn, mode="thinned")
        except Exception as error:
            diagnostics.append(
                Diagnostic(
                    rule="C200",
                    severity=ERROR,
                    location=location,
                    message=f"thinned lowering failed to compile: {error}",
                    hint="fix the network definition",
                )
            )
            return diagnostics
        table = compiled.protocol.compiled()
        initial_present, _ = _crn_initial_sets(crn)
        reach = reachable_indices(
            table,
            [table.index[s] for s in initial_present if s in table.index],
        )
        diagnostics.extend(
            starvation_diagnostics(
                table,
                reach,
                dict(compiled.state_rates or {}),
                location=f"{location}:thinned",
            )
        )
    return diagnostics


def analyze_registries() -> list[Diagnostic]:
    """Analyze every registered finite-state workload and CRN workload."""
    from repro.crn.library import CRN_WORKLOADS
    from repro.harness.parallel import WORKLOADS

    diagnostics: list[Diagnostic] = []
    for name, workload in sorted(WORKLOADS.items()):
        try:
            protocol = workload.factory()
        except Exception as error:
            diagnostics.append(
                Diagnostic(
                    rule="P100",
                    severity=ERROR,
                    location=f"protocol:{name}",
                    message=f"workload factory failed: {error}",
                    hint="fix the registered factory",
                )
            )
            continue
        diagnostics.extend(analyze_protocol(protocol, location=f"protocol:{name}"))
    for name, workload in sorted(CRN_WORKLOADS.items()):
        diagnostics.extend(analyze_crn(workload.crn, location=f"crn:{name}"))
    return diagnostics
