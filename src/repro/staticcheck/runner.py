"""Orchestration for ``repro check``: run analyzer families, apply waivers.

The four families are independently selectable (``--only``):

``semantic``
    Protocol/CRN analysis over every registered workload (``P1xx``/``C2xx``).
``lint``
    The AST determinism lint over ``src/repro`` (``D3xx``).
``contracts``
    Cache-key completeness and capability-matrix coverage (``K4xx``/``M5xx``).
``typing``
    The strict-mypy ratchet (``T6xx``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.staticcheck.diagnostics import (
    Diagnostic,
    Waiver,
    apply_waivers,
    exit_code,
    load_waiver_file,
)
from repro.staticcheck.waivers import BUILTIN_WAIVERS

__all__ = ["FAMILIES", "run_check"]

FAMILIES = ("semantic", "lint", "contracts", "typing")

#: What the determinism lint scans when no explicit paths are given.
DEFAULT_LINT_PATHS = ("src/repro",)


def run_check(
    root: str | Path = ".",
    only: Sequence[str] | None = None,
    lint_paths: Sequence[str] | None = None,
    waiver_file: str | Path | None = None,
    update_baseline: bool = False,
) -> tuple[list[Diagnostic], int]:
    """Run the selected analyzer families; return (diagnostics, exit code)."""
    root = Path(root)
    families = tuple(only) if only else FAMILIES
    unknown = set(families) - set(FAMILIES)
    if unknown:
        raise ValueError(
            f"unknown analyzer families: {', '.join(sorted(unknown))} "
            f"(expected {', '.join(FAMILIES)})"
        )
    diagnostics: list[Diagnostic] = []
    if "semantic" in families:
        from repro.staticcheck.semantic import analyze_registries

        diagnostics.extend(analyze_registries())
    if "lint" in families:
        from repro.staticcheck.lint import lint_paths as run_lint

        diagnostics.extend(
            run_lint(list(lint_paths or DEFAULT_LINT_PATHS), root=root)
        )
    if "contracts" in families:
        from repro.staticcheck.contracts import contract_diagnostics

        diagnostics.extend(contract_diagnostics(root))
    if "typing" in families:
        from repro.staticcheck.typing_ratchet import typing_diagnostics

        diagnostics.extend(
            typing_diagnostics(root, update_baseline=update_baseline)
        )
    waivers: tuple[Waiver, ...] = BUILTIN_WAIVERS
    if waiver_file is not None:
        waivers = waivers + load_waiver_file(waiver_file)
    # Only waivers relevant to the selected families should count as "used";
    # filter the builtin list by the rule prefixes each family owns so a
    # partial run does not report the other families' waivers as stale.
    prefixes = {
        "semantic": ("P", "C"),
        "lint": ("D",),
        "contracts": ("K", "M"),
        "typing": ("T",),
    }
    active = tuple(prefix for family in families for prefix in prefixes[family])
    waivers = tuple(w for w in waivers if w.rule.startswith(active))
    # A narrowed lint scope legitimately leaves lint waivers unmatched.
    suppress = ("D",) if lint_paths else ()
    diagnostics = apply_waivers(
        diagnostics, waivers, suppress_unused_prefixes=suppress
    )
    return diagnostics, exit_code(diagnostics)
