"""Structured diagnostics shared by every ``repro check`` analyzer family.

A :class:`Diagnostic` is one finding: a stable rule id (``P101``, ``D301``,
``K401``, ...), a severity, a location (either ``path:line`` for source-level
rules or a logical coordinate such as ``protocol:leader`` for semantic
rules), a human message and a fix hint.  Analyzers return plain lists of
diagnostics; the runner applies waivers, renders text or JSON and computes
the process exit code.

Waivers
-------
A :class:`Waiver` suppresses one rule at one location *with a recorded
justification* — the point is accountability, not silencing: waived
diagnostics still appear in the output, marked with the justification, and
an unused waiver is itself reported (rule ``W001``) so stale exceptions
cannot accumulate.  Waivers match by exact rule id and by location prefix
(so ``src/repro/backend/numba_backend.py`` waives every line in that file).

The committed waivers for this repository live in
:mod:`repro.staticcheck.waivers`; ad-hoc ones can be supplied to
``repro check --waivers FILE`` as JSON::

    {"waivers": [{"rule": "D301",
                  "location": "src/repro/backend/numba_backend.py",
                  "justification": "nopython kernels; seeded per call"}]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "Diagnostic",
    "ERROR",
    "INFO",
    "SEVERITIES",
    "WARNING",
    "Waiver",
    "apply_waivers",
    "exit_code",
    "load_waiver_file",
    "render_json",
    "render_text",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"
SEVERITIES = (ERROR, WARNING, INFO)

#: Rule id used to report waivers that matched nothing.
UNUSED_WAIVER_RULE = "W001"


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    Attributes
    ----------
    rule:
        Stable rule id (``P1xx`` protocol semantics, ``C2xx`` CRN semantics,
        ``D3xx`` determinism lint, ``K4xx`` cache-key contracts, ``M5xx``
        capability matrix, ``T6xx`` typing ratchet, ``W0xx`` meta).
    severity:
        ``"error"`` fails the check (unless waived), ``"warning"`` and
        ``"info"`` never do.
    location:
        ``path:line`` for source rules, or a logical coordinate such as
        ``protocol:majority`` / ``crn:epidemic`` / ``spec:TrialSpec``.
    message:
        What was found.
    hint:
        How to fix it (or how to waive it when the finding is intended).
    waived_by:
        Justification text of the waiver that matched, if any.
    """

    rule: str
    severity: str
    location: str
    message: str
    hint: str = ""
    waived_by: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def waived(self) -> bool:
        return self.waived_by is not None

    def as_dict(self) -> dict:
        payload = {
            "rule": self.rule,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }
        if self.waived_by is not None:
            payload["waived_by"] = self.waived_by
        return payload


@dataclass(frozen=True)
class Waiver:
    """A justified exception: suppress ``rule`` at locations under ``location``."""

    rule: str
    location: str
    justification: str

    def matches(self, diagnostic: Diagnostic) -> bool:
        return diagnostic.rule == self.rule and diagnostic.location.startswith(
            self.location
        )


def load_waiver_file(path: str | Path) -> tuple[Waiver, ...]:
    """Parse a JSON waiver file (see module docstring for the format)."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = raw.get("waivers", raw) if isinstance(raw, dict) else raw
    if not isinstance(entries, list):
        raise ValueError(f"waiver file {path}: expected a list of waiver objects")
    waivers = []
    for index, entry in enumerate(entries):
        try:
            waivers.append(
                Waiver(
                    rule=entry["rule"],
                    location=entry["location"],
                    justification=entry["justification"],
                )
            )
        except (TypeError, KeyError) as error:
            raise ValueError(
                f"waiver file {path}: entry {index} needs rule/location/"
                f"justification keys ({error})"
            ) from None
    return tuple(waivers)


def apply_waivers(
    diagnostics: Iterable[Diagnostic],
    waivers: Sequence[Waiver],
    suppress_unused_prefixes: Sequence[str] = (),
) -> list[Diagnostic]:
    """Mark waived diagnostics and append ``W001`` for unused waivers.

    ``suppress_unused_prefixes`` lists rule prefixes whose waivers should
    not be reported as stale — used when an analyzer family ran on a
    narrowed scope (e.g. ``--paths``), so its waivers may legitimately have
    had nothing to match.
    """
    used = [False] * len(waivers)
    result = []
    for diagnostic in diagnostics:
        for index, waiver in enumerate(waivers):
            if waiver.matches(diagnostic):
                used[index] = True
                diagnostic = replace(diagnostic, waived_by=waiver.justification)
                break
        result.append(diagnostic)
    for waiver, was_used in zip(waivers, used):
        if not was_used and not waiver.rule.startswith(
            tuple(suppress_unused_prefixes) or ("\0",)
        ):
            result.append(
                Diagnostic(
                    rule=UNUSED_WAIVER_RULE,
                    severity=WARNING,
                    location=waiver.location,
                    message=(
                        f"waiver for {waiver.rule} at {waiver.location!r} matched "
                        f"no diagnostic"
                    ),
                    hint="delete the stale waiver (or fix its location prefix)",
                )
            )
    return result


def exit_code(diagnostics: Iterable[Diagnostic]) -> int:
    """0 when every error is waived, 1 otherwise (warnings never fail)."""
    for diagnostic in diagnostics:
        if diagnostic.severity == ERROR and not diagnostic.waived:
            return 1
    return 0


_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


def _sorted(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    return sorted(
        diagnostics,
        key=lambda d: (_SEVERITY_ORDER[d.severity], d.rule, d.location),
    )


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """Human-readable report, errors first."""
    diagnostics = _sorted(diagnostics)
    if not diagnostics:
        return "repro check: clean (no diagnostics)"
    lines = []
    counts = {ERROR: 0, WARNING: 0, INFO: 0}
    for diagnostic in diagnostics:
        if not diagnostic.waived:
            counts[diagnostic.severity] += 1
        flag = " [waived: " + diagnostic.waived_by + "]" if diagnostic.waived else ""
        lines.append(
            f"{diagnostic.severity.upper():7s} {diagnostic.rule} "
            f"{diagnostic.location}: {diagnostic.message}{flag}"
        )
        if diagnostic.hint:
            lines.append(f"        hint: {diagnostic.hint}")
    lines.append(
        f"{counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
        f"{counts[INFO]} info (waived findings excluded from counts)"
    )
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """Machine-readable report (stable field names, errors first)."""
    diagnostics = _sorted(diagnostics)
    payload = {
        "diagnostics": [diagnostic.as_dict() for diagnostic in diagnostics],
        "summary": {
            severity: sum(
                1
                for diagnostic in diagnostics
                if diagnostic.severity == severity and not diagnostic.waived
            )
            for severity in SEVERITIES
        },
        "exit_code": exit_code(diagnostics),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
