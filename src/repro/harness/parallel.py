"""Parallel sweep orchestration: picklable trial specs + a worker-pool driver.

PR 1 made *single runs* fast (the batched engine); this module makes *sweeps*
fast.  A sweep — every Figure-2 / termination / cross-engine experiment — is
a list of independent trials, one per ``(protocol, n, run, engine)``
combination.  Each trial is described by a frozen, picklable
:class:`TrialSpec`; :func:`run_trial` executes one spec to a
:class:`~repro.harness.results.RunRecord`; :func:`run_trials` maps specs over
a ``multiprocessing`` worker pool (or serially for ``workers=1``) and
optionally through a :class:`~repro.harness.cache.ResultCache`, so
interrupted sweeps resume without recomputing finished trials.

Determinism
-----------
A trial's randomness depends only on its spec: the per-trial seed is derived
from ``(base_seed, size_index, run_index)`` via
:func:`repro.rng.spawn_seed` (``numpy.random.SeedSequence`` spawning), never
from worker identity or scheduling order, and results are collected in spec
order.  ``workers=4`` therefore produces record-for-record identical output
to ``workers=1``.

Workload registry
-----------------
Cached/parallel sweeps driven from the CLI reference protocols *by name*
through :data:`WORKLOADS` (finite-state protocols, runnable on any engine of
:data:`repro.engine.selection.ENGINE_NAMES`) or :data:`VECTOR_WORKLOADS`
(bespoke vector-engine kernels for the non-finite-state paper protocols:
``figure2``, ``leader-terminating``); worker processes re-import this
module, so both registries are always available on the far side of the
pickle boundary.  CRN trials (``kind="crn"``,
:func:`build_crn_trials`) reference :data:`repro.crn.library.CRN_WORKLOADS`
for their predicate but embed the *network itself* in the spec, so the full
reaction system — every rate constant — participates in the cache key.
Library callers may instead embed ``protocol_factory``/``predicate``
callables in the spec; with ``workers > 1`` those callables must be
picklable (module-level functions or classes, not lambdas or closures).
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field, fields
from typing import Callable, Mapping, Sequence

from repro.core.parameters import ProtocolParameters
from repro.exceptions import ConvergenceError, SimulationError
from repro.harness.cache import ResultCache
from repro.harness.results import RunRecord
from repro.obs.manifest import TELEMETRY_KEY, trial_manifest
from repro.obs.progress import SweepProgress
from repro.obs.recorder import RECORDER as _REC
from repro.protocols.base import FiniteStateProtocol
from repro.rng import spawn_seed

__all__ = [
    "KIND_ARRAY",
    "KIND_CRN",
    "KIND_FINITE_STATE",
    "KIND_SEQUENTIAL",
    "KIND_VECTOR",
    "VECTOR_WORKLOADS",
    "WORKLOADS",
    "FiniteStateWorkload",
    "SweepOutcome",
    "TrialSpec",
    "VectorWorkload",
    "build_crn_trials",
    "build_finite_state_trials",
    "build_vector_trials",
    "get_vector_workload",
    "get_workload",
    "register_vector_workload",
    "register_workload",
    "run_trial",
    "run_trials",
]

#: Trial kinds understood by :func:`run_trial`.
KIND_FINITE_STATE = "finite-state"
KIND_ARRAY = "array"
KIND_SEQUENTIAL = "sequential"
KIND_VECTOR = "vector"
KIND_CRN = "crn"
_KINDS = (KIND_FINITE_STATE, KIND_ARRAY, KIND_SEQUENTIAL, KIND_VECTOR, KIND_CRN)


# ---------------------------------------------------------------------------
# Workload registry (finite-state protocols referenced by name)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FiniteStateWorkload:
    """A named finite-state workload runnable by the sweep driver and CLI.

    Attributes
    ----------
    name:
        Registry key (``repro sweep --protocol <name>``).
    factory:
        Zero-argument callable building a fresh protocol per trial.
    predicate:
        Convergence predicate over the count-level engine interface.
    description:
        One line for ``--help`` output.
    default_population:
        Default ``n`` for single-shot CLI runs.
    default_budget:
        Parallel-time budget as a function of ``n``.
    scheduler / scheduler_options:
        Optional scheduler variant baked into the workload (used when a
        trial does not choose a scheduler explicitly), so registries can
        carry e.g. a two-block flavour of an existing workload as its own
        named entry.
    """

    name: str
    factory: Callable[[], FiniteStateProtocol]
    predicate: Callable[..., bool]
    description: str
    default_population: int
    default_budget: Callable[[int], float]
    scheduler: str | None = None
    scheduler_options: tuple[tuple[str, object], ...] = ()


WORKLOADS: dict[str, FiniteStateWorkload] = {}


def register_workload(workload: FiniteStateWorkload) -> FiniteStateWorkload:
    """Register a named workload (overwrites an existing entry)."""
    WORKLOADS[workload.name] = workload
    return workload


def get_workload(name: str) -> FiniteStateWorkload:
    """Look up a registered workload, raising :class:`SimulationError` if absent."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise SimulationError(
            f"unknown workload {name!r}; registered: {', '.join(sorted(WORKLOADS))}"
        ) from None


def _register_builtin_workloads() -> None:
    # Imported lazily so importing the harness does not pull every protocol
    # module at module-import time in a fixed order; the worker side re-runs
    # this at import, so name lookups succeed in any start method.
    from repro.protocols.epidemic import (
        EpidemicProtocol,
        epidemic_completion_predicate,
    )
    from repro.protocols.leader_election import (
        FiniteStateCounterTermination,
        FiniteStatePairwiseElimination,
        termination_signal_predicate,
        unique_leader_predicate,
    )
    from repro.protocols.majority import (
        ApproximateMajorityProtocol,
        majority_consensus_predicate,
    )

    register_workload(
        FiniteStateWorkload(
            name="epidemic",
            factory=EpidemicProtocol,
            predicate=epidemic_completion_predicate,
            description="one-way epidemic until the whole population is infected",
            default_population=100_000,
            default_budget=lambda n: 200.0,
        )
    )
    register_workload(
        FiniteStateWorkload(
            name="majority",
            factory=ApproximateMajorityProtocol,
            predicate=majority_consensus_predicate,
            description="3-state approximate majority until consensus",
            default_population=100_000,
            default_budget=lambda n: 200.0,
        )
    )
    register_workload(
        FiniteStateWorkload(
            name="leader",
            factory=FiniteStatePairwiseElimination,
            predicate=unique_leader_predicate,
            description="pairwise-elimination leader election until one leader remains",
            default_population=2_000,
            # The election needs Theta(n) parallel time (Theta(n^2) interactions).
            default_budget=lambda n: 4.0 * n,
        )
    )
    register_workload(
        FiniteStateWorkload(
            name="termination",
            factory=lambda: FiniteStateCounterTermination(counter_threshold=8),
            predicate=termination_signal_predicate,
            description="Figure-1 counter protocol until the first termination signal",
            default_population=100_000,
            default_budget=lambda n: 200.0,
        )
    )


_register_builtin_workloads()


# ---------------------------------------------------------------------------
# Vector workloads (non-finite-state protocols on the vector engine)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VectorWorkload:
    """A named vector-engine workload runnable by the sweep driver and CLI.

    These cover the paper protocols that are *not* finite-state (their agents
    carry unbounded integer fields) and therefore run as bespoke
    :class:`~repro.engine.vector.VectorProtocol` kernels rather than through
    :func:`repro.engine.selection.build_engine`.

    Attributes
    ----------
    name:
        Registry key (``repro sweep --engine vector --protocol <name>``).
    kernel_factory:
        Callable ``(params, **options) -> VectorProtocol`` building a fresh
        kernel per trial (options come from ``TrialSpec.engine_options``,
        e.g. ``phase_count`` for the leader-terminating protocol).
    description:
        One line for ``--help`` output.
    default_population:
        Default ``n`` for single-shot CLI runs.
    default_budget:
        Parallel-time budget as ``(n, params, **options) -> float``.
    scheduler / scheduler_options:
        Optional round-scheduler variant baked into the workload (used when
        a trial does not choose a scheduler explicitly).
    """

    name: str
    kernel_factory: Callable[..., object]
    description: str
    default_population: int
    default_budget: Callable[..., float]
    scheduler: str | None = None
    scheduler_options: tuple[tuple[str, object], ...] = ()


VECTOR_WORKLOADS: dict[str, VectorWorkload] = {}


def register_vector_workload(workload: VectorWorkload) -> VectorWorkload:
    """Register a named vector workload (overwrites an existing entry)."""
    VECTOR_WORKLOADS[workload.name] = workload
    return workload


def get_vector_workload(name: str) -> VectorWorkload:
    """Look up a registered vector workload, raising :class:`SimulationError`."""
    try:
        return VECTOR_WORKLOADS[name]
    except KeyError:
        raise SimulationError(
            f"unknown vector workload {name!r}; registered: "
            f"{', '.join(sorted(VECTOR_WORKLOADS))}"
        ) from None


def _register_builtin_vector_workloads() -> None:
    # Imported lazily for the same reason as the finite-state registry.
    from repro.core.array_simulator import (
        LogSizeVectorProtocol,
        expected_convergence_time,
    )
    from repro.core.vector_leader import (
        LeaderTerminatingVectorProtocol,
        expected_termination_time,
    )

    def _figure2_budget(population_size, params, **_options):
        return 4.0 * expected_convergence_time(population_size, params)

    def _leader_budget(population_size, params, **options):
        return 4.0 * expected_termination_time(population_size, params, **options)

    register_vector_workload(
        VectorWorkload(
            name="figure2",
            kernel_factory=LogSizeVectorProtocol,
            description=(
                "Log-Size-Estimation until every agent is done (the Figure 2 "
                "convergence sweep)"
            ),
            default_population=100_000,
            default_budget=_figure2_budget,
        )
    )
    register_vector_workload(
        VectorWorkload(
            name="leader-terminating",
            kernel_factory=LeaderTerminatingVectorProtocol,
            description=(
                "Theorem 3.13 leader-driven terminating size estimation until "
                "the termination signal reaches every agent"
            ),
            default_population=100_000,
            default_budget=_leader_budget,
        )
    )


_register_builtin_vector_workloads()


# ---------------------------------------------------------------------------
# Trial specification
# ---------------------------------------------------------------------------


def _callable_ref(value: Callable | None) -> str | None:
    """Stable textual reference to a callable, for hashing into cache keys."""
    if value is None:
        return None
    module = getattr(value, "__module__", type(value).__module__)
    qualname = getattr(value, "__qualname__", type(value).__qualname__)
    return f"{module}:{qualname}"


@dataclass(frozen=True)
class TrialSpec:
    """One simulation trial, fully described by picklable data.

    The spec is the unit of parallelism *and* the unit of caching: a worker
    process receives the spec (nothing else), and the cache key is a hash of
    every field, so any change to the sweep — protocol, size, run index,
    base seed, engine, budget, options — invalidates exactly the affected
    trials.

    Attributes
    ----------
    kind:
        ``"finite-state"`` (any registered/supplied finite-state protocol on
        a selectable engine), ``"vector"`` (a registered
        :data:`VECTOR_WORKLOADS` kernel on the vector engine), ``"array"``
        (vectorised ``Log-Size-Estimation``; the historical alias for the
        ``"figure2"`` vector workload), or ``"sequential"`` (agent-level
        ``Log-Size-Estimation``).
    population_size / size_index / run_index / base_seed:
        Trial coordinates; the per-trial seed is
        ``spawn_seed(base_seed, size_index, run_index)``.
    engine:
        Engine name for finite-state trials (one of
        :data:`repro.engine.selection.ENGINE_NAMES`); informational for the
        estimation kinds.
    max_parallel_time:
        Budget before the trial is recorded as non-converged.
    protocol:
        Name of a registered workload (preferred for cached sweeps), or
        ``None`` when ``protocol_factory``/``predicate`` are given directly.
    protocol_factory / predicate:
        Direct callables (must be picklable for ``workers > 1``).
    engine_options:
        Canonicalised ``(key, value)`` pairs forwarded to
        :func:`repro.engine.selection.build_engine`.
    scheduler / scheduler_options:
        Scheduling policy name and canonicalised option pairs.  ``None``
        selects the engine's default policy (sequential, or matching on the
        round-based kinds); an explicit choice is validated against the
        engine × scheduler compatibility matrix at spec construction and
        participates in the cache key, so a cached uniform-scheduler trial
        is never replayed for a non-uniform run.
    params:
        :class:`ProtocolParameters` for the estimation kinds.
    track_states:
        Sequential kind only: enable per-agent state tracking.
    crn / crn_mode:
        CRN kind only: the embedded :class:`~repro.crn.model.CRN` (the full
        network travels in the spec, so its canonical form — every rate
        constant, product orientation and initial condition — participates
        in the cache key; a cached trial is never replayed for a modified
        network) and the lowering mode (``"uniform"`` or ``"thinned"``; the
        thinned lowering runs only on the count and batched engines).
    leap_eps / regime_thresholds:
        Multiscale engine only: the tau-leap relative-propensity tolerance
        (Cao's epsilon) and the ``(critical, ode)`` per-species count
        thresholds of the regime controller.  Both change the sampled
        trajectory, so they participate in the cache key (joining only when
        set, like the scheduler); ``None`` uses the engine defaults.
    """

    kind: str
    population_size: int
    size_index: int
    run_index: int
    base_seed: int = 0
    engine: str = "count"
    max_parallel_time: float = 100.0
    check_interval: int | None = None
    protocol: str | None = None
    protocol_factory: Callable[[], FiniteStateProtocol] | None = None
    predicate: Callable[..., bool] | None = None
    engine_options: tuple[tuple[str, object], ...] = ()
    scheduler: str | None = None
    scheduler_options: tuple[tuple[str, object], ...] = ()
    params: ProtocolParameters | None = None
    track_states: bool = False
    crn: "object | None" = None
    crn_mode: str = "uniform"
    leap_eps: float | None = None
    regime_thresholds: "tuple[float, float] | None" = None

    def __post_init__(self) -> None:
        # leap_eps / regime_thresholds may arrive through **engine_options
        # (the builders take them as keyword options); hoist them into the
        # dedicated fields so every spelling hashes to one cache key.
        options = dict(self.engine_options)
        hoisted = False
        for name in ("leap_eps", "regime_thresholds"):
            if name in options:
                if getattr(self, name) is not None:
                    raise SimulationError(
                        f"{name} was given both as a TrialSpec field and in "
                        f"engine_options; set it once"
                    )
                object.__setattr__(self, name, options.pop(name))
                hoisted = True
        if hoisted:
            object.__setattr__(
                self, "engine_options", tuple(sorted(options.items()))
            )
        if self.kind not in _KINDS:
            raise SimulationError(
                f"unknown trial kind {self.kind!r}; expected one of {', '.join(_KINDS)}"
            )
        if self.population_size < 2:
            raise SimulationError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if self.size_index < 0 or self.run_index < 0:
            raise SimulationError(
                f"size_index and run_index must be >= 0, got "
                f"({self.size_index}, {self.run_index})"
            )
        if self.max_parallel_time <= 0:
            raise SimulationError(
                f"max_parallel_time must be positive, got {self.max_parallel_time}"
            )
        if self.kind == KIND_FINITE_STATE:
            if self.protocol is None and (
                self.protocol_factory is None or self.predicate is None
            ):
                raise SimulationError(
                    "a finite-state trial needs either a registered workload name "
                    "(protocol=...) or explicit protocol_factory and predicate"
                )
            from repro.engine.selection import ENGINE_NAMES

            if self.engine not in ENGINE_NAMES:
                raise SimulationError(
                    f"unknown engine {self.engine!r}; expected one of "
                    f"{', '.join(ENGINE_NAMES)}"
                )
        elif self.kind == KIND_VECTOR:
            if self.protocol is None:
                raise SimulationError(
                    "a vector trial needs a registered vector workload name "
                    "(protocol=...)"
                )
            if self.params is None:
                raise SimulationError(
                    f"{self.kind} trials need ProtocolParameters (params=...)"
                )
        elif self.kind == KIND_CRN:
            self._validate_crn()
        elif self.params is None:
            raise SimulationError(
                f"{self.kind} trials need ProtocolParameters (params=...)"
            )
        if self.kind != KIND_CRN and self.crn is not None:
            raise SimulationError(
                f"{self.kind} trials do not take a CRN (crn=...); use kind='crn'"
            )
        if self.scheduler is not None:
            self._validate_scheduler()
        elif self.scheduler_options:
            raise SimulationError(
                "scheduler_options were given without a scheduler; they would "
                "be silently ignored (set scheduler=... as well)"
            )
        self._validate_multiscale_knobs()

    def _validate_multiscale_knobs(self) -> None:
        """Fail fast on tau-leap/regime knobs (build time, not mid-sweep)."""
        if self.leap_eps is None and self.regime_thresholds is None:
            return
        if self.engine != "multiscale":
            raise SimulationError(
                f"leap_eps/regime_thresholds tune the multiscale engine's "
                f"tau-leap error control and regime switching; the "
                f"{self.engine} engine does not read them"
            )
        if self.leap_eps is not None:
            eps = float(self.leap_eps)
            if not 0.0 < eps <= 0.5:
                raise SimulationError(
                    f"leap_eps must be in (0, 0.5], got {eps}"
                )
            object.__setattr__(self, "leap_eps", eps)
        if self.regime_thresholds is not None:
            try:
                critical, ode = (
                    float(value) for value in self.regime_thresholds
                )
            except (TypeError, ValueError):
                raise SimulationError(
                    f"regime_thresholds must be a (critical, ode) pair of "
                    f"numbers, got {self.regime_thresholds!r}"
                ) from None
            if not 0.0 < critical < ode:
                raise SimulationError(
                    f"regime_thresholds must satisfy 0 < critical < ode, "
                    f"got ({critical}, {ode})"
                )
            object.__setattr__(self, "regime_thresholds", (critical, ode))

    def _validate_crn(self) -> None:
        """Fail fast on malformed CRN trials (build time, not mid-sweep)."""
        from repro.crn.compile import CRN_MODES
        from repro.crn.model import CRN
        from repro.engine.selection import ENGINE_NAMES

        if not isinstance(self.crn, CRN):
            raise SimulationError(
                "a crn trial needs the network itself (crn=CRN(...)); the full "
                "spec travels in the trial so it can key the result cache"
            )
        if self.engine not in ENGINE_NAMES:
            raise SimulationError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{', '.join(ENGINE_NAMES)}"
            )
        if self.crn_mode not in CRN_MODES:
            raise SimulationError(
                f"unknown CRN lowering mode {self.crn_mode!r}; expected one of "
                f"{', '.join(CRN_MODES)}"
            )
        if self.crn_mode == "thinned" and self.engine not in ("count", "batched"):
            raise SimulationError(
                f"the thinned CRN lowering targets the state-weighted scheduler, "
                f"which the {self.engine} engine cannot run; use the count or "
                f"batched engine (or mode='uniform')"
            )
        if self.scheduler is not None:
            raise SimulationError(
                "crn trials derive their scheduler from the lowering mode; "
                "pass crn_mode='thinned' instead of scheduler=..."
            )
        if self.protocol is None and self.predicate is None:
            raise SimulationError(
                "a crn trial needs a convergence predicate: either a registered "
                "CRN workload name (protocol=...) or an explicit predicate"
            )

    #: Scheduler capability each trial kind consumes (finite-state trials
    #: defer to the chosen engine's capability).
    _KIND_SCHEDULER_CAPABILITY = {
        KIND_VECTOR: "rounds",
        KIND_ARRAY: "rounds",
        KIND_SEQUENTIAL: "pair",
    }

    def _validate_scheduler(self) -> None:
        """Fail fast on unknown/incompatible schedulers or bad options."""
        from repro.engine.scheduler import get_scheduler_policy
        from repro.engine.selection import ENGINE_SCHEDULER_CAPABILITY

        policy_cls = get_scheduler_policy(self.scheduler)
        if self.kind == KIND_FINITE_STATE:
            capability = ENGINE_SCHEDULER_CAPABILITY[self.engine]
        else:
            capability = self._KIND_SCHEDULER_CAPABILITY[self.kind]
        if capability not in policy_cls.capabilities:
            raise SimulationError(
                f"scheduler {self.scheduler!r} is not compatible with "
                f"{self.kind} trials on the {self.engine} engine "
                f"(needs the {capability!r} capability; see `repro engines`)"
            )
        # Instantiate once so malformed options surface at build time, not
        # inside a worker process mid-sweep.
        self.scheduler_spec().build_policy()

    def scheduler_spec(self):
        """The trial's scheduler as a :class:`SchedulerSpec` (or ``None``).

        ``None`` means "the engine's default policy" and keeps the engines'
        historical draw-for-draw RNG streams.  The spec is returned in its
        coerced (canonical) form, so ``intra="0.95"`` and ``intra=0.95``
        build the same policy *and* hash to the same sweep cache key.
        """
        if self.scheduler is None:
            return None
        from repro.engine.scheduler import SchedulerSpec

        return SchedulerSpec(
            name=self.scheduler, options=self.scheduler_options
        ).coerced()

    @property
    def seed(self) -> int:
        """Deterministic per-trial seed (collision-free across the sweep)."""
        return spawn_seed(self.base_seed, self.size_index, self.run_index)

    def cache_payload(self) -> dict:
        """The canonical key payload hashed by :meth:`cache_key`.

        Public so the staticcheck contract audit (rule ``K405``) can prove
        that *store-selection* names never leak into the key: the payload
        describes the trial — what to simulate, with which seed and budget —
        and deliberately says nothing about where its record is persisted.
        """
        payload = {
            "kind": self.kind,
            "population_size": self.population_size,
            "size_index": self.size_index,
            "run_index": self.run_index,
            "base_seed": self.base_seed,
            "engine": self.engine,
            "max_parallel_time": self.max_parallel_time,
            "check_interval": self.check_interval,
            "protocol": self.protocol,
            "protocol_factory": _callable_ref(self.protocol_factory),
            "predicate": _callable_ref(self.predicate),
            "engine_options": sorted(
                (str(key), repr(value)) for key, value in self.engine_options
            ),
            "params": None if self.params is None else {
                f.name: getattr(self.params, f.name) for f in fields(self.params)
            },
            "track_states": self.track_states,
        }
        # The scheduler joins the payload only when one is explicitly
        # chosen: default-scheduler specs keep hashing exactly as they did
        # before schedulers became pluggable, so caches written by earlier
        # releases stay valid, while any non-default scheduler (or option
        # change) still gets its own key.  The canonical encoding lives on
        # SchedulerSpec (one implementation, shared with its unit tests).
        scheduler_spec = self.scheduler_spec()
        if scheduler_spec is not None:
            payload["scheduler"] = scheduler_spec.cache_payload()
        # Same join-only-when-present rule for the CRN kind: the canonical
        # network form (reactions, rate constants, product orientations,
        # initial condition) plus the lowering mode key the cache, so a
        # cached trial is never replayed for a CRN differing in any of them
        # — notably a single rate constant.
        if self.crn is not None:
            payload["crn"] = {
                "network": self.crn.canonical(),
                "mode": self.crn_mode,
            }
        # Multiscale error-control knobs join only when set: they change the
        # simulated distribution (leap tolerance) or the trajectory (regime
        # thresholds), so a cached trial is never replayed under different
        # tolerances — while non-multiscale specs keep their historical keys.
        if self.leap_eps is not None:
            payload["leap_eps"] = self.leap_eps
        if self.regime_thresholds is not None:
            payload["regime_thresholds"] = list(self.regime_thresholds)
        return payload

    def cache_key(self) -> str:
        """Stable content hash of the spec, used as the result-store key."""
        canonical = json.dumps(self.cache_payload(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def engine_option_dict(self) -> dict:
        """``engine_options`` plus any multiscale knobs, ready for builders."""
        options = dict(self.engine_options)
        if self.leap_eps is not None:
            options["leap_eps"] = self.leap_eps
        if self.regime_thresholds is not None:
            options["regime_thresholds"] = self.regime_thresholds
        return options

    def resolve_workload(self) -> tuple[Callable[[], FiniteStateProtocol], Callable]:
        """Resolve the protocol factory and predicate for a finite-state trial.

        Explicit callables take precedence; a registered workload name fills
        in whichever of the two was not supplied (so a caller can e.g. sweep
        the ``"epidemic"`` workload under a custom stopping predicate).
        """
        factory = self.protocol_factory
        predicate = self.predicate
        if self.protocol is not None:
            workload = get_workload(self.protocol)
            factory = factory or workload.factory
            predicate = predicate or workload.predicate
        return factory, predicate


def build_finite_state_trials(
    population_sizes: Sequence[int],
    runs_per_size: int,
    base_seed: int = 0,
    engine: str = "count",
    max_parallel_time: float | Callable[[int], float] = 100.0,
    check_interval: int | None = None,
    protocol: str | None = None,
    protocol_factory: Callable[[], FiniteStateProtocol] | None = None,
    predicate: Callable[..., bool] | None = None,
    scheduler: str | None = None,
    scheduler_options: Mapping[str, object] | None = None,
    **engine_options,
) -> list[TrialSpec]:
    """Expand a finite-state sweep into one :class:`TrialSpec` per trial.

    ``max_parallel_time`` may be a callable ``n -> budget`` for workloads
    whose budget scales with the population (e.g. leader election's ``4n``).
    ``scheduler`` (with ``scheduler_options``) selects a scheduling policy
    for every trial; ``None`` falls back to the workload's registered
    scheduler variant, if any, else the engine default.
    """
    if not population_sizes:
        raise SimulationError("population_sizes must be non-empty")
    if runs_per_size < 1:
        raise SimulationError(f"runs_per_size must be >= 1, got {runs_per_size}")
    budget = (
        max_parallel_time
        if callable(max_parallel_time)
        else (lambda n: float(max_parallel_time))
    )
    if scheduler is None and protocol is not None:
        workload = get_workload(protocol)
        scheduler = workload.scheduler
        # The workload's baked options accompany its baked scheduler unless
        # the caller supplies explicit (non-empty) options of their own —
        # the CLI always passes {} when no --scheduler-opt flag is given.
        if scheduler is not None and not scheduler_options:
            scheduler_options = dict(workload.scheduler_options)
    return [
        TrialSpec(
            kind=KIND_FINITE_STATE,
            population_size=population_size,
            size_index=size_index,
            run_index=run_index,
            base_seed=base_seed,
            engine=engine,
            max_parallel_time=budget(population_size),
            check_interval=check_interval,
            protocol=protocol,
            protocol_factory=protocol_factory,
            predicate=predicate,
            engine_options=tuple(sorted(engine_options.items())),
            scheduler=scheduler,
            scheduler_options=tuple(sorted((scheduler_options or {}).items())),
        )
        for size_index, population_size in enumerate(population_sizes)
        for run_index in range(runs_per_size)
    ]


def build_vector_trials(
    population_sizes: Sequence[int],
    runs_per_size: int,
    protocol: str,
    params: ProtocolParameters,
    base_seed: int = 0,
    max_parallel_time: float | Callable[[int], float] | None = None,
    scheduler: str | None = None,
    scheduler_options: Mapping[str, object] | None = None,
    **engine_options,
) -> list[TrialSpec]:
    """Expand a vector-workload sweep into one :class:`TrialSpec` per trial.

    ``max_parallel_time`` may be a constant, a callable ``n -> budget``, or
    ``None`` to use the workload's default budget (which accounts for the
    protocol constants and any ``engine_options``, e.g. ``phase_count``).
    ``scheduler`` selects the round scheduler (default: the workload's
    registered variant, else uniform matching).
    """
    if not population_sizes:
        raise SimulationError("population_sizes must be non-empty")
    if runs_per_size < 1:
        raise SimulationError(f"runs_per_size must be >= 1, got {runs_per_size}")
    workload = get_vector_workload(protocol)
    if scheduler is None:
        scheduler = workload.scheduler
        if scheduler is not None and not scheduler_options:
            scheduler_options = dict(workload.scheduler_options)
    # "backend" addresses the VectorSimulator, not the protocol kernel: it
    # must not reach the kernel factory or the budget computation.
    kernel_options = {
        key: value for key, value in engine_options.items() if key != "backend"
    }
    # Probe the kernel factory once so unsupported engine_options fail here,
    # at build time, instead of as a TypeError inside a worker process mid-
    # sweep.  Kernel construction is cheap (arrays are allocated later, in
    # init_fields); parameter-validation errors (ProtocolError) propagate.
    try:
        workload.kernel_factory(params, **kernel_options)
    except TypeError as error:
        raise SimulationError(
            f"vector workload {protocol!r} does not accept options "
            f"{sorted(kernel_options)}: {error}"
        ) from None
    if max_parallel_time is None:
        budget = lambda n: workload.default_budget(n, params, **kernel_options)
    elif callable(max_parallel_time):
        budget = max_parallel_time
    else:
        budget = lambda n: float(max_parallel_time)
    return [
        TrialSpec(
            kind=KIND_VECTOR,
            population_size=population_size,
            size_index=size_index,
            run_index=run_index,
            base_seed=base_seed,
            engine="vector",
            max_parallel_time=budget(population_size),
            protocol=protocol,
            params=params,
            engine_options=tuple(sorted(engine_options.items())),
            scheduler=scheduler,
            scheduler_options=tuple(sorted((scheduler_options or {}).items())),
        )
        for size_index, population_size in enumerate(population_sizes)
        for run_index in range(runs_per_size)
    ]


def build_crn_trials(
    population_sizes: Sequence[int],
    runs_per_size: int,
    crn: "str | object",
    base_seed: int = 0,
    engine: str = "batched",
    mode: str = "uniform",
    max_chemical_time: float | Callable[[int], float] | None = None,
    predicate: Callable[..., bool] | None = None,
    check_interval: int | None = None,
    leap_eps: float | None = None,
    regime_thresholds: "tuple[float, float] | None" = None,
    **engine_options,
) -> list[TrialSpec]:
    """Expand a CRN sweep into one :class:`TrialSpec` per trial.

    ``crn`` is a registered :data:`~repro.crn.library.CRN_WORKLOADS` name or
    a :class:`~repro.crn.model.CRN` object (an ad-hoc network then needs an
    explicit ``predicate``).  Budgets are stated in *chemical* time
    (``max_chemical_time``, a constant or a callable ``n -> budget``;
    default: the workload's budget) and converted to the engines'
    parallel-time budgets through the compiled rate scale; for the thinned
    lowering the same scale is a generous event-clock heuristic (see
    ``DESIGN.md``, CRN front-end).  ``leap_eps`` and ``regime_thresholds``
    tune the multiscale engine (see :class:`TrialSpec`).
    """
    from repro.crn.compile import compile_crn
    from repro.crn.library import get_crn_workload
    from repro.crn.model import CRN

    if not population_sizes:
        raise SimulationError("population_sizes must be non-empty")
    if runs_per_size < 1:
        raise SimulationError(f"runs_per_size must be >= 1, got {runs_per_size}")
    protocol_name = None
    if isinstance(crn, str):
        workload = get_crn_workload(crn)
        protocol_name = workload.name
        network = workload.crn
        chemical_budget = (
            max_chemical_time
            if max_chemical_time is not None
            else workload.default_chemical_budget
        )
    elif isinstance(crn, CRN):
        network = crn
        if predicate is None:
            raise SimulationError(
                "an ad-hoc CRN sweep needs an explicit convergence predicate "
                "(predicate=...); registered workloads carry their own"
            )
        if max_chemical_time is None:
            raise SimulationError(
                "an ad-hoc CRN sweep needs an explicit chemical-time budget "
                "(max_chemical_time=...); registered workloads carry their own"
            )
        chemical_budget = max_chemical_time
    else:
        raise SimulationError(
            f"crn must be a registered workload name or a CRN, got {crn!r}"
        )
    if not callable(chemical_budget):
        constant = float(chemical_budget)
        chemical_budget = lambda n: constant
    # Compiling here fails fast on a bad mode/network before any worker;
    # rate_scale is the uniform Gamma in either mode (in thinned mode it is
    # the budget heuristic — see DESIGN.md, CRN front-end).
    rate_scale = compile_crn(network, mode=mode).rate_scale
    return [
        TrialSpec(
            kind=KIND_CRN,
            population_size=population_size,
            size_index=size_index,
            run_index=run_index,
            base_seed=base_seed,
            engine=engine,
            max_parallel_time=rate_scale * chemical_budget(population_size),
            check_interval=check_interval,
            protocol=protocol_name,
            predicate=predicate,
            engine_options=tuple(sorted(engine_options.items())),
            crn=network,
            crn_mode=mode,
            leap_eps=leap_eps,
            regime_thresholds=regime_thresholds,
        )
        for size_index, population_size in enumerate(population_sizes)
        for run_index in range(runs_per_size)
    ]


# ---------------------------------------------------------------------------
# Trial execution (runs inside worker processes)
# ---------------------------------------------------------------------------


def _run_finite_state_trial(spec: TrialSpec) -> RunRecord:
    from repro.engine.selection import build_engine

    factory, predicate = spec.resolve_workload()
    simulator = build_engine(
        spec.engine,
        factory(),
        spec.population_size,
        seed=spec.seed,
        scheduler=spec.scheduler_spec(),
        **spec.engine_option_dict(),
    )
    converged = True
    convergence_time: float | None = None
    try:
        convergence_time = simulator.run_until(
            predicate,
            max_parallel_time=spec.max_parallel_time,
            check_interval=spec.check_interval,
        )
    except ConvergenceError:
        converged = False
    return RunRecord(
        population_size=spec.population_size,
        seed=spec.seed,
        converged=converged,
        convergence_time=convergence_time,
        extra={
            "engine": spec.engine,
            "interactions": int(simulator.interactions),
            "outputs": {
                str(output): int(count)
                for output, count in simulator.outputs().items()
            },
        },
    )


def _run_array_trial(spec: TrialSpec) -> RunRecord:
    from repro.core.array_simulator import ArrayLogSizeSimulator

    simulator = ArrayLogSizeSimulator(
        population_size=spec.population_size,
        params=spec.params,
        seed=spec.seed,
        scheduler=spec.scheduler_spec(),
    )
    outcome = simulator.run_until_done(max_parallel_time=spec.max_parallel_time)
    return RunRecord(
        population_size=spec.population_size,
        seed=spec.seed,
        converged=outcome.converged,
        convergence_time=outcome.convergence_time,
        max_additive_error=outcome.max_additive_error,
        extra={
            "engine": "array",
            "log_size2": outcome.log_size2,
            "interactions": outcome.interactions,
            "distinct_state_bound": outcome.distinct_state_bound,
            "final_estimate_mean": outcome.final_estimate_mean,
        },
    )


def _run_sequential_trial(spec: TrialSpec) -> RunRecord:
    from repro.core.log_size_estimation import (
        LogSizeEstimationProtocol,
        all_agents_done,
        estimate_error,
    )
    from repro.engine.simulator import Simulation

    protocol = LogSizeEstimationProtocol(spec.params)
    simulation = Simulation(
        protocol=protocol,
        population_size=spec.population_size,
        seed=spec.seed,
        scheduler=spec.scheduler_spec(),
        track_states=spec.track_states,
    )
    converged = True
    convergence_time: float | None = None
    try:
        convergence_time = simulation.run_until(
            all_agents_done, max_parallel_time=spec.max_parallel_time
        )
    except ConvergenceError:
        converged = False
    try:
        error = estimate_error(simulation)["max_additive_error"]
    except ValueError:
        error = math.nan
    return RunRecord(
        population_size=spec.population_size,
        seed=spec.seed,
        converged=converged,
        convergence_time=convergence_time,
        max_additive_error=error,
        extra={
            "engine": "sequential",
            "interactions": simulation.metrics.interactions,
            "distinct_states": simulation.metrics.distinct_states,
        },
    )


def _run_vector_trial(spec: TrialSpec) -> RunRecord:
    from repro.engine.vector import VectorSimulator

    workload = get_vector_workload(spec.protocol)
    options = dict(spec.engine_options)
    backend = options.pop("backend", None)
    kernel = workload.kernel_factory(spec.params, **options)
    simulator = VectorSimulator(
        kernel,
        spec.population_size,
        seed=spec.seed,
        scheduler=spec.scheduler_spec(),
        backend=backend,
    )
    outcome = simulator.run_until_done(max_parallel_time=spec.max_parallel_time)
    extra = {
        "engine": "vector",
        "protocol": spec.protocol,
        "interactions": outcome.interactions,
    }
    # Estimation-style result fields, absent on a plain VectorRunResult from
    # a custom registered workload.
    for name in ("log_size2", "distinct_state_bound", "final_estimate_mean"):
        value = getattr(outcome, name, None)
        if value is not None:
            extra[name] = value
    return RunRecord(
        population_size=spec.population_size,
        seed=spec.seed,
        converged=outcome.converged,
        convergence_time=outcome.convergence_time,
        max_additive_error=getattr(outcome, "max_additive_error", math.nan),
        extra=extra,
    )


def _run_crn_trial(spec: TrialSpec) -> RunRecord:
    from repro.crn.compile import compile_crn
    from repro.crn.library import get_crn_workload

    predicate = spec.predicate
    if predicate is None:
        predicate = get_crn_workload(spec.protocol).predicate
    compiled = compile_crn(spec.crn, mode=spec.crn_mode)
    simulator = compiled.build(
        spec.engine,
        spec.population_size,
        seed=spec.seed,
        **spec.engine_option_dict(),
    )
    converged = True
    convergence_time: float | None = None
    try:
        convergence_time = simulator.run_until(
            predicate,
            max_parallel_time=spec.max_parallel_time,
            check_interval=spec.check_interval,
        )
    except ConvergenceError:
        converged = False
    extra = {
        "engine": spec.engine,
        "crn": spec.crn.name,
        "crn_mode": spec.crn_mode,
        "rate_scale": compiled.rate_scale,
        "interactions": int(simulator.interactions),
        "counts": {
            str(state): int(count)
            for state, count in sorted(simulator.configuration().items())
        },
    }
    if compiled.time_exact and convergence_time is not None:
        extra["chemical_time"] = compiled.to_chemical_time(convergence_time)
    # Multiscale engines expose per-regime work counters; persist them so
    # sweep records (and `repro crn sweep` output) carry the exact/leap/ODE
    # breakdown that was previously visible only via `repro crn simulate`.
    regime_stats = getattr(simulator, "regime_stats", None)
    if regime_stats is not None:
        extra["regime"] = {
            str(name): int(value) for name, value in regime_stats().items()
        }
    return RunRecord(
        population_size=spec.population_size,
        seed=spec.seed,
        converged=converged,
        convergence_time=convergence_time,
        extra=extra,
    )


_TRIAL_RUNNERS = {
    KIND_FINITE_STATE: _run_finite_state_trial,
    KIND_ARRAY: _run_array_trial,
    KIND_SEQUENTIAL: _run_sequential_trial,
    KIND_VECTOR: _run_vector_trial,
    KIND_CRN: _run_crn_trial,
}


def run_trial(spec: TrialSpec) -> RunRecord:
    """Execute one trial (in whatever process this is called from).

    With telemetry enabled (``repro.obs.set_telemetry``), the trial's run
    manifest — spec hash, seed lineage, resolved engine/backend/scheduler,
    hot-path counters and the timing breakdown accumulated during *this*
    execution window — is attached under ``record.extra["telemetry"]``.
    The key is contractually excluded from cache keys (staticcheck K406)
    and the simulated trajectory is bit-identical either way: telemetry
    only observes.
    """
    if not _REC.enabled:
        return _TRIAL_RUNNERS[spec.kind](spec)
    mark = _REC.mark()
    record = _TRIAL_RUNNERS[spec.kind](spec)
    end_ns = _REC.now_ns()
    delta = _REC.since(mark)
    _REC.add_span(
        "trial",
        mark.t_ns,
        end_ns,
        category="sweep",
        args={
            "kind": spec.kind,
            "engine": spec.engine,
            "n": spec.population_size,
            "seed": spec.seed,
        },
    )
    record.extra[TELEMETRY_KEY] = trial_manifest(spec, delta)
    # Workers persist their span events per trial so a crashed worker
    # loses at most one trial's trace; a no-op without a spool directory.
    _REC.flush_spool()
    return record


def _enable_worker_telemetry(spool_dir: str | None) -> None:
    """``multiprocessing.Pool`` initializer: mirror the driver's telemetry
    state into the worker process (fresh processes start disabled)."""
    from repro.obs.recorder import set_telemetry

    set_telemetry(True, spool_dir)


# ---------------------------------------------------------------------------
# The sweep driver
# ---------------------------------------------------------------------------


@dataclass
class SweepOutcome:
    """Result of :func:`run_trials`: records in spec order plus provenance.

    Attributes
    ----------
    records:
        One :class:`RunRecord` per input spec, in input order — identical
        regardless of ``workers`` or how many drivers share the store.
    executed:
        Trials actually simulated *by this driver* in this invocation.
    from_cache:
        Trials replayed from the result store/cache (including trials
        another concurrent driver finished while this one was running).
    executed_keys:
        Store keys of the trials this driver simulated itself, in
        completion order.  Empty when no store/cache is attached.  Lets
        distributed tests assert exactly-once execution: two drivers
        sharing a store must report *disjoint* key sets.
    """

    records: list[RunRecord] = field(default_factory=list)
    executed: int = 0
    from_cache: int = 0
    executed_keys: list[str] = field(default_factory=list)


def run_trials(
    specs: Sequence[TrialSpec],
    workers: int = 1,
    cache: ResultCache | None = None,
    store=None,
    lease_seconds: float | None = None,
    owner: str | None = None,
    poll_interval: float = 0.05,
    progress: Callable[[SweepProgress], None] | None = None,
) -> SweepOutcome:
    """Run a sweep of trials through a claim-loop over a result store.

    The driver repeatedly *claims* the next unowned spec from the store,
    runs it (inline or on a ``multiprocessing`` pool), appends the record,
    and moves on.  Claims are atomic compare-and-claim with lease expiry,
    so any number of concurrent drivers — in other processes, on other
    hosts — can point at the same store and cooperate on one sweep: each
    trial executes exactly once, a crashed driver's leased trials are
    reclaimed after the lease expires, and the sweep resumes from any mix
    of completed/leased/failed trials.

    Parameters
    ----------
    specs:
        The trials, typically from :func:`build_finite_state_trials` or the
        :mod:`repro.harness.experiment` runners.
    workers:
        Worker processes.  ``1`` runs claimed trials serially in-process
        (no pickling constraints); ``> 1`` runs them on a
        ``multiprocessing.Pool``, at most ``workers`` in flight.  Claims
        and appends always happen in the driver process.
    cache:
        Legacy keyword: a local :class:`ResultCache`, wrapped into a
        single-driver :class:`~repro.store.jsonl.JsonlStore`.  Behaviour is
        unchanged — hits replay without simulation, new records append as
        they finish.  Mutually exclusive with ``store``.
    store:
        A :class:`~repro.store.base.ResultStore`, a parsed
        :class:`~repro.store.base.StoreSpec`, or a store URL
        (``jsonl:DIR`` / ``sqlite:PATH`` / ``http://HOST:PORT``).
    lease_seconds:
        Lease duration for each claim; ``None`` uses the store's default.
        Size it to comfortably exceed the slowest single trial.
    owner:
        Lease-owner identity; defaults to ``hostname:pid``.
    poll_interval:
        Seconds to wait between claim passes when every remaining trial is
        leased by other drivers (or in flight locally).
    progress:
        Optional callback invoked with a
        :class:`~repro.obs.progress.SweepProgress` after every resolved
        trial (executed locally *or* replayed from the store); drives the
        ``repro sweep --progress`` live view.  Purely observational — it
        must not raise.

    Returns
    -------
    SweepOutcome
        Records in spec order plus executed / from-cache provenance.
        Records depend only on the specs — identical regardless of
        ``workers``, driver count, or which store served them.
    """
    specs = list(specs)
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    if store is not None and cache is not None:
        raise SimulationError("pass either store= or cache=, not both")
    records: list[RunRecord | None] = [None] * len(specs)

    # Workers start with telemetry disabled; when the driver records, the
    # pool initializer mirrors its enabled/spool state into each worker.
    pool_kwargs: dict = (
        {"initializer": _enable_worker_telemetry, "initargs": (_REC.spool_dir,)}
        if _REC.enabled
        else {}
    )

    def _emit_progress(total: int, done: int, executed: int, replayed: int) -> None:
        if progress is not None:
            progress(
                SweepProgress(
                    total=total, done=done, executed=executed, from_cache=replayed
                )
            )

    if store is None and cache is None:
        # No persistence: plain fan-out, no keys to compute or claim.
        if workers == 1 or len(specs) <= 1:
            for index, spec in enumerate(specs):
                records[index] = run_trial(spec)
                _emit_progress(len(specs), index + 1, index + 1, 0)
        else:
            with multiprocessing.get_context().Pool(
                processes=min(workers, len(specs)), **pool_kwargs
            ) as pool:
                for index, record in enumerate(
                    pool.imap(run_trial, specs, chunksize=1)
                ):
                    records[index] = record
                    _emit_progress(len(specs), index + 1, index + 1, 0)
        if _REC.enabled:
            _REC.flush_spool()
        return SweepOutcome(records=records, executed=len(specs), from_cache=0)

    if cache is not None:
        from repro.store.jsonl import JsonlStore

        resolved = JsonlStore(cache=cache)
    else:
        from repro.store import open_store

        resolved = open_store(store)
    if owner is None:
        from repro.store.base import default_owner

        owner = default_owner()

    # Several specs may share a key (identical trials); the store runs each
    # unique trial once and every index gets the record.
    indices_by_key: dict[str, list[int]] = {}
    for index, spec in enumerate(specs):
        indices_by_key.setdefault(spec.cache_key(), []).append(index)

    executed_keys: list[str] = []
    from_cache = 0
    replayed_unique = 0
    total_unique = len(indices_by_key)

    def _replay(key: str, record: RunRecord) -> None:
        nonlocal from_cache, replayed_unique
        for index in indices_by_key[key]:
            records[index] = record
        from_cache += len(indices_by_key[key])
        replayed_unique += 1
        if _REC.enabled:
            _REC.count("store.replays")
        _emit_progress(
            total_unique,
            replayed_unique + len(executed_keys),
            len(executed_keys),
            replayed_unique,
        )

    def _finish(key: str, record: RunRecord) -> None:
        if _REC.enabled:
            t0 = _REC.now_ns()
            resolved.append(key, record)
            _REC.add_time("store.append", _REC.now_ns() - t0)
            _REC.count("store.appends")
        else:
            resolved.append(key, record)
        for index in indices_by_key[key]:
            records[index] = record
        executed_keys.append(key)
        _emit_progress(
            total_unique,
            replayed_unique + len(executed_keys),
            len(executed_keys),
            replayed_unique,
        )

    # Replay everything already finished (batch query), then claim-loop
    # over the remainder.
    unique_keys = list(indices_by_key)
    missing = set(resolved.pending(unique_keys))
    for key in unique_keys:
        if key in missing:
            continue
        record = resolved.get(key)
        if record is None:  # vanished between the two queries; claim it
            missing.add(key)
        else:
            _replay(key, record)

    queue = deque(key for key in unique_keys if key in missing)
    deferred: list[str] = []  # leased by another live driver; retry later
    in_flight: dict[str, object] = {}  # key -> pool AsyncResult
    pool = None
    try:
        if workers > 1 and len(queue) > 1:
            pool = multiprocessing.get_context().Pool(
                processes=min(workers, len(queue)), **pool_kwargs
            )
        capacity = workers if pool is not None else 1
        while queue or deferred or in_flight:
            moved = False
            # 1. Harvest finished pool trials.
            for key in list(in_flight):
                handle = in_flight[key]
                if not handle.ready():
                    continue
                del in_flight[key]
                try:
                    record = handle.get()
                except BaseException:
                    resolved.release(key, owner=owner)
                    raise
                _finish(key, record)
                moved = True
            # 2. Claim and dispatch up to capacity.
            while queue and len(in_flight) < capacity:
                key = queue.popleft()
                if _REC.enabled:
                    t0 = _REC.now_ns()
                    claim = resolved.claim(key, lease=lease_seconds, owner=owner)
                    _REC.add_time("store.claim", _REC.now_ns() - t0)
                    _REC.count("store.claims")
                    if claim.acquired:
                        _REC.count("store.claims_acquired")
                else:
                    claim = resolved.claim(key, lease=lease_seconds, owner=owner)
                if claim.done:
                    _replay(key, claim.record)
                    moved = True
                elif claim.acquired:
                    spec = specs[indices_by_key[key][0]]
                    if pool is not None:
                        in_flight[key] = pool.apply_async(run_trial, (spec,))
                    else:
                        try:
                            record = run_trial(spec)
                        except BaseException:
                            resolved.release(key, owner=owner)
                            raise
                        _finish(key, record)
                    moved = True
                else:
                    deferred.append(key)
            # 3. Nothing moved: wait for in-flight trials or foreign leases
            #    (which either complete -> done, or expire -> acquired).
            if not moved and (deferred or in_flight):
                time.sleep(poll_interval)
                queue.extend(deferred)
                deferred.clear()
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
        if _REC.enabled:
            _REC.flush_spool()

    return SweepOutcome(
        records=records,
        executed=len(executed_keys),
        from_cache=from_cache,
        executed_keys=executed_keys,
    )
