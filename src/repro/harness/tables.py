"""Theorem-level tables built from simulation sweeps.

The paper's evaluation contains a single figure; its theorem statements,
however, make quantitative claims that can be tabulated against simulation.
The builders here produce those tables (as rows of plain data plus a rendered
text form) for the benchmarks and for EXPERIMENTS.md:

* :func:`accuracy_table` — Theorem 3.1 / Lemma 3.12: the observed maximum
  additive error per population size against the claimed 5.7 (and the
  paper's empirical 2).
* :func:`state_complexity_table` — Lemma 3.9: realised per-field ranges and
  the implied state-count bound against ``O(log^4 n)``.
* :func:`baseline_comparison_table` — the Alistarh et al. baseline's
  multiplicative-factor estimate against this paper's additive-error
  estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.error_bounds import final_error_probability
from repro.core.array_simulator import ArrayLogSizeSimulator, expected_convergence_time
from repro.core.parameters import ProtocolParameters
from repro.engine.simulator import Simulation
from repro.exceptions import ConvergenceError
from repro.harness.reporting import format_table
from repro.protocols.approximate_counting import (
    AlistarhApproximateCounting,
    approximate_counting_converged,
)
from repro.rng import spawn_seed


@dataclass(frozen=True)
class TableResult:
    """A built table: raw rows plus a rendered text form."""

    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    text: str


def accuracy_table(
    population_sizes: Sequence[int],
    runs_per_size: int = 3,
    params: ProtocolParameters | None = None,
    base_seed: int = 7,
    time_budget_factor: float = 4.0,
) -> TableResult:
    """Observed additive error vs the claimed bound, per population size."""
    params = params or ProtocolParameters.paper()
    headers = (
        "n",
        "runs",
        "mean |err|",
        "max |err|",
        "claimed bound",
        "claimed failure prob",
    )
    rows = []
    for size_index, population_size in enumerate(population_sizes):
        errors = []
        for run_index in range(runs_per_size):
            simulator = ArrayLogSizeSimulator(
                population_size=population_size,
                params=params,
                seed=spawn_seed(base_seed, size_index, run_index),
            )
            outcome = simulator.run_until_done(
                max_parallel_time=time_budget_factor
                * expected_convergence_time(population_size, params)
            )
            if outcome.converged:
                errors.append(outcome.max_additive_error)
        if errors:
            rows.append(
                (
                    population_size,
                    len(errors),
                    sum(errors) / len(errors),
                    max(errors),
                    5.7,
                    final_error_probability(population_size),
                )
            )
    return TableResult(headers=headers, rows=tuple(rows), text=format_table(headers, rows))


def state_complexity_table(
    population_sizes: Sequence[int],
    params: ProtocolParameters | None = None,
    base_seed: int = 11,
    time_budget_factor: float = 4.0,
) -> TableResult:
    """Realised field ranges and state-count bound vs ``log2^4 n`` (Lemma 3.9)."""
    params = params or ProtocolParameters.paper()
    headers = (
        "n",
        "max logSize2",
        "max epoch",
        "max time",
        "max gr",
        "state bound",
        "log2(n)^4",
    )
    rows = []
    for size_index, population_size in enumerate(population_sizes):
        simulator = ArrayLogSizeSimulator(
            population_size=population_size,
            params=params,
            seed=spawn_seed(base_seed, size_index),
        )
        simulator.run_until_done(
            max_parallel_time=time_budget_factor
            * expected_convergence_time(population_size, params)
        )
        rows.append(
            (
                population_size,
                simulator._max_log_size2,
                simulator._max_epoch,
                simulator._max_time,
                simulator._max_gr,
                simulator.distinct_state_bound(),
                math.log2(population_size) ** 4,
            )
        )
    return TableResult(headers=headers, rows=tuple(rows), text=format_table(headers, rows))


def baseline_comparison_table(
    population_sizes: Sequence[int],
    runs_per_size: int = 3,
    params: ProtocolParameters | None = None,
    base_seed: int = 13,
    time_budget_factor: float = 4.0,
    baseline_budget: float = 200.0,
) -> TableResult:
    """Alistarh et al. multiplicative baseline vs this paper's additive estimate.

    For the baseline the reported quantity is the converged maximum ``k`` of
    per-agent geometric variables (its guarantee is only
    ``0.5 log2 n <= k <= 2 log2 n``); for the paper's protocol it is the final
    averaged estimate.  Both errors are reported as ``|value - log2 n|``.
    """
    params = params or ProtocolParameters.paper()
    headers = (
        "n",
        "baseline max |err|",
        "baseline err bound (log2 n)",
        "paper protocol max |err|",
        "paper bound",
    )
    rows = []
    for size_index, population_size in enumerate(population_sizes):
        target = math.log2(population_size)

        baseline_errors = []
        for run_index in range(runs_per_size):
            protocol = AlistarhApproximateCounting()
            simulation = Simulation(
                protocol=protocol,
                population_size=population_size,
                seed=spawn_seed(base_seed, size_index, run_index, 0),
            )
            try:
                simulation.run_until(
                    approximate_counting_converged, max_parallel_time=baseline_budget
                )
            except ConvergenceError:
                continue
            value = simulation.protocol.output(simulation.states[0])
            baseline_errors.append(abs(float(value) - target))

        paper_errors = []
        for run_index in range(runs_per_size):
            # Arm 1 of the comparison; the 4-part spawn key keeps the
            # baseline (arm 0) and paper-protocol streams disjoint.
            simulator = ArrayLogSizeSimulator(
                population_size=population_size,
                params=params,
                seed=spawn_seed(base_seed, size_index, run_index, 1),
            )
            outcome = simulator.run_until_done(
                max_parallel_time=time_budget_factor
                * expected_convergence_time(population_size, params)
            )
            if outcome.converged:
                paper_errors.append(outcome.max_additive_error)

        rows.append(
            (
                population_size,
                max(baseline_errors) if baseline_errors else math.nan,
                target,  # the baseline's error can be as large as log2 n (factor 2)
                max(paper_errors) if paper_errors else math.nan,
                5.7,
            )
        )
    return TableResult(headers=headers, rows=tuple(rows), text=format_table(headers, rows))
