"""Result records and summary statistics for experiment sweeps."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass(frozen=True)
class RunRecord:
    """One simulated run of one protocol at one population size.

    Attributes
    ----------
    population_size:
        ``n`` for this run.
    seed:
        Seed used (for reproducibility of individual points).
    converged:
        Whether the run's convergence condition was met within its budget.
    convergence_time:
        Parallel time at convergence (``None`` if it did not converge).
    max_additive_error:
        Maximum ``|estimate - log2 n|`` over agents at the end of the run
        (``NaN`` when not applicable).
    extra:
        Free-form per-run metrics (state counts, logSize2, ...).
    """

    population_size: int
    seed: int
    converged: bool
    convergence_time: float | None
    max_additive_error: float = math.nan
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SeriesSummary:
    """Aggregate statistics of one metric over repeated runs."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "SeriesSummary":
        """Summarise a non-empty sequence of values."""
        if not values:
            raise ValueError("cannot summarise an empty series")
        return cls(
            count=len(values),
            mean=statistics.fmean(values),
            stdev=statistics.pstdev(values) if len(values) > 1 else 0.0,
            minimum=min(values),
            maximum=max(values),
        )


@dataclass
class SweepResult:
    """All run records of a sweep, grouped by population size."""

    name: str
    records: list[RunRecord] = field(default_factory=list)

    def add(self, record: RunRecord) -> None:
        """Append one run record."""
        self.records.append(record)

    def population_sizes(self) -> list[int]:
        """Distinct population sizes in ascending order."""
        return sorted({record.population_size for record in self.records})

    def records_for(self, population_size: int) -> list[RunRecord]:
        """All records at one population size."""
        return [
            record
            for record in self.records
            if record.population_size == population_size
        ]

    def convergence_times(self, population_size: int) -> list[float]:
        """Convergence times of the converged runs at one size."""
        return [
            record.convergence_time
            for record in self.records_for(population_size)
            if record.converged and record.convergence_time is not None
        ]

    def summary_by_size(self) -> dict[int, SeriesSummary]:
        """Convergence-time summaries keyed by population size."""
        summaries = {}
        for size in self.population_sizes():
            times = self.convergence_times(size)
            if times:
                summaries[size] = SeriesSummary.from_values(times)
        return summaries

    def error_summary_by_size(self) -> dict[int, SeriesSummary]:
        """Additive-error summaries keyed by population size."""
        summaries = {}
        for size in self.population_sizes():
            errors = [
                record.max_additive_error
                for record in self.records_for(size)
                if not math.isnan(record.max_additive_error)
            ]
            if errors:
                summaries[size] = SeriesSummary.from_values(errors)
        return summaries

    def convergence_rate(self, population_size: int) -> float:
        """Fraction of runs at one size that converged."""
        records = self.records_for(population_size)
        if not records:
            return 0.0
        return sum(record.converged for record in records) / len(records)


def summarize(values: Iterable[float]) -> SeriesSummary:
    """Summarise any iterable of numbers (convenience wrapper)."""
    return SeriesSummary.from_values(list(values))


def _values_equal(left, right) -> bool:
    if isinstance(left, float) and isinstance(right, float):
        if math.isnan(left) and math.isnan(right):
            return True
    if isinstance(left, dict) and isinstance(right, dict):
        return left.keys() == right.keys() and all(
            _values_equal(left[key], right[key]) for key in left
        )
    return left == right


def records_equal(left: RunRecord, right: RunRecord) -> bool:
    """Field-wise :class:`RunRecord` equality that treats ``NaN == NaN``.

    Plain ``==`` on records is unreliable across process or serialisation
    boundaries: ``NaN`` compares unequal to itself once the two sides stop
    being the *same object* (records returned by pool workers are unpickled
    copies; records replayed from the result cache are rebuilt from JSON).
    Sweep-equivalence tests should use this instead.
    """
    return all(
        _values_equal(getattr(left, field_name), getattr(right, field_name))
        for field_name in (
            "population_size",
            "seed",
            "converged",
            "convergence_time",
            "max_additive_error",
            "extra",
        )
    )
