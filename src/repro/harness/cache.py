"""On-disk result cache for sweep trials (JSON lines, keyed by spec hash).

A sweep is a list of :class:`~repro.harness.parallel.TrialSpec` objects, each
with a stable content hash (:meth:`TrialSpec.cache_key`).  The cache stores
one JSON line per finished trial::

    {"key": "<sha256 of the spec>", "record": {<RunRecord fields>}}

Records are appended (and flushed) as each trial finishes, so a sweep killed
half-way leaves a valid prefix on disk; re-running the same sweep with the
cache attached replays the finished trials and executes only the missing
ones.  A torn final line (the process died mid-write) is skipped on load.

Because the key hashes every field of the spec — protocol, population size,
run index, base seed, engine, budget, engine options — changing *any* of them
changes the key, so a cache directory can safely accumulate results from many
different sweeps without false hits.

Format note: every line is *strict* JSON.  Non-finite floats (the ``inf``
``max_additive_error`` of a non-converged estimation trial, the ``NaN``
``final_estimate_mean`` of a run with no estimates) are canonicalised to
``null`` on write — the ``Infinity`` / ``NaN`` token extensions Python's
``json`` would otherwise emit are not JSON and break strict parsers (``jq``,
other languages).  On load a ``null`` ``max_additive_error`` is rebuilt as
``NaN`` ("not applicable"); ``null``\\ s nested in ``extra`` stay ``None``.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

try:  # advisory file locks: POSIX only, and the writes are atomic anyway
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.harness.results import RunRecord

__all__ = ["ResultCache", "append_jsonl_line", "record_to_dict", "record_from_dict"]


def append_jsonl_line(path: str | Path, line: str) -> None:
    """Append one line to a JSONL file safely under concurrent writers.

    Two layers of protection against interleaved appends from multiple
    processes sharing one shard file:

    * the file is opened with ``O_APPEND`` and the whole line leaves in a
      *single* ``os.write`` call — POSIX guarantees the seek-to-end and the
      write are atomic with respect to other ``O_APPEND`` writers, so lines
      cannot interleave even without a lock;
    * an advisory ``flock`` around the write (where available) additionally
      serialises writers, covering filesystems with weaker append semantics
      (and any future multi-``write`` record format).

    A torn *final* line (the process died mid-write) remains possible and is
    skipped on load, exactly as before.
    """
    data = (line + "\n").encode("utf-8")
    descriptor = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        if fcntl is not None:
            fcntl.flock(descriptor, fcntl.LOCK_EX)
        try:
            os.write(descriptor, data)
        finally:
            if fcntl is not None:
                fcntl.flock(descriptor, fcntl.LOCK_UN)
    finally:
        os.close(descriptor)


def _canonicalise(value):
    """Make ``value`` strict-JSON-able: non-finite floats become ``None``.

    Numpy scalars are unwrapped first (``.item()``), containers are walked
    recursively, and anything else non-JSON-native is stringified.
    """
    item = getattr(value, "item", None)
    if callable(item) and not isinstance(value, (int, float, str, bool)):
        value = item()
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: _canonicalise(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonicalise(entry) for entry in value]
    if value is None or isinstance(value, (int, str, bool)):
        return value
    return str(value)


def record_to_dict(record: RunRecord) -> dict:
    """Serialise a :class:`RunRecord` to plain, strict-JSON-able data.

    Non-finite floats anywhere in the record — the top-level
    ``max_additive_error`` (``NaN`` where not applicable, ``inf`` for a
    non-converged trial with no estimates) as well as values nested inside
    ``extra`` — are mapped to ``None`` so the cache file stays valid JSON
    (see the module note).
    """
    return {
        "population_size": int(record.population_size),
        "seed": int(record.seed),
        "converged": bool(record.converged),
        "convergence_time": _canonicalise(
            None if record.convergence_time is None else float(record.convergence_time)
        ),
        "max_additive_error": _canonicalise(record.max_additive_error),
        "extra": _canonicalise(record.extra),
    }


def record_from_dict(payload: dict) -> RunRecord:
    """Rebuild a :class:`RunRecord` from :func:`record_to_dict` output.

    A ``null`` ``max_additive_error`` loads as ``NaN`` — that covers both
    sources of a ``null`` on disk (a ``NaN`` "not applicable" and the ``inf``
    of a non-converged trial; the distinction is recoverable from
    ``converged``).
    """
    error = payload.get("max_additive_error")
    return RunRecord(
        population_size=payload["population_size"],
        seed=payload["seed"],
        converged=payload["converged"],
        convergence_time=payload["convergence_time"],
        max_additive_error=math.nan if error is None else error,
        extra=payload.get("extra", {}),
    )


class ResultCache:
    """Append-only JSON-lines store of finished trial records.

    Parameters
    ----------
    directory:
        Cache directory (created if missing).  One cache *file* lives under
        it per ``name``, so several sweeps can share a directory.
    name:
        Stem of the cache file (``<name>.jsonl``).

    Notes
    -----
    Appends go through :func:`append_jsonl_line` (``O_APPEND`` single-write
    plus an advisory lock), so several driver processes may safely share one
    shard file.  Each in-memory view only sees records loaded at construction
    plus its own ``put`` calls; cross-process *coordination* (who runs what)
    is the job of the :mod:`repro.store` layer, not this cache.
    """

    def __init__(self, directory: str | Path, name: str = "sweep") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / f"{name}.jsonl"
        self._records: dict[str, RunRecord] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    record = record_from_dict(payload["record"])
                    key = payload["key"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # Torn write from a killed sweep: ignore the partial line.
                    continue
                self._records[key] = record

    # -- mapping interface ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def get(self, key: str) -> RunRecord | None:
        """Return the cached record for ``key``, or ``None`` on a miss."""
        return self._records.get(key)

    def put(self, key: str, record: RunRecord) -> None:
        """Store ``record`` under ``key`` and append it to the cache file."""
        self._records[key] = record
        # record_to_dict canonicalised every value; allow_nan=False turns any
        # remaining non-finite float into a hard error rather than silently
        # writing an invalid-JSON Infinity/NaN token.
        line = json.dumps(
            {"key": key, "record": record_to_dict(record)},
            sort_keys=True,
            allow_nan=False,
        )
        append_jsonl_line(self.path, line)

    def items(self) -> list[tuple[str, RunRecord]]:
        """All (key, record) pairs currently loaded, in insertion order."""
        return list(self._records.items())

    def clear(self) -> None:
        """Forget all cached records and truncate the cache file."""
        self._records.clear()
        if self.path.exists():
            self.path.unlink()
