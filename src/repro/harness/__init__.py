"""Experiment harness: sweeps, statistics and table/figure regeneration.

The harness turns the simulators into the artefacts the paper reports:

* :mod:`repro.harness.results` — result records and summary statistics;
* :mod:`repro.harness.experiment` — repeatable experiment runners (one
  protocol, several seeds) for both engines;
* :mod:`repro.harness.parallel` — the sweep driver: picklable
  :class:`TrialSpec` per trial, deterministic seed spawning, and a
  ``multiprocessing`` worker pool behind ``workers=N``;
* :mod:`repro.harness.cache` — JSON-lines result cache keyed by trial-spec
  hashes, making interrupted sweeps resumable and repeated benchmark
  invocations incremental;
* :mod:`repro.harness.figures` — the Figure 2 reproduction (convergence time
  vs population size) as data series plus an ASCII rendering and CSV export;
* :mod:`repro.harness.tables` — the theorem-level tables (accuracy, state
  complexity, termination times, baseline comparison);
* :mod:`repro.harness.reporting` — plain-text table formatting used by the
  CLI, the benchmarks and EXPERIMENTS.md.
"""

from repro.harness.results import (
    RunRecord,
    SeriesSummary,
    SweepResult,
    records_equal,
    summarize,
)
from repro.harness.cache import ResultCache
from repro.harness.experiment import (
    ExperimentSpec,
    run_array_experiment,
    run_finite_state_experiment,
    run_sequential_experiment,
)
from repro.harness.parallel import (
    SweepOutcome,
    TrialSpec,
    VectorWorkload,
    build_finite_state_trials,
    build_vector_trials,
    register_vector_workload,
    run_trial,
    run_trials,
)
from repro.harness.figures import Figure2Point, Figure2Result, reproduce_figure2
from repro.harness.tables import (
    accuracy_table,
    baseline_comparison_table,
    state_complexity_table,
)
from repro.harness.reporting import format_table, render_ascii_series

__all__ = [
    "RunRecord",
    "SeriesSummary",
    "SweepResult",
    "records_equal",
    "summarize",
    "ResultCache",
    "SweepOutcome",
    "TrialSpec",
    "VectorWorkload",
    "build_finite_state_trials",
    "build_vector_trials",
    "register_vector_workload",
    "run_trial",
    "run_trials",
    "ExperimentSpec",
    "run_array_experiment",
    "run_finite_state_experiment",
    "run_sequential_experiment",
    "Figure2Point",
    "Figure2Result",
    "reproduce_figure2",
    "accuracy_table",
    "baseline_comparison_table",
    "state_complexity_table",
    "format_table",
    "render_ascii_series",
]
