"""Reproduction of Figure 2: convergence time of ``Log-Size-Estimation`` vs ``n``.

Figure 2 of the paper (Appendix C) plots, for population sizes
``10^2 .. 10^5`` (10 runs each), the parallel time at which all agents reach
``epoch = 5 * logSize2``; the paper notes the estimate is within additive
error 2 of ``log2 n`` in every run.  The population axis is logarithmic, so
the ``O(log^2 n)`` bound appears as a gently super-linear curve.

:func:`reproduce_figure2` runs the same sweep on the vectorised engine (the
sequential engine is too slow beyond ~10^3 agents in pure Python; see
``DESIGN.md``), returning per-size statistics plus the raw points, a CSV
export and an ASCII rendering of the scatter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.parameters import ProtocolParameters
from repro.harness.experiment import ExperimentSpec, run_array_experiment
from repro.harness.reporting import (
    PHASE_ORDER,
    format_table,
    phase_breakdown,
    render_ascii_series,
)
from repro.obs.manifest import TELEMETRY_KEY
from repro.harness.results import SeriesSummary, SweepResult


@dataclass(frozen=True)
class Figure2Point:
    """One run of the Figure 2 sweep.

    ``convergence_time`` is ``NaN`` (and ``converged`` is ``False``) for a
    run that exhausted its budget; such runs appear only in
    :attr:`Figure2Result.non_converged_points`.

    ``timing`` carries the run's telemetry timing breakdown (seconds per
    recorder timer) when the sweep ran with telemetry enabled, else ``None``.
    """

    population_size: int
    seed: int
    convergence_time: float
    max_additive_error: float
    converged: bool = True
    timing: dict | None = None


@dataclass
class Figure2Result:
    """The reproduced Figure 2 data set.

    ``points`` holds the converged runs (the plotted quantity is their
    convergence time); non-converged runs are *not* silently dropped — they
    are kept in ``non_converged_points`` and reported per size by
    :meth:`non_converged_by_size`, the ``non-conv`` column of
    :meth:`table` and the ``converged`` column of :meth:`to_csv`.
    """

    points: list[Figure2Point]
    summaries: dict[int, SeriesSummary]
    params: ProtocolParameters
    non_converged_runs: int
    non_converged_points: list[Figure2Point] = field(default_factory=list)

    def sizes(self) -> list[int]:
        """Population sizes present, ascending (converged or not)."""
        return sorted(
            set(self.summaries)
            | {point.population_size for point in self.non_converged_points}
        )

    def non_converged_by_size(self) -> dict[int, int]:
        """Number of non-converged runs at each population size."""
        counts = {size: 0 for size in self.sizes()}
        for point in self.non_converged_points:
            counts[point.population_size] += 1
        return counts

    def mean_times(self) -> list[float]:
        """Mean convergence time per size (``NaN`` where no run converged)."""
        return [
            self.summaries[size].mean if size in self.summaries else math.nan
            for size in self.sizes()
        ]

    def max_error_observed(self) -> float:
        """Largest additive error over every run (paper: always below 2)."""
        if not self.points:
            return math.nan
        return max(point.max_additive_error for point in self.points)

    def timing_phases(self) -> list[str]:
        """Per-phase timing columns present in this sweep's telemetry.

        Empty when the sweep ran without telemetry, so existing tables and
        CSV exports are byte-identical to the pre-telemetry format.
        """
        present: set[str] = set()
        for point in self.points + self.non_converged_points:
            present.update(phase_breakdown(point.timing))
        return [phase for phase in PHASE_ORDER if phase in present]

    def table(self) -> str:
        """Aligned text table: size, runs, non-converged, time stats, max error.

        ``runs`` counts only the converged runs feeding the time statistics;
        ``non-conv`` makes budget-exhausted runs visible instead of letting
        the ``runs`` column quietly shrink below the requested
        ``runs_per_size``.  Sweeps run with telemetry enabled gain one
        ``mean <phase> s`` column per recorded phase (draw vs apply vs
        convergence check wall time, averaged over the size's runs).
        """
        non_converged = self.non_converged_by_size()
        phases = self.timing_phases()
        rows = []
        for size in self.sizes():
            summary = self.summaries.get(size)
            size_points = [
                point
                for point in self.points + self.non_converged_points
                if point.population_size == size
            ]
            errors = [
                point.max_additive_error
                for point in size_points
                if point.converged
            ]
            row = [
                size,
                summary.count if summary else 0,
                non_converged[size],
                summary.mean if summary else math.nan,
                summary.minimum if summary else math.nan,
                summary.maximum if summary else math.nan,
                max(errors) if errors else math.nan,
            ]
            for phase in phases:
                values = [
                    phase_breakdown(point.timing)[phase]
                    for point in size_points
                    if phase in phase_breakdown(point.timing)
                ]
                row.append(sum(values) / len(values) if values else None)
            rows.append(row)
        headers = [
            "n",
            "runs",
            "non-conv",
            "mean time",
            "min time",
            "max time",
            "max |err|",
        ] + [f"mean {phase} s" for phase in phases]
        return format_table(headers, rows)

    def ascii_plot(self) -> str:
        """Coarse ASCII scatter matching the paper's log-x convergence plot."""
        xs = [float(point.population_size) for point in self.points]
        ys = [point.convergence_time for point in self.points]
        if not xs:
            return "(no converged runs to plot)"
        return render_ascii_series(
            xs,
            ys,
            x_label="population size n",
            y_label="convergence time (parallel)",
            log_x=True,
        )

    def to_csv(self) -> str:
        """CSV of the raw points, non-converged runs included.

        Non-converged runs appear as rows with ``converged=False`` and an
        empty ``convergence_time`` (so per-size non-converged counts are
        part of the export rather than an invisible shortfall), after the
        converged points, both in sweep order.

        When at least one point carries a telemetry timing breakdown, one
        ``<phase>_seconds`` column per recorded phase is appended; runs
        without telemetry leave those cells empty.  Without telemetry the
        header is exactly the historical five-column format.
        """
        phases = self.timing_phases()
        header = "population_size,seed,converged,convergence_time,max_additive_error"
        for phase in phases:
            header += f",{phase}_seconds"
        lines = [header]
        for point in self.points + self.non_converged_points:
            time_text = (
                "" if math.isnan(point.convergence_time) else point.convergence_time
            )
            error = point.max_additive_error
            error_text = "" if not math.isfinite(error) else error
            row = (
                f"{point.population_size},{point.seed},{point.converged},"
                f"{time_text},{error_text}"
            )
            if phases:
                breakdown = phase_breakdown(point.timing)
                for phase in phases:
                    value = breakdown.get(phase)
                    row += "," if value is None else f",{value:.9f}"
            lines.append(row)
        return "\n".join(lines)

    def growth_exponent(self) -> float | None:
        """Least-squares slope of ``time`` against ``log2(n)^2``.

        The paper's bound is ``O(log^2 n)``; a roughly constant positive slope
        (rather than one growing with ``n``) indicates the measured times
        scale like ``log^2 n``.  Returns ``None`` with fewer than two sizes
        that have at least one converged run.
        """
        sizes = [size for size in self.sizes() if size in self.summaries]
        if len(sizes) < 2:
            return None
        xs = [math.log2(size) ** 2 for size in sizes]
        ys = [self.summaries[size].mean for size in sizes]
        mean_x = sum(xs) / len(xs)
        mean_y = sum(ys) / len(ys)
        numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        denominator = sum((x - mean_x) ** 2 for x in xs)
        if denominator == 0:
            return None
        return numerator / denominator


def reproduce_figure2(
    population_sizes: Sequence[int],
    runs_per_size: int = 3,
    params: ProtocolParameters | None = None,
    base_seed: int = 2019,
    time_budget_factor: float = 4.0,
) -> Figure2Result:
    """Run the Figure 2 sweep on the vectorised engine.

    Parameters
    ----------
    population_sizes:
        Sizes to sweep (the paper uses ``10^2 .. 10^5``; benchmarks default to
        a smaller grid — see ``benchmarks/bench_figure2_convergence.py``).
    runs_per_size:
        Independent runs per size (paper: 10).
    params:
        Protocol constants (paper values by default).
    base_seed:
        Base seed for reproducibility.
    time_budget_factor:
        Safety factor over the a-priori convergence-time estimate.
    """
    spec = ExperimentSpec(
        population_sizes=list(population_sizes),
        runs_per_size=runs_per_size,
        params=params or ProtocolParameters.paper(),
        base_seed=base_seed,
        time_budget_factor=time_budget_factor,
    )
    sweep = run_array_experiment(spec, name="figure2")
    return figure2_from_sweep(sweep, spec.params)


def figure2_from_sweep(sweep: SweepResult, params: ProtocolParameters) -> Figure2Result:
    """Convert a sweep (from either engine) into a :class:`Figure2Result`."""
    points = []
    non_converged_points = []
    for record in sweep.records:
        telemetry = record.extra.get(TELEMETRY_KEY) if record.extra else None
        timing = telemetry.get("timing") if isinstance(telemetry, dict) else None
        if record.converged and record.convergence_time is not None:
            points.append(
                Figure2Point(
                    population_size=record.population_size,
                    seed=record.seed,
                    convergence_time=record.convergence_time,
                    max_additive_error=record.max_additive_error,
                    timing=timing,
                )
            )
        else:
            non_converged_points.append(
                Figure2Point(
                    population_size=record.population_size,
                    seed=record.seed,
                    convergence_time=math.nan,
                    max_additive_error=record.max_additive_error,
                    converged=False,
                    timing=timing,
                )
            )
    return Figure2Result(
        points=points,
        summaries=sweep.summary_by_size(),
        params=params,
        non_converged_runs=len(non_converged_points),
        non_converged_points=non_converged_points,
    )
